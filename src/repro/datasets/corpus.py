"""Synthetic shop-description corpus (substitute for the crawled data).

The paper crawls 2074 documents for 1225 Hong Kong shop brands, uses
the brand names as i-words, runs RAKE over the documents and keeps up
to 60 TF-IDF-ranked keywords per brand as t-words, ending with 1120
i-words that have t-words, 9195 distinct t-words, and ≈16.6 t-words
per i-word on average.

Without network access we generate an equivalent corpus and push it
through the *same* RAKE + TF-IDF pipeline:

* deterministic syllable-based brand names (i-words),
* brands grouped into categories; each category owns a vocabulary
  pool, and pools overlap through a shared global vocabulary — this
  overlap is what drives indirect keyword matching (Definition 4), so
  its presence matters more than the exact words,
* English-like description documents assembled from sentence
  templates so the RAKE stopword segmentation has real work to do,
* a small fraction of brands get empty/stopword-only documents and
  thus no t-words, mirroring the 105 brands the paper lost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.keywords.extraction import extract_twords

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"

_SENTENCE_TEMPLATES = (
    "The {brand} store offers {w0} and {w1} for every visitor.",
    "Our {w0} is known for its {w1}, and we also stock {w2}.",
    "Come and try the {w0}; it pairs well with our famous {w1}.",
    "{brand} has been selling {w0}, {w1} and {w2} since the opening.",
    "New arrivals include {w0} as well as a selection of {w1}.",
    "Customers love the {w0} here, especially with {w1} on the side.",
)


def _make_word(rng: random.Random, syllables: int) -> str:
    return "".join(
        rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
        for _ in range(syllables))


def _make_vocabulary(rng: random.Random, size: int, syllables: int = 3) -> List[str]:
    words: List[str] = []
    seen = set()
    while len(words) < size:
        w = _make_word(rng, syllables)
        if w not in seen:
            seen.add(w)
            words.append(w)
    return words


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the synthetic corpus.

    Defaults reproduce the paper's corpus statistics; tests and CI
    benches use smaller instances via :meth:`scaled`.
    """

    num_brands: int = 1225
    num_categories: int = 40
    category_vocab: int = 520      # words owned by each category pool
    shared_vocab: int = 1800       # globally shared words (overlap source)
    words_per_document: Tuple[int, int] = (10, 24)
    documents_per_brand: Tuple[int, int] = (1, 1)
    empty_document_fraction: float = 0.085   # ≈105/1225 in the paper
    max_twords: int = 60
    max_df: float = 0.2   # drop boilerplate shared by >20% of brands
    seed: int = 7

    def scaled(self, fraction: float) -> "CorpusConfig":
        return CorpusConfig(
            num_brands=max(10, int(self.num_brands * fraction)),
            num_categories=max(3, int(self.num_categories * fraction)),
            category_vocab=self.category_vocab,
            shared_vocab=self.shared_vocab,
            words_per_document=self.words_per_document,
            documents_per_brand=self.documents_per_brand,
            empty_document_fraction=self.empty_document_fraction,
            max_twords=self.max_twords,
            max_df=self.max_df,
            seed=self.seed,
        )


@dataclass(frozen=True)
class Corpus:
    """The generated corpus: brands, their categories and t-words."""

    brands: List[str]
    categories: Dict[str, int]
    documents: Dict[str, str]
    twords: Dict[str, List[str]]

    @property
    def brands_with_twords(self) -> List[str]:
        return [brand for brand in self.brands if self.twords.get(brand)]

    def stats(self) -> Dict[str, float]:
        counts = [len(ws) for ws in self.twords.values() if ws]
        distinct = {w for ws in self.twords.values() for w in ws}
        return {
            "num_brands": len(self.brands),
            "brands_with_twords": len(self.brands_with_twords),
            "num_distinct_twords": len(distinct),
            "avg_twords_per_brand": (sum(counts) / len(counts)) if counts else 0.0,
            "max_twords_per_brand": max(counts, default=0),
        }


def build_corpus(cfg: CorpusConfig = CorpusConfig()) -> Corpus:
    """Generate brands + documents and run the extraction pipeline."""
    rng = random.Random(cfg.seed)
    shared = _make_vocabulary(rng, cfg.shared_vocab)
    pools: List[List[str]] = []
    for _ in range(cfg.num_categories):
        own = _make_vocabulary(rng, cfg.category_vocab)
        borrow = rng.sample(shared, k=min(len(shared), cfg.category_vocab // 2))
        pools.append(own + borrow)

    brands: List[str] = []
    seen = set()
    while len(brands) < cfg.num_brands:
        name = _make_word(rng, rng.choice((2, 3)))
        if name not in seen:
            seen.add(name)
            brands.append(name)

    categories: Dict[str, int] = {}
    documents: Dict[str, str] = {}
    for i, brand in enumerate(brands):
        cat = rng.randrange(cfg.num_categories)
        categories[brand] = cat
        if rng.random() < cfg.empty_document_fraction:
            documents[brand] = ""
            continue
        pool = pools[cat]
        n_docs = rng.randint(*cfg.documents_per_brand)
        sentences: List[str] = []
        for _ in range(n_docs):
            n_words = rng.randint(*cfg.words_per_document)
            words = [rng.choice(pool) for _ in range(n_words)]
            w = 0
            while w < len(words):
                template = rng.choice(_SENTENCE_TEMPLATES)
                need = template.count("{w")
                fills = {f"w{j}": words[min(w + j, len(words) - 1)]
                         for j in range(need)}
                sentences.append(template.format(brand=brand, **fills))
                w += need
        documents[brand] = " ".join(sentences)

    twords = extract_twords(
        {b: d for b, d in documents.items() if d},
        max_twords=cfg.max_twords,
        max_df=cfg.max_df)
    # Brand names must stay i-words: drop them from any t-word list.
    brand_set = set(brands)
    twords = {
        brand: [w for w in words if w not in brand_set]
        for brand, words in twords.items()
    }
    return Corpus(brands=brands, categories=categories,
                  documents=documents, twords=twords)

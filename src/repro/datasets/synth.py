"""Parameterised multi-floor synthetic mall (the scale workload).

The paper-shape generator (:mod:`repro.datasets.floorplan`) is pinned
to the evaluation's floor geometry; this module wraps it in a venue
generator whose *size* is the interface — floors, rooms per floor and
keyword density per room — so the scale bench can grow venues until
the hot paths hurt::

    space, kindex = build_synth_mall(SynthMallConfig(
        floors=10, rooms_per_floor=48, words_per_room=8, seed=7))

Everything derives deterministically from the config (same config →
byte-identical venue document and keyword index): the floor plan keeps
the paper's strip/spine/staircase structure with the strip geometry
resized so rooms retain their paper-scale dimensions, the corpus is
generated from ``seed`` with enough brands for roughly one i-word per
four rooms (I2P stays one-to-many, as in the paper), and brands are
dealt to rooms by the seeded random assigner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets.assign import assign_random
from repro.datasets.corpus import CorpusConfig, build_corpus
from repro.datasets.floorplan import FloorplanConfig, build_synthetic_space
from repro.geometry.point import FLOOR_HEIGHT
from repro.keywords.mappings import KeywordIndex
from repro.space.indoor_space import IndoorSpace


@dataclass(frozen=True)
class SynthMallConfig:
    """Size knobs of the synthetic mall.

    Attributes:
        floors: Stacked floors (the scale bench's main axis).
        rooms_per_floor: Rooms per floor; rounded to the nearest
            multiple of 8 (4 strips × 2 sides) with a floor of 16.
        words_per_room: Target t-words per room's i-word (keyword
            density; drives candidate-set and bitmask sizes).
        seed: Master seed for corpus generation and assignment.
    """

    floors: int = 10
    rooms_per_floor: int = 48
    words_per_room: int = 8
    seed: int = 7

    def __post_init__(self) -> None:
        if self.floors < 1:
            raise ValueError("floors must be at least 1")
        if self.rooms_per_floor < 8:
            raise ValueError("rooms_per_floor must be at least 8")
        if self.words_per_room < 1:
            raise ValueError("words_per_room must be at least 1")

    @property
    def rooms_per_strip_side(self) -> int:
        return max(2, round(self.rooms_per_floor / 8))

    def floorplan(self) -> FloorplanConfig:
        """The per-floor geometry realising ``rooms_per_floor``.

        The paper floor keeps 12 rooms per strip side on a 1368 m
        side; the side scales linearly with the room count so room
        (and hallway-cell) dimensions stay paper-sized — the same-door
        re-entry cost must remain commensurate with query distances.
        """
        per_side = self.rooms_per_strip_side
        shrink = per_side / 12.0
        return FloorplanConfig(
            side=1368.0 * shrink,
            strips=4,
            rooms_per_strip_side=per_side,
            cells_per_strip=max(2, round(9 * shrink)),
            spine_cells=max(2, round(5 * shrink)),
            staircases=4,
            second_door_fraction=0.8,
        )

    def corpus(self) -> CorpusConfig:
        """A corpus sized to the venue: ~1 brand per 4 rooms."""
        total_rooms = self.floors * self.rooms_per_strip_side * 8
        num_brands = max(10, total_rooms // 4)
        return CorpusConfig(
            num_brands=num_brands,
            num_categories=max(3, num_brands // 30),
            category_vocab=max(40, self.words_per_room * 12),
            shared_vocab=max(120, self.words_per_room * 40),
            words_per_document=(self.words_per_room,
                                self.words_per_room * 2),
            max_twords=self.words_per_room,
            seed=self.seed,
        )


def build_synth_mall(cfg: SynthMallConfig = SynthMallConfig(),
                     ) -> Tuple[IndoorSpace, KeywordIndex]:
    """Build the venue and keyword index of a :class:`SynthMallConfig`."""
    space, rooms_by_floor = build_synthetic_space(
        floors=cfg.floors, cfg=cfg.floorplan())
    corpus = build_corpus(cfg.corpus())
    all_rooms = [room for floor in sorted(rooms_by_floor)
                 for room in rooms_by_floor[floor]]
    kindex = assign_random(all_rooms, corpus, seed=cfg.seed)
    return space, kindex


def tenant_mall_configs(count: int,
                        floors: int = 2,
                        rooms_per_floor: int = 16,
                        words_per_room: int = 4,
                        seed: int = 7) -> Dict[str, SynthMallConfig]:
    """A fleet of distinct synthetic tenants for the tenancy workload.

    Returns ``venue id -> config``; each tenant derives its own corpus
    and assignment seed (offset deterministically from the master
    seed), so co-hosted venues answer *different* routes for the same
    keyword traffic — exactly what the tenancy bench needs to catch a
    cross-venue routing mix-up.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    return {
        f"mall-{i:02d}": SynthMallConfig(
            floors=floors, rooms_per_floor=rooms_per_floor,
            words_per_room=words_per_room, seed=seed + 131 * i)
        for i in range(count)
    }


def mall_stats(space: IndoorSpace, kindex: KeywordIndex) -> Dict[str, float]:
    """Headline size numbers for bench entries and logs."""
    kstats = kindex.stats()
    return {
        "partitions": len(space.partitions),
        "doors": len(space.doors),
        "iwords": int(kstats["num_iwords"]),
        "twords": int(kstats["num_twords"]),
    }


def venue_diameter(space: IndoorSpace) -> float:
    """A straight-line venue diameter used to pick query distances."""
    xs: List[float] = []
    ys: List[float] = []
    levels: List[float] = []
    for p in space.partitions.values():
        xs.extend((p.footprint.x_min, p.footprint.x_max))
        ys.extend((p.footprint.y_min, p.footprint.y_max))
        levels.append(p.footprint.level)
    if not xs:
        return 0.0
    dx = max(xs) - min(xs)
    dy = max(ys) - min(ys)
    dz = (max(levels) - min(levels)) * FLOOR_HEIGHT
    return math.sqrt(dx * dx + dy * dy + dz * dz)

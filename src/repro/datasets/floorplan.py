"""Synthetic multi-floor indoor space generator (Section V-A1).

The paper generates floors of 1368 m × 1368 m with 96 rooms, 4
hallways and 4 staircases; irregular hallways are decomposed into
smaller regular partitions, giving 141 partitions and 220 doors per
floor, and floors are stacked 3/5/7/9 high with 20 m stairways.

This generator reproduces that structure parametrically:

* four horizontal hallway *strips*, each decomposed into cells and
  lined with rooms above and below,
* a vertical *spine* hallway (also decomposed) connecting the strips,
* four staircases on the spine corners; adjacent floors are linked by
  staircase doors sitting at half levels so the 20 m stairway length
  falls out of the geometry (see :mod:`repro.geometry.point`),
* one door per room onto the nearest hallway cell, doors between
  consecutive cells, and a second "service" door for a configurable
  fraction of rooms (the paper's floors average ~2.3 doors per room
  equivalent; the default fraction lands close to its 220 doors).

A ``scale`` parameter shrinks the floor (fewer rooms/cells) while
keeping the structure, which keeps pure-Python benchmark runs
tractable; paper-size floors are ``scale=1.0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.geometry import Point, Rect
from repro.space.builder import IndoorSpaceBuilder
from repro.space.entities import PartitionKind
from repro.space.indoor_space import IndoorSpace


@dataclass(frozen=True)
class FloorplanConfig:
    """Geometry knobs of the synthetic venue.

    Defaults reproduce the paper's floor: 96 rooms, 4 hallway strips,
    4 staircases, 141 partitions.
    """

    side: float = 1368.0
    strips: int = 4
    rooms_per_strip_side: int = 12   # rooms above = below = this many
    cells_per_strip: int = 9
    spine_cells: int = 5
    staircases: int = 4
    second_door_fraction: float = 0.8

    @property
    def rooms_per_floor(self) -> int:
        return self.strips * self.rooms_per_strip_side * 2

    @property
    def partitions_per_floor(self) -> int:
        return (self.rooms_per_floor + self.staircases
                + self.strips * self.cells_per_strip + self.spine_cells)

    def scaled(self, scale: float) -> "FloorplanConfig":
        """A structurally similar but smaller floor (``0 < scale ≤ 1``).

        Both the floor side and the element counts shrink by
        ``sqrt(scale)`` so individual rooms and hallway cells keep
        their paper-scale dimensions — room size drives the same-door
        re-entry cost, which must stay commensurate with the distance
        constraints of the workloads.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        shrink = math.sqrt(scale)
        return FloorplanConfig(
            side=self.side * shrink,
            strips=self.strips,
            rooms_per_strip_side=max(2, round(self.rooms_per_strip_side * shrink)),
            cells_per_strip=max(2, round(self.cells_per_strip * shrink)),
            spine_cells=max(2, round(self.spine_cells * shrink)),
            staircases=self.staircases,
            second_door_fraction=self.second_door_fraction,
        )


def _add_floor(b: IndoorSpaceBuilder,
               cfg: FloorplanConfig,
               floor: int) -> Dict[str, List[int]]:
    """Add one floor's partitions and intra-floor doors.

    Returns ids grouped by role: ``rooms``, ``cells``, ``spine``,
    ``stairs`` (partition ids) and ``stair_hall_doors`` (door ids).
    """
    level = float(floor)
    side = cfg.side
    spine_w = side * 0.08
    strip_h = side * 0.05
    # Vertical space per strip block (rooms above + hallway + rooms below).
    block_h = side / cfg.strips
    room_h = (block_h - strip_h) / 2.0
    room_w = (side - spine_w) / cfg.rooms_per_strip_side
    cell_w = (side - spine_w) / cfg.cells_per_strip
    x0 = spine_w  # rooms/strips start right of the spine

    rooms: List[int] = []
    cells: List[int] = []
    spine: List[int] = []
    stairs: List[int] = []

    # Spine cells (vertical hallway on the left edge).
    spine_cell_h = side / cfg.spine_cells
    for i in range(cfg.spine_cells):
        pid = b.add_partition(
            f"f{floor}-spine{i}",
            Rect(0.0, i * spine_cell_h, spine_w, (i + 1) * spine_cell_h, level),
            PartitionKind.HALLWAY)
        spine.append(pid)
        if i > 0:
            b.add_door(f"f{floor}-spd{i}",
                       Point(spine_w / 2.0, i * spine_cell_h, level),
                       between=(spine[i - 1], pid))

    room_counter = 0
    for s in range(cfg.strips):
        y_strip = s * block_h + room_h
        strip_cells: List[int] = []
        for c in range(cfg.cells_per_strip):
            pid = b.add_partition(
                f"f{floor}-h{s}c{c}",
                Rect(x0 + c * cell_w, y_strip,
                     x0 + (c + 1) * cell_w, y_strip + strip_h, level),
                PartitionKind.HALLWAY)
            strip_cells.append(pid)
            if c > 0:
                b.add_door(f"f{floor}-hd{s}-{c}",
                           Point(x0 + c * cell_w, y_strip + strip_h / 2.0, level),
                           between=(strip_cells[c - 1], pid))
        cells.extend(strip_cells)
        # Connect strip to the spine cell at its height.
        spine_idx = min(int((y_strip + strip_h / 2.0) / spine_cell_h),
                        cfg.spine_cells - 1)
        b.add_door(f"f{floor}-sp2h{s}",
                   Point(spine_w, y_strip + strip_h / 2.0, level),
                   between=(spine[spine_idx], strip_cells[0]))

        # Rooms above and below the strip.
        for side_idx, (y_lo, y_hi, door_y) in enumerate((
                (y_strip + strip_h, y_strip + strip_h + room_h,
                 y_strip + strip_h),
                (y_strip - room_h, y_strip, y_strip))):
            for r in range(cfg.rooms_per_strip_side):
                x_lo = x0 + r * room_w
                pid = b.add_partition(
                    f"f{floor}-room{room_counter}",
                    Rect(x_lo, y_lo, x_lo + room_w, y_hi, level))
                rooms.append(pid)
                door_x = x_lo + room_w / 2.0
                cell_idx = min(int((door_x - x0) / cell_w),
                               cfg.cells_per_strip - 1)
                b.add_door(f"f{floor}-rd{room_counter}",
                           Point(door_x, door_y, level),
                           between=(pid, strip_cells[cell_idx]))
                # Second door for a deterministic fraction of rooms.
                if (room_counter % 100) < cfg.second_door_fraction * 100:
                    door_x2 = x_lo + room_w * 0.2
                    cell_idx2 = min(int((door_x2 - x0) / cell_w),
                                    cfg.cells_per_strip - 1)
                    b.add_door(f"f{floor}-rd{room_counter}b",
                               Point(door_x2, door_y, level),
                               between=(pid, strip_cells[cell_idx2]))
                room_counter += 1

    # Staircases along the spine (distributed vertically).
    stair_w = spine_w * 0.8
    for t in range(cfg.staircases):
        frac = (t + 0.5) / cfg.staircases
        y_lo = frac * side - stair_w / 2.0
        pid = b.add_partition(
            f"f{floor}-stair{t}",
            Rect(0.0, y_lo, stair_w, y_lo + stair_w, level),
            PartitionKind.STAIRCASE)
        stairs.append(pid)
        spine_idx = min(int((y_lo + stair_w / 2.0) / spine_cell_h),
                        cfg.spine_cells - 1)
        b.add_door(f"f{floor}-std{t}",
                   Point(stair_w / 2.0, y_lo + stair_w, level),
                   between=(pid, spine[spine_idx]))
    return {"rooms": rooms, "cells": cells, "spine": spine, "stairs": stairs}


def build_floor(cfg: FloorplanConfig = FloorplanConfig()) -> IndoorSpace:
    """A single-floor synthetic space (mostly for tests)."""
    b = IndoorSpaceBuilder()
    _add_floor(b, cfg, 0)
    return b.build()


def build_synthetic_space(
        floors: int = 5,
        cfg: FloorplanConfig = FloorplanConfig(),
        scale: float = 1.0,
) -> Tuple[IndoorSpace, Dict[int, List[int]]]:
    """The multi-floor synthetic venue of Section V-A1.

    Args:
        floors: Number of stacked floors (paper: 3, 5, 7 or 9).
        cfg: Per-floor geometry.
        scale: Shrink factor applied to ``cfg`` (see
            :meth:`FloorplanConfig.scaled`).

    Returns:
        ``(space, rooms_by_floor)`` where ``rooms_by_floor[f]`` lists
        the room partition ids of floor ``f`` (used by the keyword
        assigner).
    """
    if floors < 1:
        raise ValueError("need at least one floor")
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    b = IndoorSpaceBuilder()
    per_floor: List[Dict[str, List[int]]] = []
    for f in range(floors):
        per_floor.append(_add_floor(b, cfg, f))
    # Staircase doors between adjacent floors, at half levels.  Each
    # staircase column is vertically aligned, so the stairway length is
    # twice the in-stair distance to the half-level door (≈ 20 m with
    # the default FLOOR_HEIGHT).
    for f in range(floors - 1):
        lower = per_floor[f]["stairs"]
        upper = per_floor[f + 1]["stairs"]
        for t, (lo, up) in enumerate(zip(lower, upper)):
            foot = b._partitions[lo].footprint  # aligned columns
            b.add_door(f"f{f}-up{t}",
                       Point((foot.x_min + foot.x_max) / 2.0,
                             (foot.y_min + foot.y_max) / 2.0,
                             f + 0.5),
                       between=(lo, up))
    space = b.build()
    rooms_by_floor = {f: per_floor[f]["rooms"] for f in range(floors)}
    return space, rooms_by_floor

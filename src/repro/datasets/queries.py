"""IKRQ query workload generator (Section V-A1).

The paper generates query instances in four steps:

1. fix the start-terminal distance ``δs2t`` and pick a random start
   point ``ps``,
2. find a door ``d'`` whose indoor distance from ``ps`` approximates
   ``δs2t`` (using the door-to-door matrix; we run one Dijkstra from
   ``ps`` instead, which is equivalent and cheaper),
3. expand from ``d'`` to a random terminal point ``pt`` whose distance
   to ``ps`` just meets ``δs2t``,
4. set ``Δ = η · δs2t`` and sample the keyword list ``QW`` with an
   i-word fraction ``β`` (the rest are t-words).

Each parameter setting gets ``instances`` queries with fresh random
keyword lists, as in the paper's methodology (10 instances × 5 runs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.core.query import IKRQ
from repro.keywords.mappings import KeywordIndex
from repro.space.graph import DoorGraph
from repro.space.indoor_space import IndoorSpace


@dataclass(frozen=True)
class QueryWorkload:
    """A generated batch of queries for one parameter setting."""

    queries: Tuple[IKRQ, ...]
    s2t: float
    eta: float
    beta: float

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


class QueryGenerator:
    """Draws valid IKRQ instances over a space + keyword index."""

    def __init__(self,
                 space: IndoorSpace,
                 kindex: KeywordIndex,
                 graph: Optional[DoorGraph] = None,
                 seed: int = 42) -> None:
        self.space = space
        self.kindex = kindex
        self.graph = graph or DoorGraph(space)
        self.rng = random.Random(seed)
        self._iwords = sorted(self.kindex.iwords)
        self._twords = sorted(self.kindex.vocabulary.twords)

    # ------------------------------------------------------------------
    def random_point(self) -> Point:
        """A uniformly random interior point of a random partition."""
        pids = sorted(self.space.partitions)
        pid = self.rng.choice(pids)
        return self.space.partition(pid).footprint.random_interior_point(self.rng)

    def sample_keywords(self, size: int, beta: float) -> Tuple[str, ...]:
        """A keyword list with ``round(size * beta)`` i-words."""
        if size < 1:
            raise ValueError("keyword list size must be >= 1")
        n_iwords = min(size, round(size * beta))
        if not self._twords:
            n_iwords = size
        words: List[str] = []
        words.extend(self.rng.sample(
            self._iwords, k=min(n_iwords, len(self._iwords))))
        while len(words) < size:
            pool = self._twords if self._twords else self._iwords
            w = self.rng.choice(pool)
            if w not in words:
                words.append(w)
        self.rng.shuffle(words)
        return tuple(words)

    def sample_keywords_near(self,
                             origin: Point,
                             budget: float,
                             size: int,
                             beta: float = 0.6) -> Tuple[str, ...]:
        """A keyword list drawn from partitions reachable from
        ``origin`` within ``budget`` metres.

        The paper samples keywords globally; this variant is for
        applications and examples where the query should plausibly be
        coverable (a shopper asks for things the mall actually has
        nearby).
        """
        dists = self.graph.distances_from_point(origin, bound=budget)
        reachable: set = set()
        for door in dists:
            reachable |= self.space.d2p_enter(door)
        iwords = sorted({self.kindex.p2i(pid) for pid in reachable}
                        - {None})
        twords = sorted({t for wi in iwords for t in self.kindex.i2t(wi)})
        if not iwords:
            return self.sample_keywords(size, beta)
        n_iwords = min(size, round(size * beta)) if twords else size
        words: List[str] = list(self.rng.sample(
            iwords, k=min(n_iwords, len(iwords))))
        spare = [w for w in twords + iwords if w not in words]
        self.rng.shuffle(spare)
        words.extend(spare[: size - len(words)])
        if not words:
            return self.sample_keywords(size, beta)
        self.rng.shuffle(words)
        return tuple(words[:size])

    # ------------------------------------------------------------------
    def endpoints(self,
                  s2t: float,
                  tolerance: float = 0.25,
                  max_attempts: int = 40) -> Tuple[Point, Point, float]:
        """Draw ``(ps, pt)`` with indoor distance approximating ``s2t``.

        Returns the pair together with the *achieved* distance, which
        is what ``Δ = η · δs2t`` is derived from.  Raises
        :class:`RuntimeError` when the venue is too small to realise
        the requested separation.
        """
        residual_cap = max(1.0, 0.1 * s2t)
        best: Optional[Tuple[Point, Point, float]] = None
        for _ in range(max_attempts):
            ps = self.random_point()
            dists = self.graph.distances_from_point(ps, bound=s2t * 1.5)
            # Doors whose distance from ps approximates s2t.
            near = [d for d, dist in dists.items()
                    if abs(dist - s2t) <= tolerance * s2t]
            if not near:
                # Keep the farthest-reaching door as a fallback.
                if dists and best is None:
                    d_star = max(dists, key=lambda d: dists[d])
                    pt = self._point_behind(d_star, residual_cap)
                    if pt is not None:
                        achieved = dists[d_star] + self.space.door(
                            d_star).position.distance_to(pt)
                        best = (ps, pt, achieved)
                continue
            d_star = self.rng.choice(near)
            pt = self._point_behind(d_star, residual_cap)
            if pt is None:
                continue
            achieved = dists[d_star] + self.space.door(
                d_star).position.distance_to(pt)
            return ps, pt, achieved
        if best is not None:
            return best
        raise RuntimeError(
            f"could not realise endpoint separation {s2t}; "
            "the venue may be too small")

    def _point_behind(self, door: int, residual_cap: float) -> Optional[Point]:
        """A random point in a partition enterable through ``door``.

        The point is pulled towards the door so that the final hop
        adds at most ``residual_cap`` — the paper's pt "just meets"
        the requested separation.
        """
        pids = sorted(self.space.d2p_enter(door))
        if not pids:
            return None
        pid = self.rng.choice(pids)
        sample = self.space.partition(pid).footprint.random_interior_point(
            self.rng)
        door_pos = self.space.door(door).position
        hop = door_pos.planar_distance_to(sample)
        if hop <= residual_cap or hop == 0.0:
            return sample
        # Interpolate along the (convex) footprint towards the door.
        frac = residual_cap / hop
        return Point(door_pos.x + (sample.x - door_pos.x) * frac,
                     door_pos.y + (sample.y - door_pos.y) * frac,
                     sample.level)

    # ------------------------------------------------------------------
    def workload(self,
                 s2t: float = 1700.0,
                 eta: float = 1.8,
                 qw_size: int = 4,
                 beta: float = 0.6,
                 k: int = 7,
                 alpha: float = 0.5,
                 tau: float = 0.2,
                 instances: int = 10) -> QueryWorkload:
        """A batch of query instances for one parameter setting.

        Defaults are the paper's Table IV bold values.
        """
        queries: List[IKRQ] = []
        for _ in range(instances):
            ps, pt, achieved = self.endpoints(s2t)
            queries.append(IKRQ(
                ps=ps, pt=pt,
                delta=eta * achieved,
                keywords=self.sample_keywords(qw_size, beta),
                k=k, alpha=alpha, tau=tau))
        return QueryWorkload(queries=tuple(queries),
                             s2t=s2t, eta=eta, beta=beta)

"""The real-data analogue: a seven-floor Hangzhou-style mall.

The paper's real dataset is a 2700 m × 2000 m seven-floor shopping
mall with ten staircases, 639 stores, 533 distinct i-words, 5036
t-words (9.4 per i-word on average, 31 maximum), 103 stores carrying
an i-word but no t-words, and same-category stores clustered on the
same floor(s).  The dataset itself is not public; this module builds a
venue with those published statistics so the real-data experiments
(Figs. 17–20) exercise the same workload characteristics — in
particular the per-floor keyword density that makes KoE degrade with
|QW| (see Section V-B).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets.assign import assign_by_category
from repro.datasets.corpus import Corpus, CorpusConfig, build_corpus
from repro.datasets.floorplan import FloorplanConfig, build_synthetic_space
from repro.keywords.mappings import KeywordIndex
from repro.space.indoor_space import IndoorSpace


@dataclass(frozen=True)
class RealMallConfig:
    """Knobs of the Hangzhou-mall analogue (paper Section V-B)."""

    floors: int = 7
    stores: int = 639
    distinct_iwords: int = 533
    stores_without_twords: int = 103
    avg_twords: float = 9.4
    max_twords: int = 31
    categories: int = 24
    seed: int = 23
    scale: float = 1.0

    def floorplan(self) -> FloorplanConfig:
        import math
        per_floor_side = max(2, math.ceil(self.stores / (self.floors * 8)))
        cfg = FloorplanConfig(
            side=2700.0,
            strips=4,
            rooms_per_strip_side=per_floor_side,
            cells_per_strip=8,
            spine_cells=5,
            staircases=10 // self.floors + 1,
        )
        if self.scale != 1.0:
            cfg = cfg.scaled(self.scale)
        return cfg


def build_real_mall(cfg: RealMallConfig = RealMallConfig(),
                    ) -> Tuple[IndoorSpace, KeywordIndex, Corpus]:
    """Build the venue, its keyword index, and the underlying corpus.

    The corpus is tuned so the resulting keyword statistics track the
    paper's: fewer distinct i-words than stores (several stores share
    an identity such as ``cashier``), a fraction of stores without
    t-words, and short t-word lists (9–10 average, ≈31 max).
    """
    rng = random.Random(cfg.seed)
    corpus_cfg = CorpusConfig(
        num_brands=cfg.distinct_iwords,
        num_categories=cfg.categories,
        category_vocab=40,
        shared_vocab=260,
        words_per_document=(6, 16),
        documents_per_brand=(1, 2),
        empty_document_fraction=cfg.stores_without_twords / cfg.stores,
        max_twords=cfg.max_twords,
        seed=cfg.seed,
    )
    corpus = build_corpus(corpus_cfg)

    space, rooms_by_floor = build_synthetic_space(
        floors=cfg.floors, cfg=cfg.floorplan())

    # Trim the venue's room list to the requested store count so the
    # statistics line up (extra rooms stay keyword-less, acting as the
    # mall's service areas).
    total = 0
    capped: Dict[int, List[int]] = {}
    store_budget = (cfg.stores if cfg.scale == 1.0
                    else max(10, int(cfg.stores * cfg.scale)))
    for floor, rooms in rooms_by_floor.items():
        take = min(len(rooms), max(0, store_budget - total))
        shuffled = list(rooms)
        rng.shuffle(shuffled)
        capped[floor] = shuffled[:take]
        total += take
    kindex = assign_by_category(capped, corpus, seed=cfg.seed)
    return space, kindex, corpus

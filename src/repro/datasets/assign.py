"""Keyword assignment: bind a corpus to the rooms of a space."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence

from repro.datasets.corpus import Corpus
from repro.keywords.mappings import KeywordIndex


def assign_random(rooms: Sequence[int],
                  corpus: Corpus,
                  seed: int = 11) -> KeywordIndex:
    """Random i-word assignment (synthetic data, Section V-A1).

    Each room draws an i-word uniformly (with replacement once the
    brand list is exhausted — several partitions may share an i-word,
    I2P being one-to-many) and inherits all its t-words.
    """
    rng = random.Random(seed)
    index = KeywordIndex()
    brands = list(corpus.brands)
    rng.shuffle(brands)
    for i, room in enumerate(rooms):
        brand = brands[i] if i < len(brands) else rng.choice(brands)
        index.assign_iword(room, brand)
        index.add_twords(brand, corpus.twords.get(brand, ()))
    return index


def assign_by_category(rooms_by_floor: Dict[int, List[int]],
                       corpus: Corpus,
                       seed: int = 11) -> KeywordIndex:
    """Category-clustered assignment (real data, Section V-B).

    Stores of the same category land on the same floor(s), which the
    paper identifies as the reason KoE degrades with |QW| on the real
    dataset: candidate partitions for one keyword are spatially dense.
    """
    rng = random.Random(seed)
    index = KeywordIndex()
    floors = sorted(rooms_by_floor)
    by_category: Dict[int, List[str]] = {}
    for brand, cat in corpus.categories.items():
        by_category.setdefault(cat, []).append(brand)
    # Deal categories onto floors round-robin, then fill each floor's
    # rooms from its categories' brands.
    floor_brands: Dict[int, List[str]] = {f: [] for f in floors}
    for i, cat in enumerate(sorted(by_category)):
        floor = floors[i % len(floors)]
        floor_brands[floor].extend(sorted(by_category[cat]))
    for floor in floors:
        brands = floor_brands[floor]
        rng.shuffle(brands)
        rooms = rooms_by_floor[floor]
        if not brands:
            brands = list(corpus.brands)
        for i, room in enumerate(rooms):
            brand = brands[i % len(brands)]
            index.assign_iword(room, brand)
            index.add_twords(brand, corpus.twords.get(brand, ()))
    return index

"""The paper's Fig. 1 running example as a reusable fixture.

The floor plan reconstructs the topology and keyword structure of the
paper's example shopping-mall floor: shops ``zara``, ``oppo``,
``costa``, ``watsons``, ``ecco`` along an upper hallway ``v5``,
a lower thoroughfare ``v7`` (``starbucks``) with dead-end shops
``apple`` (``v10``) and ``samsung`` (``v12``), plus the unnamed
partitions ``v6``, ``v8``, ``v9`` used by the regularity examples.

Geometry is engineered so the distances quoted in Example 1 hold
exactly: ``δpt2d(ps, d2) = 8.3``, ``δd2d(d2, d5) = 4.2`` and
``δd2pt(d5, pt) = 6`` (``pt`` is placed on the intersection of the
two distance circles around ``d5`` and ``d7``, keeping
``|d7, pt| = 1`` from Example 7 as well).  Distances that the paper
only uses for illustration are not matched; example tests assert the
paper's *arithmetic* directly and this fixture's behaviour
computationally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.geometry import Point, Rect
from repro.keywords.mappings import KeywordIndex
from repro.space.builder import IndoorSpaceBuilder
from repro.space.entities import PartitionKind
from repro.space.indoor_space import IndoorSpace

#: Keyword assignments of the figure (Example 3, Example 4, §V-A5).
FIG1_KEYWORDS: Dict[str, Dict[str, tuple]] = {
    "v1": {"zara": ("pants", "sweater", "coat")},
    "v2": {"oppo": ("phone", "charger")},
    "v3": {"costa": ("coffee", "drinks", "macha")},
    "v4": {"watsons": ("cosmetics", "shampoo")},
    "v7": {"starbucks": ("coffee", "macha", "latte", "drinks")},
    "v10": {"apple": ("phone", "mac", "laptop", "watch")},
    "v11": {"ecco": ("shoes", "leather")},
    "v12": {"samsung": ("phone", "laptop", "earphone")},
}


@dataclass(frozen=True)
class Fig1Fixture:
    """The built fixture: space, keyword index and named points."""

    space: IndoorSpace
    kindex: KeywordIndex
    points: Dict[str, Point]

    @property
    def ps(self) -> Point:
        return self.points["ps"]

    @property
    def pt(self) -> Point:
        return self.points["pt"]

    def pid(self, name: str) -> int:
        """Partition id by figure name (``"v1"`` ... ``"v12"``)."""
        for pid, part in self.space.partitions.items():
            if part.name == name:
                return pid
        raise KeyError(name)

    def did(self, name: str) -> int:
        """Door id by figure name (``"d1"`` ... ``"d17"``)."""
        for did, door in self.space.doors.items():
            if door.name == name:
                return did
        raise KeyError(name)


def _circle_intersection(c1: Point, r1: float, c2: Point, r2: float) -> Point:
    """One intersection point of two circles (the lower one)."""
    dx = c2.x - c1.x
    dy = c2.y - c1.y
    d = math.hypot(dx, dy)
    if d > r1 + r2 or d < abs(r1 - r2) or d == 0:
        raise ValueError("circles do not intersect")
    a = (r1 * r1 - r2 * r2 + d * d) / (2 * d)
    h = math.sqrt(max(r1 * r1 - a * a, 0.0))
    mx = c1.x + a * dx / d
    my = c1.y + a * dy / d
    # Two candidates; pick the one with the smaller y (inside the
    # hallway, below the shop boundary).
    p_a = Point(mx + h * dy / d, my - h * dx / d, c1.level)
    p_b = Point(mx - h * dy / d, my + h * dx / d, c1.level)
    return p_a if p_a.y <= p_b.y else p_b


def paper_fig1() -> Fig1Fixture:
    """Build the Fig. 1 fixture."""
    b = IndoorSpaceBuilder()

    # Upper shop row (y in [32, 42]).
    b.add_partition("v1", Rect(2, 32, 14, 42))
    b.add_partition("v2", Rect(14, 32, 22, 42))
    b.add_partition("v3", Rect(22, 32, 34, 42))
    b.add_partition("v4", Rect(34, 32, 46, 42))
    b.add_partition("v11", Rect(46, 32, 58, 42))
    # Upper hallway.
    b.add_partition("v5", Rect(2, 26, 60, 32), PartitionKind.HALLWAY)
    # Lower band: storage, the starbucks thoroughfare, side room.
    b.add_partition("v6", Rect(2, 16, 14, 26))
    b.add_partition("v7", Rect(14, 16, 50, 26))
    b.add_partition("v8", Rect(50, 16, 60, 26))
    # Bottom row off the thoroughfare.
    b.add_partition("v9", Rect(14, 6, 26, 16))
    b.add_partition("v10", Rect(26, 6, 38, 16))
    b.add_partition("v12", Rect(38, 6, 50, 16))

    # Doors.  d2/d5 realise the 3-4-5 layout that makes
    # |d2, d5| = 4.2 exact; ps sits 8.3 m from d2 along the same slope.
    d2 = Point(14.0, 34.52)
    d5 = Point(17.36, 32.0)
    ps = Point(14.0 - 0.8 * 8.3, 34.52 + 0.6 * 8.3)  # (7.36, 39.50)
    d7 = Point(22.5, 32.0)
    pt = _circle_intersection(d5, 6.0, d7, 1.0)

    b.add_door("d1", Point(8.0, 32.0), between=("v1", "v5"))
    b.add_door("d2", d2, between=("v1", "v2"))
    b.add_door("d3", Point(12.0, 32.0), between=("v1", "v5"))
    b.add_door("d4", Point(20.0, 16.0), between=("v7", "v9"))
    b.add_door("d5", d5, between=("v2", "v5"))
    b.add_door("d6", Point(22.0, 36.0), between=("v2", "v3"))
    b.add_door("d7", d7, between=("v3", "v5"))
    b.add_door("d8", Point(40.0, 32.0), between=("v4", "v5"))
    b.add_door("d9", Point(8.0, 26.0), between=("v5", "v6"))
    b.add_door("d10", Point(52.0, 32.0), between=("v11", "v5"))
    b.add_door("d11", Point(14.0, 21.0), between=("v6", "v7"))
    b.add_door("d12", Point(46.0, 37.0), between=("v4", "v11"))
    b.add_door("d13", Point(26.0, 26.0), between=("v5", "v7"))
    b.add_door("d14", Point(50.0, 21.0), between=("v7", "v8"))
    b.add_door("d15", Point(32.0, 16.0), between=("v7", "v10"))
    b.add_door("d16", Point(40.0, 26.0), between=("v5", "v7"))
    b.add_door("d17", Point(44.0, 16.0), between=("v7", "v12"))

    space = b.build()

    kindex = KeywordIndex()
    for pname, words in FIG1_KEYWORDS.items():
        pid = b.pid(pname)
        for iword, twords in words.items():
            kindex.assign_iword(pid, iword)
            kindex.add_twords(iword, twords)

    points = {
        "ps": ps,
        "pt": pt,
        "p1": Point(20.0, 12.0),   # in v9, 4 m below d4
        "p2": Point(20.0, 21.5),   # in v7, 5.5 m above d4
    }
    return Fig1Fixture(space=space, kindex=kindex, points=points)

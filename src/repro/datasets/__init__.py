"""Datasets: floor plans, keyword corpora and query workloads.

Everything here is generated deterministically from seeds — the paper
used a crawled Hong Kong shop corpus and a real Hangzhou mall dataset,
neither publicly available, so the generators reproduce their
*published statistics* instead (see DESIGN.md for the substitution
table):

* :func:`paper_fig1` — a faithful single-floor fixture of the paper's
  Fig. 1 running example,
* :class:`FloorplanConfig` / :func:`build_synthetic_space` — the
  multi-floor synthetic venue of Section V-A1,
* :func:`build_corpus` — the synthetic brand/description corpus fed
  through RAKE + TF-IDF,
* :func:`build_real_mall` — the seven-floor Hangzhou-like mall of
  Section V-B with category-clustered floors,
* :class:`QueryGenerator` — IKRQ workloads per Section V-A1.
"""

from repro.datasets.fig1 import Fig1Fixture, paper_fig1
from repro.datasets.floorplan import FloorplanConfig, build_floor, build_synthetic_space
from repro.datasets.corpus import CorpusConfig, build_corpus
from repro.datasets.realmall import RealMallConfig, build_real_mall
from repro.datasets.queries import QueryGenerator, QueryWorkload
from repro.datasets.synth import (SynthMallConfig, build_synth_mall,
                                  mall_stats, venue_diameter)

__all__ = [
    "CorpusConfig",
    "Fig1Fixture",
    "FloorplanConfig",
    "QueryGenerator",
    "QueryWorkload",
    "RealMallConfig",
    "SynthMallConfig",
    "build_corpus",
    "build_floor",
    "build_real_mall",
    "build_synth_mall",
    "build_synthetic_space",
    "mall_stats",
    "paper_fig1",
    "venue_diameter",
]

"""Planar / multi-level geometry primitives for indoor spaces.

Indoor venues are modelled as a stack of floors sharing one x/y plane.
A :class:`Point` carries a fractional ``level``: integer levels are
floors, half levels (e.g. ``1.5``) are positions inside a stairway that
spans two floors.  Euclidean distance between points on different
levels includes the vertical drop ``(level difference) * FLOOR_HEIGHT``
so that intra-staircase distances come out of the same formula as
ordinary same-floor distances.
"""

from repro.geometry.point import FLOOR_HEIGHT, Point, euclidean
from repro.geometry.rect import Rect

__all__ = ["FLOOR_HEIGHT", "Point", "Rect", "euclidean"]

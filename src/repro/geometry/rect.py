"""Axis-aligned rectangles used as partition footprints."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle on a single floor.

    Partitions in the synthetic floor plans are rectangular; irregular
    hallways are decomposed into rectangular cells (as in the paper).
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    level: float = 0.0

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0,
                     (self.y_min + self.y_max) / 2.0,
                     self.level)

    def corners(self) -> Iterator[Point]:
        """The four corner points, counter-clockwise from (x_min, y_min)."""
        yield Point(self.x_min, self.y_min, self.level)
        yield Point(self.x_max, self.y_min, self.level)
        yield Point(self.x_max, self.y_max, self.level)
        yield Point(self.x_min, self.y_max, self.level)

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """Whether ``p`` lies inside this rectangle (same floor, boundary counts)."""
        if int(p.level) != int(self.level):
            return False
        return (self.x_min - tol <= p.x <= self.x_max + tol
                and self.y_min - tol <= p.y <= self.y_max + tol)

    def farthest_corner_distance(self, p: Point) -> float:
        """Planar distance from ``p`` to the farthest corner.

        Used as the "longest non-loop distance one can reach inside the
        partition from the pertinent door" in the same-door re-entry
        cost (paper Section II-A).
        """
        return max(p.planar_distance_to(c) for c in self.corners())

    def random_interior_point(self, rng, margin: float = 0.5) -> Point:
        """A uniformly random point inside the rectangle.

        ``margin`` keeps the point away from walls when the rectangle
        is large enough; degenerate rectangles fall back to the center.
        """
        if self.width <= 2 * margin or self.height <= 2 * margin:
            return self.center
        x = rng.uniform(self.x_min + margin, self.x_max - margin)
        y = rng.uniform(self.y_min + margin, self.y_max - margin)
        return Point(x, y, self.level)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x_min, self.y_min, self.x_max, self.y_max)

"""Points in a multi-level indoor coordinate system."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Vertical distance (in metres) between two adjacent floors.  The
#: paper's stairways are 20 m long, which a staircase door placed at a
#: half level reproduces exactly: hall door (level f) -> stair door
#: (level f + 0.5) -> hall door (level f + 1) is 10 m + 10 m.
FLOOR_HEIGHT = 20.0


@dataclass(frozen=True)
class Point:
    """An indoor location: planar coordinates plus a (fractional) level.

    ``level`` is the floor number for ordinary locations.  Stairway
    doors that connect floor ``f`` to floor ``f + 1`` live at level
    ``f + 0.5``.
    """

    x: float
    y: float
    level: float = 0.0

    @property
    def z(self) -> float:
        """Vertical coordinate in metres."""
        return self.level * FLOOR_HEIGHT

    @property
    def floor(self) -> int:
        """The floor this point belongs to (stair doors round down)."""
        return int(math.floor(self.level))

    def same_floor(self, other: "Point") -> bool:
        """Whether both points lie on exactly the same level."""
        return self.level == other.level

    def distance_to(self, other: "Point") -> float:
        """Straight-line (3-D Euclidean) distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        dz = self.z - other.z
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def planar_distance_to(self, other: "Point") -> float:
        """2-D Euclidean distance, ignoring the vertical component."""
        dx = self.x - other.x
        dy = self.y - other.y
        return math.sqrt(dx * dx + dy * dy)

    def translated(self, dx: float = 0.0, dy: float = 0.0, dlevel: float = 0.0) -> "Point":
        """A copy of this point shifted by the given offsets."""
        return Point(self.x + dx, self.y + dy, self.level + dlevel)


def euclidean(a: Point, b: Point) -> float:
    """Module-level convenience wrapper for :meth:`Point.distance_to`."""
    return a.distance_to(b)

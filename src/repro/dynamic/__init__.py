"""Dynamic overlays: live-world routing over immutable generations.

Real venues change under traffic — doors lock after hours, corridors
close for incidents, shops rebrand their keywords — but the serving
layer's generations (snapshots, CSR graphs, skeletons, door matrices)
are deliberately immutable.  This package bridges the two with a
query-time overlay layer:

* :mod:`repro.dynamic.overlay` — :class:`ClosureOverlay`, the
  first-class banned-door / banned-partition set threaded through
  ``IKRQEngine.search``, ``QueryService``, the wire protocol and
  ``POST /search``, plus :func:`apply_closures`, the physically-edited
  venue every overlay answer is proven byte-identical to,
* :mod:`repro.dynamic.schedule` — :class:`DoorSchedule` weekly open
  windows, compiled against a query timestamp into closure sets
  before dispatch,
* :mod:`repro.dynamic.state` — :class:`DynamicView` /
  :class:`DynamicStore`, the versioned per-venue delta layer behind
  ``POST /delta``: door state flips and keyword edits applied over
  the mmap'd snapshot with an atomic version flip and no rebuild.

See ``docs/dynamic.md`` for the API, versioning semantics and cache
invalidation rules, and ``tests/test_dynamic.py`` for the property
suite holding the byte-identity contract.
"""

from repro.dynamic.overlay import (ClosureOverlay, EMPTY_OVERLAY,
                                   apply_closures)
from repro.dynamic.schedule import (DAY_S, WEEK_S, DoorSchedule,
                                    compile_closed_doors, week_offset)
from repro.dynamic.state import (DOOR_OPS, EMPTY_VIEW, KEYWORD_OPS,
                                 DeltaError, DynamicStore, DynamicView,
                                 apply_keyword_ops, is_keyword_op,
                                 validate_ops)

__all__ = [
    "ClosureOverlay",
    "DAY_S",
    "DOOR_OPS",
    "DeltaError",
    "DoorSchedule",
    "DynamicStore",
    "DynamicView",
    "EMPTY_OVERLAY",
    "EMPTY_VIEW",
    "KEYWORD_OPS",
    "WEEK_S",
    "apply_closures",
    "apply_keyword_ops",
    "compile_closed_doors",
    "is_keyword_op",
    "validate_ops",
    "week_offset",
]

"""Closure overlays: banned doors/partitions as a first-class API.

A :class:`ClosureOverlay` names doors and partitions that are *closed*
for one query (an incident, an after-hours lockdown, a compiled time
window).  The immutable generation — CSR door graph, skeleton, door
matrix, snapshots — is never rebuilt; the overlay rides on the banned
sets the Dijkstra core already honours, plus an *edited view* of the
:class:`~repro.space.indoor_space.IndoorSpace` topology for the
expansion strategies.

The contract, enforced by ``tests/test_dynamic.py``: for every query,

    ``engine.search(q, algo, overlay=ov)``

is byte-identical to a from-scratch engine built on
``apply_closures(space, ov)`` — the venue with the closed doors and
sealed partitions physically removed from the topology mappings.

Two facts make the equivalence exact rather than merely semantic:

* the CSR graph keeps **all** doors in ``sorted(space.doors)`` order,
  so dense indices, heap tie-breaks ``(weight, node)`` and adjacency
  order are unchanged — banned-marking skips exactly the edges the
  edited graph lacks, in the same relative order;
* :func:`apply_closures` keeps every door and partition (closed doors
  just lose their ``enters``/``leaves`` sets), so the position-derived
  indexes (staircase floors, skeleton heads, δs2s) are identical and
  the skeleton/oracle geometry can be evaluated against either space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.space.indoor_space import IndoorSpace


def _frozen_ids(values: Optional[Iterable[int]], what: str) -> FrozenSet[int]:
    if values is None:
        return frozenset()
    out = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{what} must be integer ids, got {value!r}")
        out.append(value)
    return frozenset(out)


@dataclass(frozen=True)
class ClosureOverlay:
    """An immutable set of closed doors and sealed partitions.

    Empty overlays are falsy and behave exactly like "no overlay";
    ``key()`` is the canonical hashable identity used by every cache
    that must not serve one overlay's rows to another.
    """

    closed_doors: FrozenSet[int] = frozenset()
    sealed_partitions: FrozenSet[int] = frozenset()

    def __bool__(self) -> bool:
        return bool(self.closed_doors or self.sealed_partitions)

    @property
    def is_empty(self) -> bool:
        return not self

    def key(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Canonical cache identity (sorted, order-independent)."""
        return (tuple(sorted(self.closed_doors)),
                tuple(sorted(self.sealed_partitions)))

    def merge(self, other: Optional["ClosureOverlay"]) -> "ClosureOverlay":
        """The union overlay (closing is monotone, so union composes)."""
        if not other:
            return self
        if not self:
            return other
        return ClosureOverlay(
            self.closed_doors | other.closed_doors,
            self.sealed_partitions | other.sealed_partitions)

    def validate(self, space: IndoorSpace) -> None:
        """Reject ids that do not exist in ``space``."""
        unknown_doors = self.closed_doors - set(space.doors)
        if unknown_doors:
            raise ValueError(
                f"overlay closes unknown doors {sorted(unknown_doors)}")
        unknown_parts = self.sealed_partitions - set(space.partitions)
        if unknown_parts:
            raise ValueError(
                f"overlay seals unknown partitions {sorted(unknown_parts)}")

    # ------------------------------------------------------------------
    # Wire codec (``POST /search`` ``closures`` field, shard payloads)
    # ------------------------------------------------------------------
    def to_wire(self) -> Dict[str, List[int]]:
        doc: Dict[str, List[int]] = {}
        if self.closed_doors:
            doc["closed_doors"] = sorted(self.closed_doors)
        if self.sealed_partitions:
            doc["sealed_partitions"] = sorted(self.sealed_partitions)
        return doc

    @classmethod
    def from_wire(cls, doc: Optional[Dict]) -> "ClosureOverlay":
        if doc is None:
            return EMPTY_OVERLAY
        if isinstance(doc, ClosureOverlay):
            return doc
        if not isinstance(doc, dict):
            raise ValueError("closures must be a JSON object with "
                             "closed_doors / sealed_partitions lists")
        unknown = set(doc) - {"closed_doors", "sealed_partitions"}
        if unknown:
            raise ValueError(f"unknown closure fields {sorted(unknown)}")
        return cls(
            _frozen_ids(doc.get("closed_doors"), "closed_doors"),
            _frozen_ids(doc.get("sealed_partitions"), "sealed_partitions"))


#: The shared "no closures" overlay.
EMPTY_OVERLAY = ClosureOverlay()


def apply_closures(space: IndoorSpace,
                   overlay: ClosureOverlay) -> IndoorSpace:
    """The physically-edited venue an overlay is equivalent to.

    Every door and partition survives — a closed door keeps its id and
    position but loses all ``enters``/``leaves`` memberships, and a
    sealed partition is stripped from every door's sets — so dense CSR
    indexing and the position-derived indexes line up with the
    original space, which is what makes overlay answers *byte*-equal
    to a rebuild instead of merely route-equal.
    """
    overlay.validate(space)
    if not overlay:
        return space
    closed = overlay.closed_doors
    sealed = overlay.sealed_partitions
    doors = []
    for door in space.doors.values():
        if door.did in closed:
            doors.append(replace(door, enters=frozenset(),
                                 leaves=frozenset()))
            continue
        enters = door.enters - sealed
        leaves = door.leaves - sealed
        if enters != door.enters or leaves != door.leaves:
            door = replace(door, enters=enters, leaves=leaves)
        doors.append(door)
    return IndoorSpace(space.partitions.values(), doors)

"""Versioned per-venue dynamic state: deltas over immutable snapshots.

A :class:`DynamicView` is an immutable value holding everything a
venue's traffic needs beyond its snapshot generation: the persistent
:class:`~repro.dynamic.overlay.ClosureOverlay`, the door
:class:`~repro.dynamic.schedule.DoorSchedule` map, and the accumulated
keyword edit operations.  A :class:`DynamicStore` maps venue ids to
views and swaps them with a single reference assignment under a lock —
concurrent readers see either the old or the new view, never a blend,
and every view carries the monotonically increasing ``version`` that
answers are stamped with.

Delta operations (``POST /delta`` ``ops`` entries)::

    {"op": "close_door",       "did": 3}
    {"op": "open_door",        "did": 3}
    {"op": "seal_partition",   "pid": 7}
    {"op": "unseal_partition", "pid": 7}
    {"op": "set_schedule",     "did": 3, "open": [[start, end], ...]}
    {"op": "clear_schedule",   "did": 3}
    {"op": "set_iword",        "pid": 7, "iword": "brand"}
    {"op": "clear_iword",      "pid": 7}
    {"op": "set_twords",       "iword": "brand", "twords": ["a", "b"]}
    {"op": "add_twords",       "iword": "brand", "twords": ["c"]}

Door-state and schedule ops only touch the store (closures ride on
each request as compiled banned sets — shard workers stay stateless
for door state); keyword ops are also replayed inside every shard
worker, where :func:`apply_keyword_ops` derives a fresh
:class:`~repro.keywords.mappings.KeywordIndex` and a sibling engine
sharing the heavy immutable indexes, registered under the view's
``keyword_version`` so each answer is attributable to exactly one
version.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.dynamic.overlay import ClosureOverlay, EMPTY_OVERLAY
from repro.dynamic.schedule import DoorSchedule, compile_closed_doors
from repro.keywords.mappings import KeywordIndex

#: Ops that edit the keyword index (replayed in shard workers).
KEYWORD_OPS = frozenset(
    {"set_iword", "clear_iword", "set_twords", "add_twords"})
#: Ops that edit door/partition state (store-only; ride on requests).
DOOR_OPS = frozenset(
    {"close_door", "open_door", "seal_partition", "unseal_partition",
     "set_schedule", "clear_schedule"})


def is_keyword_op(op: Mapping) -> bool:
    return op.get("op") in KEYWORD_OPS


@dataclass(frozen=True)
class DynamicView:
    """One immutable version of a venue's dynamic state."""

    version: int = 0
    overlay: ClosureOverlay = EMPTY_OVERLAY
    schedules: Tuple[Tuple[int, DoorSchedule], ...] = ()
    keyword_version: int = 0
    keyword_ops: Tuple[Mapping, ...] = ()

    def schedule_map(self) -> Dict[int, DoorSchedule]:
        return dict(self.schedules)

    def effective_overlay(self,
                          at: Optional[float] = None,
                          extra: Optional[ClosureOverlay] = None,
                          ) -> ClosureOverlay:
        """Persistent closures ∪ compiled time windows ∪ per-query extra.

        Schedules only participate when the query supplies a timestamp
        — the compiled set is a pure function of ``(view, at)``, so
        identical requests always see identical banned sets.
        """
        overlay = self.overlay
        if at is not None and self.schedules:
            scheduled = compile_closed_doors(dict(self.schedules), at)
            if scheduled:
                overlay = overlay.merge(ClosureOverlay(scheduled))
        if extra:
            overlay = overlay.merge(extra)
        return overlay

    def describe(self) -> Dict:
        """The control-plane document (``GET /venues``)."""
        return {
            "version": self.version,
            "keyword_version": self.keyword_version,
            "closed_doors": sorted(self.overlay.closed_doors),
            "sealed_partitions": sorted(self.overlay.sealed_partitions),
            "scheduled_doors": sorted(did for did, _ in self.schedules),
        }


#: The shared version-0 view every venue starts from.
EMPTY_VIEW = DynamicView()


class DeltaError(ValueError):
    """A malformed or inapplicable delta operation."""


def _require(op: Mapping, key: str, kind, what: str):
    value = op.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise DeltaError(f"{op.get('op')!r} needs {what} {key!r}, "
                         f"got {value!r}")
    return value


def validate_ops(ops) -> List[Mapping]:
    """Validate a ``POST /delta`` ``ops`` payload; returns it as a list."""
    if not isinstance(ops, (list, tuple)) or not ops:
        raise DeltaError("delta needs a non-empty list of ops")
    out: List[Mapping] = []
    for op in ops:
        if not isinstance(op, Mapping):
            raise DeltaError(f"each op must be an object, got {op!r}")
        name = op.get("op")
        if name in ("close_door", "open_door"):
            _require(op, "did", int, "a door id")
        elif name in ("seal_partition", "unseal_partition"):
            _require(op, "pid", int, "a partition id")
        elif name == "set_schedule":
            _require(op, "did", int, "a door id")
            try:
                DoorSchedule.from_wire(op.get("open", []))
            except ValueError as exc:
                raise DeltaError(str(exc)) from None
        elif name == "clear_schedule":
            _require(op, "did", int, "a door id")
        elif name == "set_iword":
            _require(op, "pid", int, "a partition id")
            _require(op, "iword", str, "an i-word")
        elif name == "clear_iword":
            _require(op, "pid", int, "a partition id")
        elif name in ("set_twords", "add_twords"):
            _require(op, "iword", str, "an i-word")
            twords = op.get("twords")
            if (not isinstance(twords, (list, tuple))
                    or not all(isinstance(t, str) for t in twords)):
                raise DeltaError(f"{name!r} needs a list of t-word "
                                 f"strings, got {twords!r}")
        else:
            raise DeltaError(f"unknown delta op {name!r}")
        out.append(dict(op))
    return out


def apply_keyword_ops(kindex: KeywordIndex,
                      ops: Iterable[Mapping]) -> KeywordIndex:
    """A fresh :class:`KeywordIndex` with ``ops`` applied.

    ``KeywordIndex`` interning is append-only (re-assigning a
    partition raises), so edits derive a new index: the current
    assignments and t-word sets are lifted into plain dicts, mutated,
    and rebuilt in sorted order.  Answers depend only on the set
    algebra (the bitmask layer is proven equivalent to it), so the
    rebuilt interning order never shows in results.
    """
    assigned: Dict[int, str] = {
        pid: kindex.p2i(pid) for pid in kindex.labelled_partitions()}
    twords: Dict[str, set] = {
        iword: set(kindex.i2t(iword)) for iword in kindex.iwords}
    for op in ops:
        name = op.get("op")
        if name == "set_iword":
            assigned[op["pid"]] = op["iword"]
            twords.setdefault(op["iword"], set())
        elif name == "clear_iword":
            assigned.pop(op["pid"], None)
        elif name == "set_twords":
            twords[op["iword"]] = set(op["twords"])
        elif name == "add_twords":
            twords.setdefault(op["iword"], set()).update(op["twords"])
        elif name in DOOR_OPS:
            continue
        else:
            raise DeltaError(f"unknown keyword op {name!r}")
    out = KeywordIndex()
    for pid in sorted(assigned):
        out.assign_iword(pid, assigned[pid])
    for iword in sorted(twords):
        out.add_twords(iword, sorted(twords[iword]))
    return out


class DynamicStore:
    """Per-venue dynamic views behind one atomic reference swap.

    Readers call :meth:`view` with no lock beyond the dict read (a
    single reference load — concurrent queries see exactly one view);
    writers serialise on the store lock, derive the next immutable
    view, and publish it with one assignment.
    """

    def __init__(self) -> None:
        self._views: Dict[str, DynamicView] = {}
        self._lock = threading.Lock()

    def view(self, venue: str) -> DynamicView:
        return self._views.get(venue, EMPTY_VIEW)

    def venues(self) -> List[str]:
        with self._lock:
            return sorted(self._views)

    def apply(self, venue: str, ops) -> Tuple[DynamicView, DynamicView]:
        """Derive and immediately publish; returns ``(old, new)``."""
        old, new = self.derive(venue, ops)
        self.publish(venue, new)
        return old, new

    def publish(self, venue: str, view: DynamicView) -> None:
        """Atomically install ``view`` as the venue's current state.

        The dispatcher derives first, broadcasts keyword edits into
        every shard, and publishes only after the fleet holds the new
        keyword version — so no admitted request is ever stamped with
        a ``keyword_version`` its shard cannot serve.
        """
        with self._lock:
            self._views[venue] = view

    def derive(self, venue: str, ops) -> Tuple[DynamicView, DynamicView]:
        """The next view ``ops`` would produce, without publishing."""
        ops = validate_ops(ops)
        with self._lock:
            old = self._views.get(venue, EMPTY_VIEW)
            closed = set(old.overlay.closed_doors)
            sealed = set(old.overlay.sealed_partitions)
            schedules = dict(old.schedules)
            keyword_ops = list(old.keyword_ops)
            keyword_edits = 0
            for op in ops:
                name = op["op"]
                if name == "close_door":
                    closed.add(op["did"])
                elif name == "open_door":
                    closed.discard(op["did"])
                elif name == "seal_partition":
                    sealed.add(op["pid"])
                elif name == "unseal_partition":
                    sealed.discard(op["pid"])
                elif name == "set_schedule":
                    schedules[op["did"]] = DoorSchedule.from_wire(
                        op.get("open", []))
                elif name == "clear_schedule":
                    schedules.pop(op["did"], None)
                else:
                    keyword_ops.append(op)
                    keyword_edits += 1
            new = DynamicView(
                version=old.version + 1,
                overlay=ClosureOverlay(frozenset(closed), frozenset(sealed)),
                schedules=tuple(sorted(schedules.items(),
                                       key=lambda item: item[0])),
                keyword_version=(old.keyword_version + 1 if keyword_edits
                                 else old.keyword_version),
                keyword_ops=tuple(keyword_ops))
            return old, new

    def drop(self, venue: str) -> None:
        with self._lock:
            self._views.pop(venue, None)

    def describe(self) -> Dict[str, Dict]:
        with self._lock:
            return {venue: view.describe()
                    for venue, view in self._views.items()}

"""Door open/close time windows compiled to closure overlays.

A :class:`DoorSchedule` lists the weekly windows during which a door
is *open*; outside every window the door is closed.  Schedules are
evaluated against a query-supplied POSIX timestamp (``at``) and
compiled — before dispatch, never inside the search — into the banned
set of a :class:`~repro.dynamic.overlay.ClosureOverlay`, so the query
core stays timestamp-free and the byte-identity contract reduces to
the closure case.

Windows are ``(start, end)`` second offsets into a week anchored at
Monday 00:00 UTC (``0 <= start < WEEK_S``).  ``end`` may be smaller
than ``start``, meaning the window wraps over the week boundary
(e.g. a door open Sunday evening through Monday morning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

#: Seconds per week; schedules repeat on this cycle.
WEEK_S = 7 * 24 * 3600
#: Seconds per day, for the convenience constructors.
DAY_S = 24 * 3600

#: Unix epoch (1970-01-01) was a Thursday; shift so week offset 0 is
#: Monday 00:00 UTC.
_EPOCH_WEEKDAY_SHIFT = 3 * DAY_S


def week_offset(at: float) -> float:
    """Seconds into the schedule week for POSIX timestamp ``at``."""
    return (float(at) + _EPOCH_WEEKDAY_SHIFT) % WEEK_S


@dataclass(frozen=True)
class DoorSchedule:
    """Weekly open windows of one door.

    ``windows`` is a normalised (sorted, deduplicated) tuple of
    ``(start, end)`` week offsets.  An empty tuple means the door is
    *never* open — a hard lockdown expressed as a schedule.
    """

    windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        seen = []
        for window in self.windows:
            try:
                start, end = window
                start, end = float(start), float(end)
            except (TypeError, ValueError):
                raise ValueError(
                    f"schedule window must be a (start, end) pair of "
                    f"week-second offsets, got {window!r}") from None
            if not (0.0 <= start < WEEK_S) or not (0.0 <= end <= WEEK_S):
                raise ValueError(
                    f"window offsets must lie within one week "
                    f"(0..{WEEK_S}), got {window!r}")
            if start == end:
                raise ValueError(
                    f"zero-length window {window!r}; omit it or use a "
                    f"wrapping window for always-open")
            seen.append((start, end))
        object.__setattr__(self, "windows", tuple(sorted(set(seen))))

    # ------------------------------------------------------------------
    def is_open(self, at: float) -> bool:
        """Whether the door is open at POSIX timestamp ``at``."""
        t = week_offset(at)
        for start, end in self.windows:
            if start < end:
                if start <= t < end:
                    return True
            elif t >= start or t < end:  # wraps the week boundary
                return True
        return False

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def daily(cls, open_s: float, close_s: float) -> "DoorSchedule":
        """Open every day between day offsets ``open_s``..``close_s``."""
        if not (0.0 <= open_s < DAY_S) or not (0.0 <= close_s <= DAY_S):
            raise ValueError("daily offsets must lie within one day")
        return cls(tuple((day * DAY_S + open_s, day * DAY_S + close_s)
                         for day in range(7)))

    @classmethod
    def always_closed(cls) -> "DoorSchedule":
        return cls(())

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------
    def to_wire(self) -> List[List[float]]:
        return [[start, end] for start, end in self.windows]

    @classmethod
    def from_wire(cls, doc) -> "DoorSchedule":
        if isinstance(doc, DoorSchedule):
            return doc
        if not isinstance(doc, (list, tuple)):
            raise ValueError("schedule must be a list of [start, end] "
                             "week-second windows")
        return cls(tuple((w[0], w[1]) if isinstance(w, (list, tuple))
                         and len(w) == 2 else (None,)
                         for w in doc))


def compile_closed_doors(schedules: Mapping[int, DoorSchedule],
                         at: float) -> FrozenSet[int]:
    """Doors whose schedule says *closed* at timestamp ``at``."""
    return frozenset(did for did, schedule in schedules.items()
                     if not schedule.is_open(at))

"""Workload runner with the paper's timing/memory methodology.

For each parameter setting the paper generates ten query instances
with random keyword lists, runs each five times, and reports the
average running time and memory per run of a single query instance.
:class:`BenchHarness` reproduces that loop for any algorithm subset,
reading the memory proxy from :class:`~repro.core.stats.SearchStats`
(peak live route items + auxiliary structures, in MB).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.engine import IKRQEngine, canonical_algorithm
from repro.core.query import IKRQ
from repro.datasets.queries import QueryWorkload


@dataclass
class AlgorithmRun:
    """Aggregated measurements of one algorithm on one workload."""

    algorithm: str
    times_ms: List[float] = field(default_factory=list)
    memory_mb: List[float] = field(default_factory=list)
    routes_returned: List[int] = field(default_factory=list)
    homogeneous_rates: List[float] = field(default_factory=list)
    pops: List[int] = field(default_factory=list)

    @property
    def avg_time_ms(self) -> float:
        return statistics.fmean(self.times_ms) if self.times_ms else 0.0

    @property
    def avg_memory_mb(self) -> float:
        return statistics.fmean(self.memory_mb) if self.memory_mb else 0.0

    @property
    def avg_routes(self) -> float:
        return statistics.fmean(self.routes_returned) if self.routes_returned else 0.0

    @property
    def avg_homogeneous_rate(self) -> float:
        return (statistics.fmean(self.homogeneous_rates)
                if self.homogeneous_rates else 0.0)

    def as_row(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm,
            "time_ms": round(self.avg_time_ms, 3),
            "memory_mb": round(self.avg_memory_mb, 4),
            "routes": round(self.avg_routes, 2),
        }


@dataclass
class SettingResult:
    """All algorithm runs for one parameter setting."""

    setting: Dict[str, float]
    runs: Dict[str, AlgorithmRun]

    def row(self, algorithm: str) -> AlgorithmRun:
        return self.runs[canonical_algorithm(algorithm)]


class BenchHarness:
    """Run algorithm sets over query workloads.

    Args:
        engine: The engine to query (owns the shared oracles, so the
            per-query cost excludes one-time index construction —
            matching the paper, whose mappings/matrices are resident).
        repeats: Runs per query instance (paper: 5).
        max_expansions: Optional safety cap forwarded to the search
            (used for the unbounded ToE\\P ablation on large venues).
    """

    def __init__(self,
                 engine: IKRQEngine,
                 repeats: int = 5,
                 max_expansions: Optional[int] = None) -> None:
        self.engine = engine
        self.repeats = repeats
        self.max_expansions = max_expansions

    # ------------------------------------------------------------------
    def run_query(self, query: IKRQ, algorithm: str) -> AlgorithmRun:
        run = AlgorithmRun(algorithm=canonical_algorithm(algorithm))
        for _ in range(self.repeats):
            started = time.perf_counter()
            answer = self.engine.search(
                query, algorithm, max_expansions=self.max_expansions)
            elapsed = (time.perf_counter() - started) * 1000.0
            run.times_ms.append(elapsed)
            run.memory_mb.append(answer.stats.estimated_peak_mb())
            run.routes_returned.append(len(answer.routes))
            run.pops.append(answer.stats.stamps_popped)
            # Homogeneous rate needs the result classes; recompute from
            # the returned routes' key-partition sequences.
            kps = [r.kp for r in answer.routes]
            dup = sum(1 for kp in kps if kps.count(kp) > 1)
            run.homogeneous_rates.append(dup / len(kps) if kps else 0.0)
        return run

    def run_workload(self,
                     workload: QueryWorkload,
                     algorithms: Sequence[str],
                     setting: Optional[Dict[str, float]] = None,
                     ) -> SettingResult:
        """Average each algorithm over every instance of a workload."""
        runs: Dict[str, AlgorithmRun] = {}
        for algorithm in algorithms:
            name = canonical_algorithm(algorithm)
            merged = AlgorithmRun(algorithm=name)
            for query in workload:
                one = self.run_query(query, name)
                merged.times_ms.append(one.avg_time_ms)
                merged.memory_mb.append(one.avg_memory_mb)
                merged.routes_returned.append(one.avg_routes)
                merged.homogeneous_rates.append(one.avg_homogeneous_rate)
                merged.pops.extend(one.pops)
            runs[name] = merged
        return SettingResult(setting=dict(setting or {}), runs=runs)

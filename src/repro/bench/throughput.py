"""Queries/second of sequential vs. batched vs. sharded IKRQ execution.

The paper measures per-query latency; a production engine additionally
cares about *throughput* under traffic.  This experiment replays a
query stream — a pool of distinct queries drawn over a handful of
``(ps, pt)`` endpoint pairs and keyword lists, repeated the way real
kiosk/app traffic repeats — several ways:

* **sequential**: one bare ``engine.search`` call per stream item,
  the way a naive server would evaluate each request in isolation,
* **batched**: one ``QueryService.search_batch`` call, which fans the
  stream over worker threads and amortises per-endpoint attachment
  maps, keyword conversion, Dijkstra workspaces, and repeated
  identical requests across the batch,
* **sharded** (``--serve``): the stream dispatched over a
  :class:`~repro.serve.pool.ShardPool` of snapshot-loaded worker
  *processes* through the affinity dispatcher — the configuration
  expected to beat the GIL-bound thread pool on ≥ 2 cores.

Every mode must return bit-identical results (route item sequences,
distances and scores); the comparison is throughput only.  Runs append
to a ``BENCH_throughput.json`` trajectory artifact at the repo root so
speedups can be tracked across commits.

Run it from the shell::

    python benchmarks/bench_throughput.py --venue fig1 --pool 12 --repeat 4
    python benchmarks/bench_throughput.py --serve --workers 2
    python -m repro.bench throughput --workers 4
    python -m repro.bench throughput --serve
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import IKRQEngine, QueryService, canonical_algorithm
from repro.core.query import IKRQ
from repro.datasets import paper_fig1
from repro.space.entities import PartitionKind

#: Default trajectory artifact, relative to the invoking directory
#: (the repo root in CI and normal usage).
DEFAULT_ARTIFACT = "BENCH_throughput.json"


def latency_percentiles(seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 (+ mean/max) of a latency sample, in milliseconds.

    Nearest-rank percentiles over the sorted sample — deterministic,
    no interpolation — so trajectory entries compare cleanly across
    runs.
    """
    if not seconds:
        return {}
    data = sorted(seconds)
    n = len(data)

    def pct(p: float) -> float:
        k = max(0, min(n - 1, math.ceil(p / 100.0 * n) - 1))
        return data[k] * 1000.0

    return {
        "p50_ms": pct(50.0),
        "p95_ms": pct(95.0),
        "p99_ms": pct(99.0),
        "mean_ms": sum(data) / n * 1000.0,
        "max_ms": data[-1] * 1000.0,
    }


def _endpoint_pool(engine: IKRQEngine,
                   rng: random.Random,
                   count: int):
    """Distinct ``(ps, pt)`` pairs anchored in hallway partitions."""
    space = engine.space
    hallways = [p for p in space.partitions.values()
                if p.kind is PartitionKind.HALLWAY]
    anchors = hallways or list(space.partitions.values())
    pairs = []
    for _ in range(count):
        a = rng.choice(anchors)
        b = rng.choice(anchors)
        pairs.append((a.footprint.random_interior_point(rng),
                      b.footprint.random_interior_point(rng)))
    return pairs


def _keyword_pool(engine: IKRQEngine,
                  rng: random.Random,
                  count: int) -> List[Tuple[str, ...]]:
    iwords = sorted(engine.kindex.iwords)
    twords = sorted(engine.kindex.vocabulary.twords)
    pool: List[Tuple[str, ...]] = []
    for _ in range(count):
        kws = [rng.choice(iwords)]
        if twords and rng.random() < 0.7:
            kws.append(rng.choice(twords))
        pool.append(tuple(kws))
    return pool


def build_stream(engine: IKRQEngine,
                 pool: int = 12,
                 repeat: int = 4,
                 endpoints: int = 4,
                 delta: float = 70.0,
                 seed: int = 7) -> List[IKRQ]:
    """A shuffled traffic stream of ``pool`` distinct queries × ``repeat``."""
    rng = random.Random(seed)
    pairs = _endpoint_pool(engine, rng, endpoints)
    keywords = _keyword_pool(engine, rng, max(pool, 1))
    distinct: List[IKRQ] = []
    for i in range(pool):
        ps, pt = pairs[i % len(pairs)]
        distinct.append(IKRQ(
            ps=ps, pt=pt,
            delta=delta * rng.uniform(0.8, 1.2),
            keywords=keywords[i],
            k=rng.choice((1, 3, 5)),
            alpha=rng.choice((0.3, 0.5, 0.7))))
    stream = [distinct[i % pool] for i in range(pool * repeat)]
    rng.shuffle(stream)
    return stream


def _signature(answers) -> List[list]:
    """Exact result signature: items, vias, distance, score per route."""
    return [[(tuple(repr(i) for i in r.route.items), r.route.vias,
              r.distance, r.score) for r in answer.routes]
            for answer in answers]


def build_engine(venue: str, scale: float, seed: int) -> IKRQEngine:
    if venue == "fig1":
        fixture = paper_fig1()
        return IKRQEngine(fixture.space, fixture.kindex)
    if venue == "synthetic":
        from repro.bench import experiments as E
        return E.synthetic_env(floors=2, scale=scale, seed=seed).engine
    if venue == "synth":
        from repro.datasets.synth import SynthMallConfig, build_synth_mall
        space, kindex = build_synth_mall(SynthMallConfig(
            floors=2, rooms_per_floor=16, words_per_room=4, seed=seed))
        return IKRQEngine(space, kindex)
    raise ValueError(
        f"unknown venue {venue!r}; choose fig1, synthetic or synth")


def run_throughput(venue: str = "fig1",
                   algorithm: str = "ToE",
                   pool: int = 12,
                   repeat: int = 4,
                   endpoints: int = 4,
                   workers: int = 4,
                   scale: float = 0.12,
                   seed: int = 7,
                   engine: Optional[IKRQEngine] = None) -> Dict:
    """Measure sequential vs. batched q/s and verify identical results."""
    algorithm = canonical_algorithm(algorithm)
    engine = engine or build_engine(venue, scale, seed)
    stream = build_stream(engine, pool=pool, repeat=repeat,
                          endpoints=endpoints, seed=seed)
    # Warm the engine-level oracles so neither mode pays one-time
    # construction costs inside its timed region.
    for query in stream[:min(3, len(stream))]:
        engine.search(query, algorithm)

    sequential = []
    sequential_lat: List[float] = []
    started = time.perf_counter()
    for query in stream:
        q_started = time.perf_counter()
        sequential.append(engine.search(query, algorithm))
        sequential_lat.append(time.perf_counter() - q_started)
    sequential_s = time.perf_counter() - started

    service = QueryService(engine, workers=workers)
    batched_lat: List[float] = []
    started = time.perf_counter()
    batched = service.search_batch(stream, algorithm, workers=workers,
                                   timings=batched_lat)
    batched_s = time.perf_counter() - started

    if _signature(sequential) != _signature(batched):
        raise AssertionError(
            "batched results differ from sequential execution")

    n = len(stream)
    result = {
        "mode": "batched",
        "venue": venue,
        "algorithm": algorithm,
        "queries": n,
        "distinct_queries": pool,
        "workers": workers,
        "sequential_qps": n / sequential_s if sequential_s else float("inf"),
        "batched_qps": n / batched_s if batched_s else float("inf"),
        "sequential_seconds": sequential_s,
        "batched_seconds": batched_s,
        "latency_ms": {
            "sequential": latency_percentiles(sequential_lat),
            "batched": latency_percentiles(batched_lat),
        },
        "verified_identical": True,
        "service_stats": service.stats.as_dict(),
    }
    result["speedup"] = (result["batched_qps"] / result["sequential_qps"]
                         if result["sequential_qps"] else float("inf"))
    return result


def run_serve_throughput(venue: str = "fig1",
                         algorithm: str = "ToE",
                         pool: int = 12,
                         repeat: int = 4,
                         endpoints: int = 4,
                         workers: int = 2,
                         scale: float = 0.12,
                         seed: int = 7,
                         engine: Optional[IKRQEngine] = None) -> Dict:
    """Threaded ``QueryService`` vs. sharded process pool q/s.

    Both modes replay the same stream; the sharded run loads an index
    snapshot per worker process and dispatches through the affinity
    dispatcher (process startup and snapshot baking are excluded from
    the timed region, mirroring the warm-up of :func:`run_throughput`).
    Results must be byte-identical across modes; on a single core the
    sharded mode records its (expected) loss honestly — the GIL win
    needs ≥ 2 cores.
    """
    from repro.serve import (ShardDispatcher, ShardPool, answer_to_wire,
                             canonical_json, query_to_wire, save_snapshot)

    algorithm = canonical_algorithm(algorithm)
    engine = engine or build_engine(venue, scale, seed)
    stream = build_stream(engine, pool=pool, repeat=repeat,
                          endpoints=endpoints, seed=seed)
    for query in stream[:min(3, len(stream))]:
        engine.search(query, algorithm)

    service = QueryService(engine, workers=workers)
    threaded_lat: List[float] = []
    started = time.perf_counter()
    threaded = service.search_batch(stream, algorithm, workers=workers,
                                    timings=threaded_lat)
    threaded_s = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        snapshot_path = os.path.join(tmp, "snapshot.json")
        save_snapshot(snapshot_path, engine)
        wire_stream = [query_to_wire(q) for q in stream]
        sharded_lat: List[float] = []

        with ShardPool(snapshot_path, shards=workers) as shard_pool:
            dispatcher = ShardDispatcher(
                shard_pool, max_pending=max(64, len(stream)))

            def submit_timed(doc):
                q_started = time.perf_counter()
                response = dispatcher.submit(doc, algorithm)
                sharded_lat.append(time.perf_counter() - q_started)
                return response

            for doc in wire_stream[:min(3, len(wire_stream))]:
                dispatcher.submit(doc, algorithm)
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=workers) as tp:
                sharded = list(tp.map(submit_timed, wire_stream))
            sharded_s = time.perf_counter() - started
            shard_stats = [doc.get("stats") for doc in shard_pool.stats()]

    expected = [canonical_json(answer_to_wire(a)) for a in threaded]
    got = [canonical_json({"algorithm": r.get("algorithm"),
                           "routes": r.get("routes")})
           if r.get("status") == "ok" else repr(r)
           for r in sharded]
    if expected != got:
        raise AssertionError(
            "sharded results differ from threaded QueryService execution")

    n = len(stream)
    result = {
        "mode": "serve",
        "venue": venue,
        "algorithm": algorithm,
        "queries": n,
        "distinct_queries": pool,
        "workers": workers,
        "cores": os.cpu_count(),
        "threaded_qps": n / threaded_s if threaded_s else float("inf"),
        "sharded_qps": n / sharded_s if sharded_s else float("inf"),
        "threaded_seconds": threaded_s,
        "sharded_seconds": sharded_s,
        "latency_ms": {
            "threaded": latency_percentiles(threaded_lat),
            "sharded": latency_percentiles(sharded_lat),
        },
        "verified_identical": True,
        "shard_stats": shard_stats,
    }
    result["speedup"] = (result["sharded_qps"] / result["threaded_qps"]
                         if result["threaded_qps"] else float("inf"))
    return result


def append_trajectory(path: Union[str, Path], entry: Dict) -> None:
    """Append one run to the throughput trajectory artifact.

    The artifact is a growing JSON document (``entries`` in run order)
    so successive commits/runs chart the throughput history; a corrupt
    or foreign file is replaced rather than crashed on.
    """
    artifact = Path(path)
    doc: Dict = {"format": "repro-bench-trajectory", "version": 1,
                 "entries": []}
    if artifact.exists():
        try:
            existing = json.loads(artifact.read_text())
            if (isinstance(existing, dict)
                    and existing.get("format") == doc["format"]
                    and isinstance(existing.get("entries"), list)):
                doc = existing
        except (ValueError, OSError):
            pass
    entry = dict(entry)
    entry.setdefault("recorded_unix", round(time.time(), 3))
    doc["entries"].append(entry)
    artifact.write_text(json.dumps(doc, indent=1, sort_keys=True))


def _format_latency_line(result: Dict) -> str:
    parts = []
    for mode, pct in sorted(result.get("latency_ms", {}).items()):
        if pct:
            parts.append(f"{mode} p50={pct['p50_ms']:.2f} "
                         f"p95={pct['p95_ms']:.2f} p99={pct['p99_ms']:.2f}")
    return "  latency ms : " + ("; ".join(parts) if parts else "n/a")


def format_serve_report(result: Dict) -> str:
    lines = [
        f"venue={result['venue']} algorithm={result['algorithm']} "
        f"queries={result['queries']} "
        f"(distinct={result['distinct_queries']}) "
        f"workers={result['workers']} cores={result['cores']}",
        f"  threaded   : {result['threaded_qps']:10.1f} q/s "
        f"({result['threaded_seconds'] * 1000.0:8.1f} ms)",
        f"  sharded    : {result['sharded_qps']:10.1f} q/s "
        f"({result['sharded_seconds'] * 1000.0:8.1f} ms)",
        f"  speedup    : {result['speedup']:10.2f}x   "
        f"results identical: {result['verified_identical']}",
        _format_latency_line(result),
    ]
    if result["cores"] and result["cores"] < 2:
        lines.append("  (single core: the sharded win needs >= 2 cores; "
                     "recorded for the trajectory)")
    return "\n".join(lines)


def format_report(result: Dict) -> str:
    lines = [
        f"venue={result['venue']} algorithm={result['algorithm']} "
        f"queries={result['queries']} "
        f"(distinct={result['distinct_queries']}) "
        f"workers={result['workers']}",
        f"  sequential : {result['sequential_qps']:10.1f} q/s "
        f"({result['sequential_seconds'] * 1000.0:8.1f} ms)",
        f"  batched    : {result['batched_qps']:10.1f} q/s "
        f"({result['batched_seconds'] * 1000.0:8.1f} ms)",
        f"  speedup    : {result['speedup']:10.2f}x   "
        f"results identical: {result['verified_identical']}",
        _format_latency_line(result),
        f"  service    : {result['service_stats']}",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark sequential vs. batched IKRQ throughput.")
    parser.add_argument("--venue", default="fig1",
                        choices=("fig1", "synthetic", "synth"))
    parser.add_argument("--algorithm", default="ToE")
    parser.add_argument("--pool", type=int, default=12,
                        help="distinct queries in the traffic pool")
    parser.add_argument("--repeat", type=int, default=4,
                        help="how often the pool repeats in the stream")
    parser.add_argument("--endpoints", type=int, default=4,
                        help="distinct (ps, pt) endpoint pairs")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.12,
                        help="synthetic venue scale")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--serve", action="store_true",
                        help="compare the threaded QueryService against "
                             "the sharded multi-process pool instead")
    parser.add_argument("--artifact", default=DEFAULT_ARTIFACT,
                        help="trajectory JSON to append results to "
                             "('' disables)")
    args = parser.parse_args(argv)
    if args.serve:
        result = run_serve_throughput(
            venue=args.venue, algorithm=args.algorithm, pool=args.pool,
            repeat=args.repeat, endpoints=args.endpoints,
            workers=args.workers, scale=args.scale, seed=args.seed)
        print(format_serve_report(result))
    else:
        result = run_throughput(
            venue=args.venue, algorithm=args.algorithm, pool=args.pool,
            repeat=args.repeat, endpoints=args.endpoints,
            workers=args.workers, scale=args.scale, seed=args.seed)
        print(format_report(result))
    if args.artifact:
        append_trajectory(args.artifact, result)
        print(f"trajectory appended to {args.artifact}")
    # The benchmark raises when results diverge; the exit code gates
    # on correctness only — a timing comparison is not a pass/fail
    # criterion on shared CI runners.
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via wrapper
    import sys
    sys.exit(main())

"""Command-line runner for the paper's experiments.

Regenerate any figure of the evaluation (Section V)::

    python -m repro.bench fig05                 # one figure, CI scale
    python -m repro.bench fig05 --scale 1.0     # paper-size venue
    python -m repro.bench all --scale 0.25      # every figure
    python -m repro.bench --list                # figure index

Each figure prints its time (and, where applicable, memory /
homogeneous-rate) series in the same axes as the paper.  Absolute
milliseconds are not comparable to the authors' Java testbed; the
*shapes* — who wins, by what factor, where crossovers fall — are what
the reproduction tracks (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench import experiments as E
from repro.bench import scale as S
from repro.bench import throughput as T
from repro.bench.reporting import format_series

#: Which series to print per figure: (x key, metrics).
FIGURE_AXES = {
    "fig04": ("setting", ("time_ms",)),
    "fig05": ("k", ("time_ms",)),
    "fig06_07": ("qw", ("time_ms", "memory_mb")),
    "fig08_09": ("eta", ("time_ms", "memory_mb")),
    "fig10": ("beta", ("time_ms",)),
    "fig11": ("floors", ("time_ms",)),
    "fig12": ("s2t", ("time_ms",)),
    "fig13_14": ("eta", ("time_ms", "memory_mb")),
    "fig15": ("eta", ("time_ms",)),
    "fig16": ("k", ("homogeneous_rate",)),
    "fig17_18": ("qw", ("time_ms", "memory_mb")),
    "fig19": ("eta", ("time_ms",)),
    "fig20": ("qw", ("homogeneous_rate",)),
}

DESCRIPTIONS = {
    "fig04": "default-setting overview of all seven algorithms",
    "fig05": "running time vs. k",
    "fig06_07": "time and memory vs. |QW|",
    "fig08_09": "time and memory vs. eta",
    "fig10": "time vs. i-word fraction beta (ToE vs KoE)",
    "fig11": "time vs. floor count (ToE vs KoE)",
    "fig12": "time vs. start-terminal distance (ToE vs KoE)",
    "fig13_14": "KoE vs KoE*: time and memory vs. eta",
    "fig15": "ToE vs ToE\\P: time vs. eta",
    "fig16": "ToE\\P homogeneous rate vs. k",
    "fig17_18": "real data: time and memory vs. |QW|",
    "fig19": "real data: time vs. eta",
    "fig20": "real data: ToE\\P homogeneous rate vs. |QW|",
}

#: Non-figure experiments (not in the paper; engine-growth workloads).
EXTRA_DESCRIPTIONS = {
    "throughput": "queries/second: sequential vs. batched QueryService "
                  "(--serve: threaded vs. sharded process pool)",
    "scale": "array-native core vs. the retained dict core on growing "
             "synthetic malls (identity-verified, with latency "
             "percentiles and snapshot cold-start times)",
    "tenancy": "multi-venue serving under fire: hammer N synthetic "
               "malls while hot-swapping one to a new snapshot "
               "generation (byte-identity, shed rate, swap latency)",
    "memory": "tenants per memory budget with and without the memory "
              "tiers (mmap-shared snapshots, disk-spilled matrix rows; "
              "byte-identity + spilled-row fault latency)",
    "chaos": "fault tolerance under fire: SIGKILL live shard workers "
             "mid-stream on a deterministic schedule (zero non-shed "
             "failures, byte-identity, recovery, bounded p99)",
    "soak": "open-loop arrival-process traffic (Poisson/bursty, zipf "
            "tenant mix) with coordinated-omission-corrected latency, "
            "SLO-gated saturation search, and a closure-surge scenario",
}


def run_throughput(args) -> dict:
    print(f"\n=== throughput: {EXTRA_DESCRIPTIONS['throughput']} "
          f"(venue={args.venue}, workers={args.workers}, "
          f"serve={args.serve}) ===")
    if args.serve:
        result = T.run_serve_throughput(
            venue=args.venue, pool=args.pool, repeat=args.repeats_pool,
            workers=args.workers, scale=args.scale)
        print(T.format_serve_report(result))
    else:
        result = T.run_throughput(
            venue=args.venue, pool=args.pool, repeat=args.repeats_pool,
            workers=args.workers, scale=args.scale)
        print(T.format_report(result))
    if args.artifact:
        T.append_trajectory(args.artifact, result)
        print(f"trajectory appended to {args.artifact}")
    return result


def run_figure(figure: str, scale: float, instances: int,
               repeats: int) -> dict:
    func = E.REGISTRY[figure]
    x_key, metrics = FIGURE_AXES[figure]
    print(f"\n=== {figure}: {DESCRIPTIONS[figure]} "
          f"(scale={scale}, instances={instances}, repeats={repeats}) ===")
    started = time.perf_counter()
    results = func(scale=scale, instances=instances, repeats=repeats)
    elapsed = time.perf_counter() - started
    for metric in metrics:
        print(f"\n[{metric}]")
        print(format_series(results, x_key, metric))
    print(f"\n({figure} completed in {elapsed:.1f}s)")
    return {
        "figure": figure,
        "description": DESCRIPTIONS[figure],
        "x_key": x_key,
        "elapsed_seconds": round(elapsed, 3),
        "settings": [
            {
                "setting": r.setting,
                "runs": {
                    name: {
                        "time_ms": run.avg_time_ms,
                        "memory_mb": run.avg_memory_mb,
                        "routes": run.avg_routes,
                        "homogeneous_rate": run.avg_homogeneous_rate,
                    }
                    for name, run in r.runs.items()
                },
            }
            for r in results
        ],
    }


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scale":
        # The scale bench owns its own CLI (--floors, --smoke, ...):
        # `python -m repro.bench scale --floors 10`.
        return S.main(argv[1:])
    if argv and argv[0] == "tenancy":
        # So does the tenancy bench (--venues, --shards, --smoke, ...):
        # `python -m repro.bench tenancy --venues 4`.
        from repro.bench import tenancy as TN
        return TN.main(argv[1:])
    if argv and argv[0] == "memory":
        # And the memory-tiering bench (--budget-tenants, --smoke, ...):
        # `python -m repro.bench memory --floors 2`.
        from repro.bench import memory as M
        return M.main(argv[1:])
    if argv and argv[0] == "chaos":
        # And the fault-tolerance chaos harness (--kills, --smoke, ...):
        # `python -m repro.bench chaos --shards 3`.
        from repro.bench import chaos as CH
        return CH.main(argv[1:])
    if argv and argv[0] == "soak":
        # And the open-loop soak harness (--tenants, --smoke, ...):
        # `python -m repro.bench soak --tenants 3 --floors 50`.
        from repro.bench import soak as SK
        return SK.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation figures.")
    parser.add_argument("figures", nargs="*",
                        help="figure ids (e.g. fig05), or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available figures")
    parser.add_argument("--scale", type=float, default=E.DEFAULT_SCALE,
                        help="venue scale; 1.0 = paper size "
                             f"(default {E.DEFAULT_SCALE})")
    parser.add_argument("--instances", type=int, default=E.DEFAULT_INSTANCES,
                        help="query instances per setting (paper: 10)")
    parser.add_argument("--repeats", type=int, default=E.DEFAULT_REPEATS,
                        help="runs per instance (paper: 5)")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write results to this JSON file")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-pool size for 'throughput'")
    parser.add_argument("--venue", default="fig1",
                        choices=("fig1", "synthetic", "synth"),
                        help="venue for 'throughput'")
    parser.add_argument("--pool", type=int, default=12,
                        help="distinct queries for 'throughput'")
    parser.add_argument("--repeats-pool", type=int, default=4,
                        help="pool repetitions for 'throughput'")
    parser.add_argument("--serve", action="store_true",
                        help="'throughput': sharded process pool vs. "
                             "threaded QueryService")
    parser.add_argument("--artifact", default=T.DEFAULT_ARTIFACT,
                        help="'throughput': trajectory JSON to append to "
                             "('' disables)")
    args = parser.parse_args(argv)

    if args.list or not args.figures:
        print("available figures:")
        for fig in E.REGISTRY:
            print(f"  {fig:10s} {DESCRIPTIONS[fig]}")
        for name, text in EXTRA_DESCRIPTIONS.items():
            print(f"  {name:10s} {text}")
        return 0

    figures = (list(E.REGISTRY) + ["throughput"]
               if "all" in args.figures else args.figures)
    if "scale" in figures:
        parser.error("run the scale bench as its own command: "
                     "python -m repro.bench scale [--floors ...]")
    if "tenancy" in figures:
        parser.error("run the tenancy bench as its own command: "
                     "python -m repro.bench tenancy [--venues ...]")
    if "memory" in figures:
        parser.error("run the memory bench as its own command: "
                     "python -m repro.bench memory [--budget-tenants ...]")
    if "chaos" in figures:
        parser.error("run the chaos bench as its own command: "
                     "python -m repro.bench chaos [--kills ...]")
    if "soak" in figures:
        parser.error("run the soak harness as its own command: "
                     "python -m repro.bench soak [--tenants ...]")
    unknown = [f for f in figures
               if f not in E.REGISTRY and f not in EXTRA_DESCRIPTIONS]
    if unknown:
        parser.error(f"unknown figures: {unknown}; use --list")
    documents = []
    for figure in figures:
        if figure == "throughput":
            documents.append(run_throughput(args))
            continue
        documents.append(run_figure(
            figure, args.scale, args.instances, args.repeats))
    if args.json is not None:
        args.json.write_text(json.dumps({
            "scale": args.scale,
            "instances": args.instances,
            "repeats": args.repeats,
            "figures": documents,
        }, indent=1))
        print(f"\nresults written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""One entry point per figure of the paper's evaluation (Section V).

Every function returns a list of :class:`SettingResult` (one per x-axis
value) and accepts:

* ``scale`` — venue/workload shrink factor.  ``1.0`` is paper size
  (705 partitions, 1116 doors, five floors); the default used by the
  pytest benches is deliberately small so a pure-Python run finishes
  in CI time.  Distance-type parameters (δs2t) shrink with the venue
  side, i.e. by ``sqrt(scale)``.
* ``instances`` / ``repeats`` — the paper uses 10 × 5; benches lower
  both.

Expected *shapes* (what the paper's figures show and these harnesses
reproduce) are documented per function and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import BenchHarness, SettingResult
from repro.core.engine import IKRQEngine
from repro.datasets.assign import assign_random
from repro.datasets.corpus import CorpusConfig, build_corpus
from repro.datasets.floorplan import FloorplanConfig, build_synthetic_space
from repro.datasets.queries import QueryGenerator
from repro.datasets.realmall import RealMallConfig, build_real_mall

#: Default shrink factor for CI-friendly runs; scripts pass 1.0 for
#: paper-size venues.
DEFAULT_SCALE = 0.12
#: Default workload sizes (paper: instances=10, repeats=5).
DEFAULT_INSTANCES = 4
DEFAULT_REPEATS = 2

#: Algorithm sets of the figures.
MAIN_SIX = ("ToE", "ToE-D", "ToE-B", "KoE", "KoE-D", "KoE-B")
OVERVIEW_SEVEN = MAIN_SIX + ("KoE*",)
TOE_VS_KOE = ("ToE", "KoE")


@dataclass(frozen=True)
class Environment:
    """A built venue + engine + query generator."""

    engine: IKRQEngine
    qgen: QueryGenerator
    s2t_unit: float   # paper-equivalent δs2t of 1.0 scale factor


@lru_cache(maxsize=8)
def synthetic_env(floors: int = 5,
                  scale: float = DEFAULT_SCALE,
                  seed: int = 42) -> Environment:
    """The synthetic environment of Section V-A (cached per setting)."""
    space, rooms = build_synthetic_space(floors=floors, scale=scale)
    corpus_cfg = CorpusConfig()
    if scale < 1.0:
        corpus_cfg = corpus_cfg.scaled(max(scale, 0.05))
    corpus = build_corpus(corpus_cfg)
    all_rooms = [r for f in sorted(rooms) for r in rooms[f]]
    kindex = assign_random(all_rooms, corpus, seed=seed)
    engine = IKRQEngine(space, kindex)
    qgen = QueryGenerator(space, kindex, graph=engine.graph, seed=seed)
    return Environment(engine=engine, qgen=qgen,
                       s2t_unit=math.sqrt(scale))


@lru_cache(maxsize=4)
def real_env(scale: float = DEFAULT_SCALE, seed: int = 23) -> Environment:
    """The real-data environment of Section V-B (cached per setting)."""
    space, kindex, _corpus = build_real_mall(
        RealMallConfig(seed=seed, scale=scale))
    engine = IKRQEngine(space, kindex)
    qgen = QueryGenerator(space, kindex, graph=engine.graph, seed=seed)
    return Environment(engine=engine, qgen=qgen,
                       s2t_unit=math.sqrt(scale))


def _sweep(env: Environment,
           algorithms: Sequence[str],
           settings: Sequence[Dict[str, float]],
           instances: int,
           repeats: int,
           max_expansions: Optional[int] = None) -> List[SettingResult]:
    """Run one workload per setting dict over the algorithm set."""
    harness = BenchHarness(env.engine, repeats=repeats,
                           max_expansions=max_expansions)
    results: List[SettingResult] = []
    for setting in settings:
        workload = env.qgen.workload(
            s2t=setting.get("s2t", 1700.0) * env.s2t_unit,
            eta=setting.get("eta", 1.8),
            qw_size=int(setting.get("qw", 4)),
            beta=setting.get("beta", 0.6),
            k=int(setting.get("k", 7)),
            alpha=setting.get("alpha", 0.5),
            tau=setting.get("tau", 0.2),
            instances=instances)
        results.append(harness.run_workload(workload, algorithms, setting))
    return results


# ----------------------------------------------------------------------
# Synthetic data (Section V-A)
# ----------------------------------------------------------------------
def fig04_default_overview(scale: float = DEFAULT_SCALE,
                           instances: int = DEFAULT_INSTANCES,
                           repeats: int = DEFAULT_REPEATS,
                           floors: int = 5) -> List[SettingResult]:
    """Fig. 4: per-query time of all seven algorithms at defaults.

    Shape: ToE and KoE fastest; \\D variants clearly slower; \\B ≈
    originals; KoE* slowest with high variance.  (ToE\\P is omitted as
    in the paper — it is orders of magnitude slower; see Fig. 15.)
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, OVERVIEW_SEVEN, [{"setting": 0}], instances, repeats)


def fig05_time_vs_k(scale: float = DEFAULT_SCALE,
                    instances: int = DEFAULT_INSTANCES,
                    repeats: int = DEFAULT_REPEATS,
                    k_values: Sequence[int] = (1, 3, 5, 7, 9, 11),
                    floors: int = 5) -> List[SettingResult]:
    """Fig. 5: time vs. k — flat-ish growth; \\D variants slowest."""
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, MAIN_SIX, [{"k": k} for k in k_values],
                  instances, repeats)


def fig06_07_time_memory_vs_qw(scale: float = DEFAULT_SCALE,
                               instances: int = DEFAULT_INSTANCES,
                               repeats: int = DEFAULT_REPEATS,
                               qw_values: Sequence[int] = (1, 2, 3, 4, 5),
                               floors: int = 5) -> List[SettingResult]:
    """Figs. 6 & 7: time and memory vs. |QW|.

    Shape: all grow with |QW|; KoE grows faster than ToE in time but
    stays the most memory-frugal.
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, MAIN_SIX, [{"qw": q} for q in qw_values],
                  instances, repeats)


def fig08_09_time_memory_vs_eta(scale: float = DEFAULT_SCALE,
                                instances: int = DEFAULT_INSTANCES,
                                repeats: int = DEFAULT_REPEATS,
                                eta_values: Sequence[float] = (1.6, 1.8, 2.0),
                                floors: int = 5) -> List[SettingResult]:
    """Figs. 8 & 9: time and memory vs. η.

    Shape: ToE time/memory grow with η; KoE stays nearly flat; ToE\\D
    insensitive to η (it ignores the distance constraint's pruning).
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, MAIN_SIX, [{"eta": e} for e in eta_values],
                  instances, repeats)


def fig10_time_vs_beta(scale: float = DEFAULT_SCALE,
                       instances: int = DEFAULT_INSTANCES,
                       repeats: int = DEFAULT_REPEATS,
                       beta_values: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                       floors: int = 5) -> List[SettingResult]:
    """Fig. 10: time vs. i-word fraction β (ToE vs. KoE).

    Shape: both speed up as β grows (i-words have fewer candidate
    partitions than t-words); the ToE–KoE gap widens at small β.
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, TOE_VS_KOE, [{"beta": b} for b in beta_values],
                  instances, repeats)


def fig11_time_vs_floors(scale: float = DEFAULT_SCALE,
                         instances: int = DEFAULT_INSTANCES,
                         repeats: int = DEFAULT_REPEATS,
                         floor_values: Sequence[int] = (3, 5, 7, 9),
                         ) -> List[SettingResult]:
    """Fig. 11: time vs. floor count (ToE vs. KoE).

    Shape: ToE grows slowly; KoE deteriorates fast with more floors
    (the 20 m stairways keep far floors within the distance bound).
    """
    results: List[SettingResult] = []
    for floors in floor_values:
        env = synthetic_env(floors=floors, scale=scale)
        results.extend(_sweep(env, TOE_VS_KOE, [{"floors": floors}],
                              instances, repeats))
    return results


def fig12_time_vs_s2t(scale: float = DEFAULT_SCALE,
                      instances: int = DEFAULT_INSTANCES,
                      repeats: int = DEFAULT_REPEATS,
                      s2t_values: Sequence[float] = (1100, 1300, 1500, 1700, 1900),
                      floors: int = 5) -> List[SettingResult]:
    """Fig. 12: time vs. δs2t at η = 1.6 (ToE vs. KoE).

    Shape: ToE slows as endpoints separate; KoE is less affected.
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, TOE_VS_KOE,
                  [{"s2t": s, "eta": 1.6} for s in s2t_values],
                  instances, repeats)


def fig13_14_koestar_vs_eta(scale: float = DEFAULT_SCALE,
                            instances: int = DEFAULT_INSTANCES,
                            repeats: int = DEFAULT_REPEATS,
                            eta_values: Sequence[float] = (1.2, 1.4, 1.6, 1.8, 2.0),
                            floors: int = 5) -> List[SettingResult]:
    """Figs. 13 & 14: KoE vs. KoE* over η (time and memory).

    Shape: KoE wins except at the tightest η; KoE*'s memory is an
    order of magnitude higher (the precomputed matrix).
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, ("KoE", "KoE*"), [{"eta": e} for e in eta_values],
                  instances, repeats)


def fig15_toep_vs_eta(scale: float = DEFAULT_SCALE,
                      instances: int = 2,
                      repeats: int = 1,
                      eta_values: Sequence[float] = (1.4, 1.6, 1.8, 2.0),
                      floors: int = 5,
                      max_expansions: Optional[int] = 200_000,
                      ) -> List[SettingResult]:
    """Fig. 15: ToE vs. ToE\\P over η.

    Shape: ToE\\P blows up (near-)exponentially with η while ToE stays
    stable.  ``max_expansions`` caps the ablation's runaway search on
    large venues (reported times then lower-bound the truth).
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, ("ToE", "ToE-P"), [{"eta": e} for e in eta_values],
                  instances, repeats, max_expansions=max_expansions)


def fig16_homogeneous_rate_vs_k(scale: float = DEFAULT_SCALE,
                                instances: int = 2,
                                repeats: int = 1,
                                k_values: Sequence[int] = (1, 3, 5, 7, 9, 11, 13, 15),
                                floors: int = 5,
                                max_expansions: Optional[int] = 200_000,
                                ) -> List[SettingResult]:
    """Fig. 16: ToE\\P homogeneous rate vs. k.

    Shape: rate grows rapidly with k (over 60% at k ≥ 3 in the paper,
    92% at k = 15) — without prime pruning top-k fills with
    homogeneous variants.
    """
    env = synthetic_env(floors=floors, scale=scale)
    return _sweep(env, ("ToE-P",), [{"k": k} for k in k_values],
                  instances, repeats, max_expansions=max_expansions)


# ----------------------------------------------------------------------
# Real data (Section V-B)
# ----------------------------------------------------------------------
def fig17_18_real_time_memory_vs_qw(scale: float = DEFAULT_SCALE,
                                    instances: int = DEFAULT_INSTANCES,
                                    repeats: int = DEFAULT_REPEATS,
                                    qw_values: Sequence[int] = (1, 2, 3, 4, 5),
                                    ) -> List[SettingResult]:
    """Figs. 17 & 18: real data, time and memory vs. |QW| (α = 0.7).

    Shape: \\D variants worsen rapidly; KoE worsens faster than ToE
    (category-clustered floors make per-keyword candidates dense); KoE
    remains the most space-efficient.
    """
    env = real_env(scale=scale)
    return _sweep(env, MAIN_SIX,
                  [{"qw": q, "alpha": 0.7} for q in qw_values],
                  instances, repeats)


def fig19_real_time_vs_eta(scale: float = DEFAULT_SCALE,
                           instances: int = DEFAULT_INSTANCES,
                           repeats: int = DEFAULT_REPEATS,
                           eta_values: Sequence[float] = (1.2, 1.4, 1.6, 1.8, 2.0, 2.2),
                           ) -> List[SettingResult]:
    """Fig. 19: real data, time vs. η (α = 0.7).

    Shape: ToE family grows with η; KoE approaches KoE\\D as the
    constraint loosens.
    """
    env = real_env(scale=scale)
    return _sweep(env, MAIN_SIX,
                  [{"eta": e, "alpha": 0.7} for e in eta_values],
                  instances, repeats)


def fig20_real_homogeneous_rate_vs_qw(scale: float = DEFAULT_SCALE,
                                      instances: int = 2,
                                      repeats: int = 1,
                                      qw_values: Sequence[int] = (1, 2, 3, 4, 5),
                                      max_expansions: Optional[int] = 200_000,
                                      ) -> List[SettingResult]:
    """Fig. 20: real data, ToE\\P homogeneous rate vs. |QW|."""
    env = real_env(scale=scale)
    return _sweep(env, ("ToE-P",),
                  [{"qw": q, "alpha": 0.7} for q in qw_values],
                  instances, repeats, max_expansions=max_expansions)


#: Experiment registry: figure id → callable (used by the CLI runner
#: and EXPERIMENTS.md generation).
REGISTRY = {
    "fig04": fig04_default_overview,
    "fig05": fig05_time_vs_k,
    "fig06_07": fig06_07_time_memory_vs_qw,
    "fig08_09": fig08_09_time_memory_vs_eta,
    "fig10": fig10_time_vs_beta,
    "fig11": fig11_time_vs_floors,
    "fig12": fig12_time_vs_s2t,
    "fig13_14": fig13_14_koestar_vs_eta,
    "fig15": fig15_toep_vs_eta,
    "fig16": fig16_homogeneous_rate_vs_k,
    "fig17_18": fig17_18_real_time_memory_vs_qw,
    "fig19": fig19_real_time_vs_eta,
    "fig20": fig20_real_homogeneous_rate_vs_qw,
}

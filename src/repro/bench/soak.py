"""Open-loop soak harness: SLO-gated saturation search over the HTTP fleet.

``repro.bench soak`` is the traffic-scale proving ground the closed-
loop benches cannot be: it fixes an arrival schedule ahead of time
(:mod:`repro.bench.load_model`) and fires it at a live
:class:`~repro.serve.server.IKRQServer` over real HTTP, whether or not
the fleet keeps up — so every latency is measured from the *intended*
send time and coordinated omission cannot hide a stall.

One run:

1. builds ``--tenants`` synthetic malls (default **50 floors** each),
   bakes binary snapshots, and computes every distinct query's answer
   per algorithm shape with sequential per-venue engines — the
   byte-identity spot-check reference,
2. starts the sharded HTTP fleet (``repro serve``'s server class) and
   drives a **stepped saturation search**: each step replays a
   deterministic open-loop schedule (Poisson or bursty arrivals, a
   zipfian tenant mix, ToE/KoE/KoE* query shapes) at a higher offered
   qps for ``--step-duration`` seconds, measuring offered vs. achieved
   qps, shed rate, and p50/p95/p99 latency from intended send time,
3. gates each step on the **SLOs** — corrected p99 ≤ budget, shed
   rate ≤ budget, zero non-shed failures, byte-identity spot checks —
   and records the max offered qps that passed (the fleet's honest
   saturation point),
4. runs a **surge scenario**: a venue-wide ``POST /delta`` closure
   event against the zipf-hottest tenant, followed by a bursty mass
   re-query storm through the overlay path; every ``ok`` answer must
   be byte-identical to a from-scratch reference engine built on the
   physically-edited venue (``apply_closures``), and the phase is
   gated on recovery time — the first post-delta second from which the
   SLOs hold again,
5. appends one ``{"mode": "soak"}`` entry to ``BENCH_throughput.json``
   with the full config (seeds, arrival process, mixes, SLO budgets)
   and each phase's schedule digest, so any run can be re-materialised
   and verified from the trajectory alone.

Run it from the shell::

    python -m repro.bench soak --tenants 3 --floors 50
    python -m repro.bench soak --smoke        # seconds-scale CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.load_model import (DEFAULT_MIX, Arrival, LoadModelConfig,
                                    build_schedule, schedule_digest,
                                    zipf_weights)
from repro.bench.throughput import (DEFAULT_ARTIFACT, append_trajectory,
                                    build_stream, latency_percentiles)
from repro.core.engine import IKRQEngine, canonical_algorithm
from repro.datasets.synth import (build_synth_mall, mall_stats,
                                  tenant_mall_configs)
from repro.dynamic import ClosureOverlay, apply_closures
from repro.obs import setup_serve_logging
from repro.serve import (answer_to_wire, canonical_json, query_to_wire,
                         save_snapshot)
from repro.serve.server import IKRQServer

#: Statuses that are not failures: answered, or deliberately shed.
_ACCEPTABLE = ("ok", "overloaded")


# ----------------------------------------------------------------------
# SLO gates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOGates:
    """The pass/fail budgets a phase is judged against.

    ``p99_ms`` applies to the coordinated-omission-corrected p99 (from
    intended send time) of ``ok`` answers; ``max_shed_rate`` to the
    fraction of arrivals shed by admission control; non-shed failures
    and identity mismatches are never tolerated.
    """

    p99_ms: float = 1500.0
    max_shed_rate: float = 0.01

    def evaluate(self, phase: Mapping) -> Dict:
        """Judge one phase record; returns the per-gate verdicts."""
        corrected = phase.get("latency_from_intended_ms") or {}
        gates = {
            "p99_within_budget": (corrected.get("p99_ms", float("inf"))
                                  <= self.p99_ms),
            "shed_within_budget": phase.get("shed_rate", 1.0)
                                  <= self.max_shed_rate,
            "zero_non_shed_failures": phase.get("failed", 1) == 0,
            "spot_checks_identical": (phase.get("spot_checks", {})
                                      .get("mismatches", 1) == 0),
        }
        gates["passed"] = all(gates.values())
        return gates

    def to_doc(self) -> Dict:
        return {"p99_ms": self.p99_ms,
                "max_shed_rate": self.max_shed_rate}


# ----------------------------------------------------------------------
# Tenants
# ----------------------------------------------------------------------
class _Tenant:
    """One venue's local truth: engine, query pool, expected answers."""

    def __init__(self, venue: str, engine: IKRQEngine,
                 queries: Sequence, algorithms: Sequence[str]) -> None:
        self.venue = venue
        self.engine = engine
        self.queries = list(queries)
        self.wire = [query_to_wire(q) for q in self.queries]
        #: ``(algorithm, query index) -> canonical answer JSON``.
        self.expected: Dict[Tuple[str, int], str] = {}
        for algorithm in algorithms:
            for i, query in enumerate(self.queries):
                answer = engine.search(query, algorithm)
                self.expected[(algorithm, i)] = canonical_json(
                    answer_to_wire(answer))

    def surge_expected(self, overlay: ClosureOverlay,
                       algorithms: Sequence[str],
                       ) -> Dict[Tuple[str, int], str]:
        """Expected answers on the physically-edited venue.

        A from-scratch engine on ``apply_closures`` — the PR 9
        byte-identity reference for the overlay path; nothing is
        shared with the serving fleet.
        """
        edited = apply_closures(self.engine.space, overlay)
        reference = IKRQEngine(edited, self.engine.kindex,
                               door_matrix_eager=False)
        out: Dict[Tuple[str, int], str] = {}
        for algorithm in algorithms:
            for i, query in enumerate(self.queries):
                answer = reference.search(query, algorithm)
                out[(algorithm, i)] = canonical_json(
                    answer_to_wire(answer))
        return out


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _post_json(base: str, path: str, doc: Dict,
               timeout: float = 30.0) -> Dict:
    body = json.dumps(doc).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as err:
        try:
            return json.loads(err.read())
        except (ValueError, OSError):
            return {"status": "error", "error": f"HTTP {err.code}"}
    except (urllib.error.URLError, OSError, ValueError) as exc:
        # A transport-level drop is a hard failure, never a shed.
        return {"status": "transport_error", "error": repr(exc)}


# ----------------------------------------------------------------------
# Open-loop phase execution
# ----------------------------------------------------------------------
def _run_phase(base: str,
               tenants: Mapping[str, _Tenant],
               schedule: Sequence[Arrival],
               concurrency: int,
               spot_check_every: int = 4,
               expected_override: Optional[Mapping] = None,
               request_timeout: float = 30.0) -> List[Dict]:
    """Fire one schedule open-loop; returns one sample per arrival.

    The pacing loop sleeps until each arrival's intended time and
    hands the request to a worker pool *without waiting for earlier
    requests* — when the fleet falls behind, requests queue and their
    latency-from-intended grows, exactly as a real user would see.
    Every ``spot_check_every``-th ``ok`` answer is byte-compared
    against the tenant's sequential reference.
    """
    samples: List[Dict] = []
    lock = threading.Lock()

    def fire(arrival: Arrival, t0: float) -> None:
        started = time.perf_counter() - t0
        tenant = tenants[arrival.venue]
        response = _post_json(base, "/search", {
            "venue": arrival.venue,
            "query": tenant.wire[arrival.query],
            "algorithm": arrival.algorithm,
        }, timeout=request_timeout)
        ended = time.perf_counter() - t0
        status = response.get("status", "error")
        sample = {"intended": arrival.at_s, "started": started,
                  "ended": ended, "status": status,
                  "venue": arrival.venue,
                  "algorithm": arrival.algorithm,
                  "checked": False, "identical": None}
        if status == "ok":
            index = len(samples)  # benign race: sampling cadence only
            if spot_check_every > 0 and index % spot_check_every == 0:
                expected = (expected_override if expected_override
                            is not None else tenant.expected)
                got = canonical_json(
                    {"algorithm": response.get("algorithm"),
                     "routes": response.get("routes")})
                key = (canonical_algorithm(arrival.algorithm),
                       arrival.query)
                sample["checked"] = True
                sample["identical"] = got == expected[key]
        with lock:
            samples.append(sample)

    with ThreadPoolExecutor(max_workers=concurrency,
                            thread_name_prefix="soak") as executor:
        t0 = time.perf_counter()
        futures = []
        for arrival in schedule:
            delay = arrival.at_s - (time.perf_counter() - t0)
            if delay > 0.0:
                time.sleep(delay)
            futures.append(executor.submit(fire, arrival, t0))
        for future in futures:
            future.result()
    return samples


def _phase_stats(schedule: Sequence[Arrival],
                 samples: Sequence[Dict],
                 duration_s: float) -> Dict:
    """Offered vs. achieved qps, shed rate, corrected percentiles."""
    statuses: Dict[str, int] = {}
    for sample in samples:
        statuses[sample["status"]] = statuses.get(sample["status"], 0) + 1
    answered = statuses.get("ok", 0)
    shed = statuses.get("overloaded", 0)
    failed = sum(count for status, count in statuses.items()
                 if status not in _ACCEPTABLE)
    wall = max([duration_s] + [s["ended"] for s in samples])
    ok = [s for s in samples if s["status"] == "ok"]
    checked = [s for s in samples if s["checked"]]
    return {
        "arrivals": len(schedule),
        "duration_s": duration_s,
        "offered_qps": len(schedule) / duration_s if duration_s else 0.0,
        "achieved_qps": answered / wall if wall else 0.0,
        "statuses": dict(sorted(statuses.items())),
        "shed": shed,
        "shed_rate": shed / len(samples) if samples else 0.0,
        "failed": failed,
        # The headline numbers: latency charged from the *intended*
        # send time (coordinated-omission-corrected) next to the
        # conventional from-actual-send view, so the gap itself is
        # visible in the trajectory.
        "latency_from_intended_ms": latency_percentiles(
            [s["ended"] - s["intended"] for s in ok]),
        "latency_from_send_ms": latency_percentiles(
            [s["ended"] - s["started"] for s in ok]),
        "send_lag_ms": latency_percentiles(
            [s["started"] - s["intended"] for s in samples]),
        "spot_checks": {
            "checked": len(checked),
            "mismatches": sum(1 for s in checked if not s["identical"]),
        },
    }


# ----------------------------------------------------------------------
# Surge scenario
# ----------------------------------------------------------------------
def _surge_overlay(tenant: _Tenant, close_fraction: float,
                   ) -> Tuple[ClosureOverlay, List[Dict]]:
    """A venue-wide closure event: every k-th door closes at once.

    Deterministic (sorted door ids, evenly strided) so the recorded
    config reproduces the exact overlay; hallway-spread closures are
    the evacuation shape — many routes lose a leg simultaneously.
    """
    doors = sorted(tenant.engine.space.doors)
    count = max(1, int(len(doors) * close_fraction))
    stride = max(1, len(doors) // count)
    closed = doors[::stride][:count]
    ops = [{"op": "close_door", "did": did} for did in closed]
    return ClosureOverlay(frozenset(closed)), ops


def _recovery_seconds(samples: Sequence[Dict],
                      gates: SLOGates,
                      duration_s: float) -> Optional[float]:
    """The first post-delta second from which the SLOs hold for good.

    Samples are bucketed by intended send second; recovery is the
    earliest bucket such that every bucket from it on meets the
    corrected-p99 budget with zero non-shed failures.  ``None`` means
    the fleet never stabilised inside the surge window.
    """
    buckets: Dict[int, List[Dict]] = {}
    for sample in samples:
        buckets.setdefault(int(sample["intended"]), []).append(sample)
    if not buckets:
        return None
    healthy: Dict[int, bool] = {}
    # Only real seconds of the window: a zero-width trailing bucket
    # must not "recover" a failure in the last occupied second.
    last = max(int(duration_s - 1e-9), max(buckets))
    for second in range(last + 1):
        members = buckets.get(second)
        if not members:
            healthy[second] = True  # an idle second is a healthy one
            continue
        ok = [s for s in members if s["status"] == "ok"]
        failed = sum(1 for s in members
                     if s["status"] not in _ACCEPTABLE)
        pct = latency_percentiles(
            [s["ended"] - s["intended"] for s in ok])
        healthy[second] = (failed == 0
                           and pct.get("p99_ms", float("inf"))
                           <= gates.p99_ms)
    recovery = None
    for second in sorted(healthy, reverse=True):
        if not healthy[second]:
            break
        recovery = float(second)
    return recovery


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def run_soak(tenants: int = 3,
             floors: int = 50,
             rooms_per_floor: int = 16,
             words_per_room: int = 3,
             shards: int = 2,
             pool: int = 6,
             endpoints: int = 4,
             process: str = "poisson",
             zipf_s: float = 1.1,
             mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX,
             start_qps: float = 8.0,
             qps_step: float = 2.0,
             max_steps: int = 5,
             step_duration_s: float = 10.0,
             concurrency: int = 32,
             max_pending: int = 64,
             slo: Optional[SLOGates] = None,
             spot_check_every: int = 4,
             surge: bool = True,
             surge_duration_s: float = 8.0,
             surge_rate_factor: float = 1.5,
             surge_close_fraction: float = 0.15,
             seed: int = 11) -> Dict:
    """The soak workload; returns one trajectory entry."""
    if qps_step <= 1.0:
        raise ValueError("qps_step must be > 1 (each step raises the "
                         "offered rate)")
    slo = slo or SLOGates()
    mix = tuple((canonical_algorithm(name), float(weight))
                for name, weight in mix)
    algorithms = [name for name, _ in mix]
    configs = tenant_mall_configs(
        tenants, floors=floors, rooms_per_floor=rooms_per_floor,
        words_per_room=words_per_room, seed=seed)

    fleet: Dict[str, _Tenant] = {}
    phases: List[Dict] = []
    surge_doc: Optional[Dict] = None
    with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
        snapshot_paths: Dict[str, str] = {}
        for i, (venue, cfg) in enumerate(sorted(configs.items())):
            space, kindex = build_synth_mall(cfg)
            engine = IKRQEngine(space, kindex, door_matrix_eager=False)
            queries = build_stream(engine, pool=pool, repeat=1,
                                   endpoints=endpoints, seed=seed + i)
            fleet[venue] = _Tenant(venue, engine, queries, algorithms)
            path = os.path.join(tmp, f"{venue}.snap.bin")
            save_snapshot(path, engine, binary=True)
            snapshot_paths[venue] = path
        venue_names = tuple(sorted(fleet))

        with IKRQServer(venues=snapshot_paths, workers=shards,
                        max_pending=max_pending) as server:
            host, port = server.start()
            base = f"http://{host}:{port}"

            # Warm every (venue, algorithm, query) outside the timed
            # phases — caches, attachment maps, matrix rows.
            for venue, tenant in fleet.items():
                for algorithm in algorithms:
                    for doc in tenant.wire:
                        _post_json(base, "/search",
                                   {"venue": venue, "query": doc,
                                    "algorithm": algorithm})

            # ----------------------------------------------------------
            # Stepped saturation search
            # ----------------------------------------------------------
            saturation_qps = 0.0
            for step in range(max_steps):
                rate = start_qps * (qps_step ** step)
                cfg = LoadModelConfig(
                    rate_qps=rate, duration_s=step_duration_s,
                    venues=venue_names, pool=pool,
                    seed=seed + 1000 * (step + 1),
                    process=process, zipf_s=zipf_s, mix=mix)
                schedule = build_schedule(cfg)
                samples = _run_phase(base, fleet, schedule, concurrency,
                                     spot_check_every=spot_check_every)
                phase = {"phase": f"step-{step + 1}",
                         "config": cfg.to_doc(),
                         "schedule_sha256": schedule_digest(schedule),
                         **_phase_stats(schedule, samples,
                                        step_duration_s)}
                phase["gates"] = slo.evaluate(phase)
                phase["passed"] = phase["gates"]["passed"]
                phases.append(phase)
                if phase["passed"]:
                    saturation_qps = max(saturation_qps,
                                         phase["offered_qps"])
                else:
                    break  # past saturation: record the failure, stop

            # ----------------------------------------------------------
            # Surge: venue-wide closure event + mass re-queries
            # ----------------------------------------------------------
            if surge:
                surge_venue = venue_names[0]  # the zipf-hottest tenant
                tenant = fleet[surge_venue]
                overlay, ops = _surge_overlay(tenant,
                                              surge_close_fraction)
                expected = tenant.surge_expected(overlay, algorithms)
                surge_rate = max(start_qps,
                                 saturation_qps) * surge_rate_factor
                cfg = LoadModelConfig(
                    rate_qps=surge_rate, duration_s=surge_duration_s,
                    venues=(surge_venue,), pool=pool,
                    seed=seed + 777_000, process="bursty",
                    zipf_s=zipf_s, mix=mix,
                    on_s=max(0.5, surge_duration_s / 8.0),
                    off_s=max(0.25, surge_duration_s / 16.0))
                schedule = build_schedule(cfg)
                applied = _post_json(base, "/delta",
                                     {"venue": surge_venue, "ops": ops})
                samples = _run_phase(
                    base, fleet, schedule, concurrency,
                    spot_check_every=1,  # every answer is identity-gated
                    expected_override=expected)
                recovery_s = _recovery_seconds(samples, slo,
                                               surge_duration_s)
                surge_doc = {
                    "phase": "surge",
                    "venue": surge_venue,
                    "closed_doors": len(overlay.closed_doors),
                    "close_fraction": surge_close_fraction,
                    "delta_status": applied.get("status"),
                    "dynamic_version": applied.get("version"),
                    "config": cfg.to_doc(),
                    "schedule_sha256": schedule_digest(schedule),
                    **_phase_stats(schedule, samples, surge_duration_s),
                    "recovery_s": recovery_s,
                }
                surge_doc["overlay_identical"] = (
                    applied.get("status") == "ok"
                    and surge_doc["spot_checks"]["mismatches"] == 0
                    and surge_doc["spot_checks"]["checked"] > 0)
                surge_doc["recovered"] = recovery_s is not None

    # ------------------------------------------------------------------
    # Verdicts + entry
    # ------------------------------------------------------------------
    total_failed = (sum(p["failed"] for p in phases)
                    + (surge_doc["failed"] if surge_doc else 0))
    total_mismatches = (
        sum(p["spot_checks"]["mismatches"] for p in phases)
        + (surge_doc["spot_checks"]["mismatches"] if surge_doc else 0))
    entry = {
        "mode": "soak",
        "config": {
            "seed": seed,
            "tenants": tenants,
            "floors": floors,
            "rooms_per_floor": rooms_per_floor,
            "words_per_room": words_per_room,
            "shards": shards,
            "pool": pool,
            "endpoints": endpoints,
            "process": process,
            "zipf_s": zipf_s,
            "mix": [[name, weight] for name, weight in mix],
            "start_qps": start_qps,
            "qps_step": qps_step,
            "max_steps": max_steps,
            "step_duration_s": step_duration_s,
            "concurrency": concurrency,
            "max_pending": max_pending,
            "spot_check_every": spot_check_every,
            "surge_duration_s": surge_duration_s,
            "surge_rate_factor": surge_rate_factor,
            "surge_close_fraction": surge_close_fraction,
        },
        "slo": slo.to_doc(),
        "tenant_weights": dict(zip(
            sorted(fleet), zipf_weights(len(fleet), zipf_s))),
        "venues": {venue: mall_stats(t.engine.space, t.engine.kindex)
                   for venue, t in fleet.items()},
        "phases": phases,
        "saturation_qps": saturation_qps,
        "surge": surge_doc,
        "slo_gates_met": bool(phases) and phases[0]["passed"],
        "zero_non_shed_failures": total_failed == 0,
        "verified_identical": total_mismatches > -1
                              and total_mismatches == 0,
        "surge_recovered": (surge_doc is None
                            or bool(surge_doc["recovered"])),
        "surge_overlay_identical": (surge_doc is None
                                    or bool(
                                        surge_doc["overlay_identical"])),
    }
    return entry


def soak_verdict(entry: Mapping) -> bool:
    """The overall pass/fail of a soak entry (the exit-code gate)."""
    return bool(entry["slo_gates_met"]
                and entry["zero_non_shed_failures"]
                and entry["verified_identical"]
                and entry["surge_recovered"]
                and entry["surge_overlay_identical"])


def format_soak_report(entry: Mapping) -> str:
    config = entry["config"]
    lines = [
        f"tenants={config['tenants']} floors={config['floors']} "
        f"shards={config['shards']} process={config['process']} "
        f"zipf_s={config['zipf_s']} seed={config['seed']}",
    ]
    for phase in entry["phases"]:
        corrected = phase["latency_from_intended_ms"] or {}
        raw = phase["latency_from_send_ms"] or {}
        lines.append(
            f"  {phase['phase']:8s}: offered {phase['offered_qps']:7.1f}"
            f" q/s, achieved {phase['achieved_qps']:7.1f} q/s, shed "
            f"{phase['shed_rate'] * 100.0:4.1f}%, corrected p99 "
            f"{corrected.get('p99_ms', float('nan')):8.2f} ms (send-"
            f"relative {raw.get('p99_ms', float('nan')):8.2f} ms) -> "
            f"{'PASS' if phase['passed'] else 'FAIL'}")
    lines.append(f"  saturation: {entry['saturation_qps']:.1f} q/s "
                 f"offered within SLO (p99 <= "
                 f"{entry['slo']['p99_ms']:.0f} ms, shed <= "
                 f"{entry['slo']['max_shed_rate'] * 100.0:.1f}%)")
    surge_doc = entry.get("surge")
    if surge_doc:
        corrected = surge_doc["latency_from_intended_ms"] or {}
        lines.append(
            f"  surge     : {surge_doc['closed_doors']} doors closed on "
            f"{surge_doc['venue']}, offered "
            f"{surge_doc['offered_qps']:.1f} q/s bursty, corrected p99 "
            f"{corrected.get('p99_ms', float('nan')):.2f} ms, recovery "
            f"{surge_doc['recovery_s']}s, overlay answers identical: "
            f"{surge_doc['overlay_identical']} "
            f"({surge_doc['spot_checks']['checked']} checked)")
    lines.append(
        f"  verdicts  : slo_gates_met={entry['slo_gates_met']} "
        f"zero_non_shed_failures={entry['zero_non_shed_failures']} "
        f"byte-identical={entry['verified_identical']} "
        f"surge_recovered={entry['surge_recovered']} "
        f"surge_overlay_identical={entry['surge_overlay_identical']}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop soak: arrival-process traffic against "
                    "the live HTTP fleet, SLO-gated saturation search "
                    "plus a venue-wide closure surge.")
    parser.add_argument("--tenants", type=int, default=3,
                        help="co-hosted synthetic venues (default 3)")
    parser.add_argument("--floors", type=int, default=50,
                        help="floors per venue (default 50)")
    parser.add_argument("--rooms-per-floor", type=int, default=16)
    parser.add_argument("--words-per-room", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2,
                        help="shard worker processes (default 2)")
    parser.add_argument("--pool", type=int, default=6,
                        help="distinct queries per venue")
    parser.add_argument("--endpoints", type=int, default=4)
    parser.add_argument("--process", default="poisson",
                        choices=("poisson", "bursty"),
                        help="arrival process for the saturation steps")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="zipf exponent of the tenant mix")
    parser.add_argument("--start-qps", type=float, default=8.0,
                        help="offered rate of the first step")
    parser.add_argument("--qps-step", type=float, default=2.0,
                        help="multiplicative rate step (> 1)")
    parser.add_argument("--max-steps", type=int, default=5)
    parser.add_argument("--step-duration", type=float, default=10.0,
                        help="seconds per saturation step")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="max in-flight open-loop requests")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="pool-wide admission queue depth")
    parser.add_argument("--p99-budget-ms", type=float, default=1500.0,
                        help="SLO: corrected p99 budget (default 1500)")
    parser.add_argument("--max-shed-rate", type=float, default=0.01,
                        help="SLO: shed-rate budget (default 0.01)")
    parser.add_argument("--spot-check-every", type=int, default=4,
                        help="byte-check every Nth ok answer "
                             "(surge checks every answer)")
    parser.add_argument("--no-surge", action="store_true",
                        help="skip the closure-surge scenario")
    parser.add_argument("--surge-duration", type=float, default=8.0)
    parser.add_argument("--surge-rate-factor", type=float, default=1.5)
    parser.add_argument("--surge-close-fraction", type=float,
                        default=0.15)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--artifact", default=DEFAULT_ARTIFACT,
                        help="trajectory JSON to append results to "
                             "('' disables)")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale CI gate: tiny malls, two "
                             "low-rate steps + a surge; fails on any "
                             "SLO breach, identity mismatch, non-shed "
                             "failure, unrecovered surge or missing "
                             "trajectory append")
    args = parser.parse_args(argv)

    setup_serve_logging()

    if args.smoke:
        entry = run_soak(
            tenants=2, floors=1, rooms_per_floor=16, words_per_room=3,
            shards=2, pool=4, endpoints=3,
            process=args.process, zipf_s=args.zipf_s,
            start_qps=6.0, qps_step=2.0, max_steps=2,
            step_duration_s=1.5, concurrency=16,
            max_pending=args.max_pending,
            slo=SLOGates(p99_ms=3000.0, max_shed_rate=0.01),
            spot_check_every=1, surge=True, surge_duration_s=2.5,
            surge_rate_factor=1.5, surge_close_fraction=0.2,
            seed=args.seed)
    else:
        entry = run_soak(
            tenants=args.tenants, floors=args.floors,
            rooms_per_floor=args.rooms_per_floor,
            words_per_room=args.words_per_room, shards=args.shards,
            pool=args.pool, endpoints=args.endpoints,
            process=args.process, zipf_s=args.zipf_s,
            start_qps=args.start_qps, qps_step=args.qps_step,
            max_steps=args.max_steps,
            step_duration_s=args.step_duration,
            concurrency=args.concurrency, max_pending=args.max_pending,
            slo=SLOGates(p99_ms=args.p99_budget_ms,
                         max_shed_rate=args.max_shed_rate),
            spot_check_every=args.spot_check_every,
            surge=not args.no_surge,
            surge_duration_s=args.surge_duration,
            surge_rate_factor=args.surge_rate_factor,
            surge_close_fraction=args.surge_close_fraction,
            seed=args.seed)
    print(format_soak_report(entry))
    if args.artifact:
        append_trajectory(args.artifact, entry)
        print(f"trajectory appended to {args.artifact}")
    ok = soak_verdict(entry)
    if args.smoke:
        if not ok:
            print("soak smoke FAILED: "
                  f"slo_gates_met={entry['slo_gates_met']} "
                  f"zero_non_shed_failures="
                  f"{entry['zero_non_shed_failures']} "
                  f"identical={entry['verified_identical']} "
                  f"surge_recovered={entry['surge_recovered']} "
                  f"surge_overlay_identical="
                  f"{entry['surge_overlay_identical']}")
            return 1
        if not args.artifact:
            print("soak smoke FAILED: --smoke verifies the trajectory "
                  "append; do not pass --artifact ''")
            return 1
        print(f"soak smoke ok: saturation {entry['saturation_qps']:.1f} "
              f"q/s within SLO, surge recovered in "
              f"{entry['surge']['recovery_s']}s with "
              f"{entry['surge']['spot_checks']['checked']} overlay "
              f"answers byte-identical, trajectory at {args.artifact}")
        return 0
    # SLO and identity verdicts gate the exit code in every mode;
    # absolute qps is recorded, never judged.
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via wrapper
    import sys
    sys.exit(main())

"""Deterministic open-loop load models for the soak harness.

A closed-loop bench (send, wait, send) hides *coordinated omission*:
when the server stalls, the generator politely stops offering load, so
the recorded latencies only describe the requests the server felt like
accepting.  An **open-loop** generator fixes the send schedule ahead
of time — arrivals happen when the arrival process says they happen,
whether or not the fleet is keeping up — and measures every latency
from the *intended* send time, so a stall is charged to every request
it delayed.

This module is the pure, unit-testable half of ``repro.bench soak``:

* arrival processes — :func:`poisson_arrivals` (memoryless, the
  classic open-loop baseline) and :func:`bursty_arrivals` (a
  Markov-modulated on/off process: exponential ON/OFF dwell times,
  arrivals only while ON, normalised to the same long-run rate — the
  flash-crowd shape),
* a zipfian tenant mix (:func:`zipf_weights`, :func:`pick_weighted`) —
  a few venues take most of the traffic, the tail stays warm,
* a query-shape mix over the paper's algorithms (ToE / KoE / KoE*),
* :func:`build_schedule` — the fully deterministic product of a
  :class:`LoadModelConfig`: same config → byte-identical schedule,
  fingerprinted by :func:`schedule_digest` so a recorded trajectory
  entry can be re-materialised and *verified* from its config alone,
* coordinated-omission arithmetic — :func:`serialized_completions`
  (the canonical single-file-server timeline) and
  :func:`corrected_latencies` (latency from intended send time).

Nothing here talks to a server; :mod:`repro.bench.soak` drives the
live HTTP fleet with these schedules.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

#: The supported arrival processes.
ARRIVAL_PROCESSES = ("poisson", "bursty")

#: Default query-shape mix: mostly ToE (the paper's headline), a KoE
#: share, and a KoE* share to keep the door matrix hot.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("ToE", 0.5), ("KoE", 0.3), ("KoE*", 0.2))


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def poisson_arrivals(rate_qps: float,
                     duration_s: float,
                     rng: random.Random) -> List[float]:
    """Homogeneous Poisson arrival times in ``[0, duration_s)``.

    Exponential inter-arrival gaps with mean ``1/rate_qps`` — the
    memoryless open-loop baseline.
    """
    if rate_qps <= 0.0:
        raise ValueError("rate_qps must be positive")
    if duration_s <= 0.0:
        raise ValueError("duration_s must be positive")
    out: List[float] = []
    t = rng.expovariate(rate_qps)
    while t < duration_s:
        out.append(t)
        t += rng.expovariate(rate_qps)
    return out


def bursty_arrivals(rate_qps: float,
                    duration_s: float,
                    rng: random.Random,
                    on_s: float = 1.0,
                    off_s: float = 1.0,
                    off_rate_fraction: float = 0.0) -> List[float]:
    """Markov-modulated on/off (interrupted Poisson) arrivals.

    The process alternates ON and OFF phases with exponential dwell
    times (means ``on_s`` / ``off_s``, starting ON).  While ON,
    arrivals are Poisson at a boosted rate; while OFF, at
    ``off_rate_fraction`` of it (0 = silent).  The ON rate is solved
    so the *long-run* mean offered rate equals ``rate_qps`` — the same
    nominal load as the Poisson process, delivered in bursts::

        duty    = on_s / (on_s + off_s)
        rate_on = rate_qps / (duty + (1 - duty) * off_rate_fraction)
    """
    if rate_qps <= 0.0:
        raise ValueError("rate_qps must be positive")
    if duration_s <= 0.0:
        raise ValueError("duration_s must be positive")
    if on_s <= 0.0 or off_s <= 0.0:
        raise ValueError("on_s and off_s must be positive")
    if not (0.0 <= off_rate_fraction <= 1.0):
        raise ValueError("off_rate_fraction must lie in [0, 1]")
    duty = on_s / (on_s + off_s)
    rate_on = rate_qps / (duty + (1.0 - duty) * off_rate_fraction)
    out: List[float] = []
    t = 0.0
    on = True
    while t < duration_s:
        dwell = rng.expovariate(1.0 / (on_s if on else off_s))
        end = min(t + dwell, duration_s)
        rate = rate_on if on else rate_on * off_rate_fraction
        if rate > 0.0:
            at = t + rng.expovariate(rate)
            while at < end:
                out.append(at)
                at += rng.expovariate(rate)
        t = end
        on = not on
    return out


# ----------------------------------------------------------------------
# Weighted mixes (tenants, query shapes)
# ----------------------------------------------------------------------
def zipf_weights(count: int, s: float = 1.1) -> List[float]:
    """Normalised zipfian weights ``1/rank^s`` for ranks ``1..count``."""
    if count < 1:
        raise ValueError("count must be at least 1")
    if s < 0.0:
        raise ValueError("the zipf exponent must be non-negative")
    raw = [1.0 / ((rank + 1) ** s) for rank in range(count)]
    total = sum(raw)
    return [w / total for w in raw]


def pick_weighted(choices: Sequence, weights: Sequence[float],
                  rng: random.Random):
    """One seeded draw from ``choices`` under ``weights``.

    A plain cumulative scan (no bisect tables): the soak generator
    draws a few thousand times per phase, and determinism across
    Python versions matters more than nanoseconds here.
    """
    if len(choices) != len(weights) or not choices:
        raise ValueError("choices and weights must be equal-length and "
                         "non-empty")
    point = rng.random() * sum(weights)
    acc = 0.0
    for choice, weight in zip(choices, weights):
        acc += weight
        if point < acc:
            return choice
    return choices[-1]


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Arrival:
    """One intended request: when, which tenant, what shape, which query.

    ``query`` indexes the venue's distinct query pool — the harness
    owns the pools; the schedule only names positions in them.
    """

    at_s: float
    venue: str
    algorithm: str
    query: int


@dataclass(frozen=True)
class LoadModelConfig:
    """Everything :func:`build_schedule` needs — and therefore
    everything a trajectory entry must record for the schedule to be
    reproducible (``same config → byte-identical schedule``).
    """

    rate_qps: float
    duration_s: float
    venues: Tuple[str, ...]
    pool: int
    seed: int
    process: str = "poisson"
    zipf_s: float = 1.1
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX
    on_s: float = 1.0
    off_s: float = 1.0
    off_rate_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(f"unknown arrival process {self.process!r}; "
                             f"choose from {ARRIVAL_PROCESSES}")
        if not self.venues:
            raise ValueError("at least one venue is required")
        if self.pool < 1:
            raise ValueError("pool must be at least 1")
        if not self.mix or not all(
                isinstance(name, str) and weight > 0.0
                for name, weight in self.mix):
            raise ValueError("mix must be non-empty (algorithm, "
                             "positive weight) pairs")
        object.__setattr__(self, "venues", tuple(self.venues))
        object.__setattr__(self, "mix",
                           tuple((str(n), float(w)) for n, w in self.mix))

    def to_doc(self) -> Dict:
        """The JSON-safe form recorded in trajectory entries."""
        return {
            "rate_qps": self.rate_qps,
            "duration_s": self.duration_s,
            "venues": list(self.venues),
            "pool": self.pool,
            "seed": self.seed,
            "process": self.process,
            "zipf_s": self.zipf_s,
            "mix": [[name, weight] for name, weight in self.mix],
            "on_s": self.on_s,
            "off_s": self.off_s,
            "off_rate_fraction": self.off_rate_fraction,
        }

    @classmethod
    def from_doc(cls, doc: Mapping) -> "LoadModelConfig":
        """Re-materialise a config from a recorded trajectory entry."""
        return cls(
            rate_qps=doc["rate_qps"],
            duration_s=doc["duration_s"],
            venues=tuple(doc["venues"]),
            pool=doc["pool"],
            seed=doc["seed"],
            process=doc.get("process", "poisson"),
            zipf_s=doc.get("zipf_s", 1.1),
            mix=tuple((name, weight) for name, weight in
                      doc.get("mix", DEFAULT_MIX)),
            on_s=doc.get("on_s", 1.0),
            off_s=doc.get("off_s", 1.0),
            off_rate_fraction=doc.get("off_rate_fraction", 0.0))


def build_schedule(cfg: LoadModelConfig) -> List[Arrival]:
    """The deterministic arrival schedule of ``cfg``.

    One :class:`random.Random` seeded with ``cfg.seed`` drives the
    arrival process first, then the per-arrival tenant / shape / query
    draws — so two builds of the same config agree arrival by arrival.
    """
    rng = random.Random(cfg.seed)
    if cfg.process == "poisson":
        times = poisson_arrivals(cfg.rate_qps, cfg.duration_s, rng)
    else:
        times = bursty_arrivals(cfg.rate_qps, cfg.duration_s, rng,
                                on_s=cfg.on_s, off_s=cfg.off_s,
                                off_rate_fraction=cfg.off_rate_fraction)
    venue_weights = zipf_weights(len(cfg.venues), cfg.zipf_s)
    algorithms = [name for name, _ in cfg.mix]
    algo_weights = [weight for _, weight in cfg.mix]
    return [Arrival(at_s=at,
                    venue=pick_weighted(cfg.venues, venue_weights, rng),
                    algorithm=pick_weighted(algorithms, algo_weights, rng),
                    query=rng.randrange(cfg.pool))
            for at in times]


def schedule_digest(schedule: Sequence[Arrival]) -> str:
    """A stable fingerprint of a schedule (sha256, hex).

    Arrival times are rounded to the nanosecond before hashing so the
    digest survives JSON round-trips of the recorded config.
    """
    doc = [[round(a.at_s, 9), a.venue, a.algorithm, a.query]
           for a in schedule]
    blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------
# Coordinated-omission arithmetic
# ----------------------------------------------------------------------
def serialized_completions(intended: Sequence[float],
                           service_s: Sequence[float]) -> List[float]:
    """Completion times of a single-file server — the canonical
    coordinated-omission scenario.

    Request ``i`` *starts* at ``max(intended[i], previous completion)``
    and finishes ``service_s[i]`` later.  A closed-loop bench would
    report each request's bare service time; the corrected view
    (:func:`corrected_latencies`) charges the queueing delay a stalled
    server imposed on every request behind it.
    """
    if len(intended) != len(service_s):
        raise ValueError("intended and service_s must be equal length")
    out: List[float] = []
    free = 0.0
    for at, service in zip(intended, service_s):
        if service < 0.0:
            raise ValueError("service times must be non-negative")
        start = max(at, free)
        free = start + service
        out.append(free)
    return out


def corrected_latencies(intended: Sequence[float],
                        completions: Sequence[float]) -> List[float]:
    """Latency from *intended* send time: ``completion - intended``.

    This is the coordinated-omission-corrected latency: if the
    generator (or the server's accept queue) delayed the actual send,
    the wait still counts, because the user who asked at ``intended``
    experienced it.
    """
    if len(intended) != len(completions):
        raise ValueError("intended and completions must be equal length")
    out: List[float] = []
    for at, done in zip(intended, completions):
        if done < at:
            raise ValueError(f"completion {done} precedes its intended "
                             f"send time {at}")
        out.append(done - at)
    return out

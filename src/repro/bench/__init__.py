"""Benchmark harness reproducing the paper's evaluation (Section V).

* :mod:`repro.bench.harness` — run workloads over algorithm sets,
  collecting per-query wall time and the memory proxy, averaged the
  way the paper does (10 instances × 5 runs per setting),
* :mod:`repro.bench.experiments` — one entry point per paper figure
  (Figs. 4–20), each returning a result table,
* :mod:`repro.bench.reporting` — plain-text table/series rendering.

All experiments accept a ``scale`` knob: ``1.0`` is the paper-size
venue (705 partitions / 1116 doors on five floors) and smaller values
shrink the workload for pure-Python CI runs — relative shapes (who
wins, where crossovers fall) are preserved, absolute milliseconds are
not comparable to the paper's Java implementation.
"""

from repro.bench.harness import AlgorithmRun, BenchHarness, SettingResult
from repro.bench.reporting import format_table, format_series
from repro.bench import experiments

__all__ = [
    "AlgorithmRun",
    "BenchHarness",
    "SettingResult",
    "experiments",
    "format_series",
    "format_table",
]

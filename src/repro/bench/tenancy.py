"""Multi-venue tenancy under fire: hammer N malls, hot-swap one.

``repro.bench tenancy`` is the proving ground of the multi-tenant
serving layer: it

1. generates ``--venues`` distinct synthetic malls
   (:func:`repro.datasets.synth.tenant_mall_configs` — each tenant has
   its own corpus, so a cross-venue routing mix-up cannot hide),
2. computes every expected answer with local per-venue engines
   (sequential ``engine.search`` — the byte-identity reference),
3. snapshots each venue and starts one multi-venue
   :class:`~repro.serve.pool.ShardPool` behind the tenant dispatcher
   with per-venue admission quotas,
4. hammers every venue concurrently from its own client threads, and
   mid-stream **hot-swaps** the first venue onto a freshly rebuilt
   snapshot generation (``ingest``: broadcast load, atomic flip, drain
   barrier, evict),
5. verifies that every served answer — before, during and after the
   swap — is byte-identical to the local reference, that answers only
   ever come from a fully-loaded generation (1 or 2, never a blend),
   and that not a single non-shed request was dropped,
6. appends one entry — total and per-venue qps, shed counts/rate,
   swap load/drain latencies, latency percentiles — to the
   ``BENCH_throughput.json`` trajectory.

Run it from the shell::

    python -m repro.bench tenancy --venues 4 --shards 4
    python -m repro.bench tenancy --smoke        # tiny CI self-check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.throughput import (DEFAULT_ARTIFACT, append_trajectory,
                                    build_stream, latency_percentiles)
from repro.core.engine import IKRQEngine, canonical_algorithm
from repro.datasets.synth import (build_synth_mall, mall_stats,
                                  tenant_mall_configs)
from repro.serve import (ShardDispatcher, ShardPool, TenantQuota,
                         answer_to_wire, canonical_json, query_to_wire,
                         save_snapshot)

#: Fraction of the total stream after which the hot-swap fires.
SWAP_AT_FRACTION = 1.0 / 3.0


class _VenueRun:
    """One tenant's workload state: stream, expectations, outcomes."""

    def __init__(self, venue: str, engine: IKRQEngine,
                 stream, algorithm: str) -> None:
        self.venue = venue
        self.engine = engine
        self.stream = stream
        self.wire = [query_to_wire(q) for q in stream]
        self.expected = {}
        for query in dict.fromkeys(stream):
            answer = engine.search(query, algorithm)
            self.expected[canonical_json(query_to_wire(query))] = (
                canonical_json(answer_to_wire(answer)))
        self.latencies: List[float] = []
        self.statuses: Dict[str, int] = {}
        self.generations: set = set()
        self.mismatches = 0
        self.seconds = 0.0


def _hammer(run: _VenueRun,
            dispatcher: ShardDispatcher,
            algorithm: str,
            progress,
            ) -> None:
    """Replay one venue's stream through the dispatcher, verifying
    byte-identity of every ``ok`` answer on the fly."""
    started = time.perf_counter()
    for doc in run.wire:
        q_started = time.perf_counter()
        response = dispatcher.submit(doc, algorithm, venue=run.venue)
        run.latencies.append(time.perf_counter() - q_started)
        status = response.get("status", "error")
        run.statuses[status] = run.statuses.get(status, 0) + 1
        if status == "ok":
            run.generations.add(response.get("generation"))
            got = canonical_json({"algorithm": response.get("algorithm"),
                                  "routes": response.get("routes")})
            if got != run.expected[canonical_json(doc)]:
                run.mismatches += 1
        progress()
    run.seconds = time.perf_counter() - started


def run_tenancy(venues: int = 3,
                floors: int = 2,
                rooms_per_floor: int = 16,
                words_per_room: int = 4,
                shards: int = 2,
                pool: int = 6,
                repeat: int = 6,
                seed: int = 7,
                algorithm: str = "ToE",
                max_pending: int = 64,
                tenant_quota: Optional[int] = 16,
                binary_swap: bool = True) -> Dict:
    """The tenancy workload; returns one trajectory entry.

    The first venue is hot-swapped once roughly a third of the way
    through the combined stream; its replacement snapshot is rebuilt
    from scratch (fresh engine over the same deterministic venue, by
    default in the binary v2 encoding), so identical answers across
    the swap prove the whole rebuild/load/flip/drain path, not just
    pointer juggling.
    """
    algorithm = canonical_algorithm(algorithm)
    configs = tenant_mall_configs(
        venues, floors=floors, rooms_per_floor=rooms_per_floor,
        words_per_room=words_per_room, seed=seed)

    runs: List[_VenueRun] = []
    with tempfile.TemporaryDirectory(prefix="repro-tenancy-") as tmp:
        snapshot_paths: Dict[str, str] = {}
        for i, (venue, cfg) in enumerate(sorted(configs.items())):
            space, kindex = build_synth_mall(cfg)
            engine = IKRQEngine(space, kindex, door_matrix_eager=False)
            stream = build_stream(engine, pool=pool, repeat=repeat,
                                  endpoints=max(2, pool // 2),
                                  seed=seed + i)
            runs.append(_VenueRun(venue, engine, stream, algorithm))
            path = os.path.join(tmp, f"{venue}.snap.json")
            save_snapshot(path, engine)
            snapshot_paths[venue] = path

        swap_venue = runs[0].venue
        # The replacement generation: a from-scratch rebuild of the
        # same deterministic venue (what a re-index produces).
        rebuilt_space, rebuilt_kindex = build_synth_mall(
            configs[swap_venue])
        rebuilt = IKRQEngine(rebuilt_space, rebuilt_kindex,
                             door_matrix_eager=False)
        swap_path = os.path.join(
            tmp, f"{swap_venue}.gen2.snap" + ("" if binary_swap else ".json"))
        save_snapshot(swap_path, rebuilt, binary=binary_swap)

        total = sum(len(run.wire) for run in runs)
        done = threading.Lock()
        completed = [0]
        swap_trigger = threading.Event()

        def progress() -> None:
            with done:
                completed[0] += 1
                if completed[0] >= max(1, int(total * SWAP_AT_FRACTION)):
                    swap_trigger.set()

        quotas = ({run.venue: TenantQuota(tenant_quota) for run in runs}
                  if tenant_quota else None)
        swap_report: Dict = {}
        with ShardPool(venues=snapshot_paths, shards=shards) as shard_pool:
            dispatcher = ShardDispatcher(shard_pool,
                                         max_pending=max_pending,
                                         quotas=quotas)
            # Warm each venue's affinity shards outside the timed region
            # (mirrors the other benches' warm-up).
            for run in runs:
                for doc in run.wire[:min(2, len(run.wire))]:
                    dispatcher.submit(doc, algorithm, venue=run.venue)

            def swapper() -> None:
                swap_trigger.wait(timeout=300.0)
                swap_report.update(dispatcher.ingest(swap_venue, swap_path))

            threads = [threading.Thread(
                target=_hammer, args=(run, dispatcher, algorithm, progress),
                name=f"hammer-{run.venue}") for run in runs]
            swap_thread = threading.Thread(target=swapper, name="swapper")
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            swap_thread.start()
            for thread in threads:
                thread.join()
            swap_trigger.set()  # tiny streams: never leave the swapper hanging
            swap_thread.join()
            wall_seconds = time.perf_counter() - started

            # Explicit after-phase: the hammer threads may have drained
            # a small stream before the swap landed, so the "after the
            # swap" byte-identity check is its own deterministic pass —
            # every venue's distinct queries once more, with the
            # swapped venue required to answer from the new generation.
            after_mismatches = 0
            after_bad = 0
            after_generations: set = set()
            new_generation = swap_report.get("generation")
            if swap_report.get("status") == "ok":
                for run in runs:
                    distinct = list({canonical_json(doc): doc
                                     for doc in run.wire}.values())
                    for doc in distinct:
                        response = dispatcher.submit(doc, algorithm,
                                                     venue=run.venue)
                        if response.get("status") != "ok":
                            after_bad += 1
                            continue
                        got = canonical_json(
                            {"algorithm": response.get("algorithm"),
                             "routes": response.get("routes")})
                        if got != run.expected[canonical_json(doc)]:
                            after_mismatches += 1
                        if run.venue == swap_venue:
                            after_generations.add(
                                response.get("generation"))

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    statuses: Dict[str, int] = {}
    for run in runs:
        for status, count in run.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
    answered = statuses.get("ok", 0)
    shed = statuses.get("overloaded", 0)
    dropped = sum(count for status, count in statuses.items()
                  if status not in ("ok", "overloaded"))
    mismatches = sum(run.mismatches for run in runs) + after_mismatches
    swap_run = runs[0]
    swap_generations = sorted(
        {g for g in swap_run.generations if g is not None}
        | after_generations)
    stable_generations = sorted(
        {g for run in runs[1:] for g in run.generations})

    entry = {
        "mode": "tenancy",
        "venues": venues,
        "floors": floors,
        "rooms_per_floor": rooms_per_floor,
        "shards": shards,
        "algorithm": algorithm,
        "queries": total,
        "max_pending": max_pending,
        "tenant_quota": tenant_quota,
        "swap_venue": swap_venue,
        "swap_encoding": "binary-v2" if binary_swap else "json-v1",
        "qps": answered / wall_seconds if wall_seconds else float("inf"),
        "wall_seconds": wall_seconds,
        "answered": answered,
        "shed": shed,
        "shed_rate": shed / total if total else 0.0,
        "dropped": dropped,
        "mismatches": mismatches,
        "swap": {key: swap_report.get(key)
                 for key in ("generation", "previous_generation",
                             "load_seconds", "drain_seconds",
                             "swap_seconds", "drained", "status")},
        "swap_generations_observed": swap_generations,
        "after_swap_checks": {
            "queries": sum(len({canonical_json(doc) for doc in run.wire})
                           for run in runs),
            "not_ok": after_bad,
            "mismatches": after_mismatches,
            "swap_venue_generations": sorted(after_generations),
        },
        "latency_ms": {
            run.venue: latency_percentiles(run.latencies) for run in runs},
        "per_venue": {
            run.venue: {
                "queries": len(run.wire),
                "qps": (len(run.wire) / run.seconds
                        if run.seconds else float("inf")),
                "statuses": dict(sorted(run.statuses.items())),
                **mall_stats(run.engine.space, run.engine.kindex),
            } for run in runs},
        "verified_identical": mismatches == 0,
        "zero_dropped": dropped == 0 and after_bad == 0,
        # Atomicity: the swap succeeded, no answer ever came from a
        # generation other than 1 or 2, the deterministic after-phase
        # saw only the new generation on the swapped venue, and the
        # stable venues never left generation 1.
        "swap_atomic": (swap_report.get("status") == "ok"
                        and set(swap_generations) <= {1, 2}
                        and after_generations == {new_generation}
                        and stable_generations in ([], [1])),
    }
    return entry


def format_tenancy_report(entry: Dict) -> str:
    swap = entry["swap"]
    lines = [
        f"venues={entry['venues']} shards={entry['shards']} "
        f"algorithm={entry['algorithm']} queries={entry['queries']} "
        f"quota={entry['tenant_quota']} max_pending={entry['max_pending']}",
        f"  served     : {entry['answered']} ok "
        f"({entry['qps']:10.1f} q/s across tenants), "
        f"{entry['shed']} shed ({entry['shed_rate'] * 100.0:.1f}%), "
        f"{entry['dropped']} dropped",
        f"  hot swap   : {entry['swap_venue']} -> generation "
        f"{swap.get('generation')} ({entry['swap_encoding']}), "
        f"load {1000.0 * (swap.get('load_seconds') or 0):.1f} ms, "
        f"drain {1000.0 * (swap.get('drain_seconds') or 0):.1f} ms, "
        f"swap {1000.0 * (swap.get('swap_seconds') or 0):.1f} ms",
        f"  identity   : byte-identical={entry['verified_identical']} "
        f"zero_dropped={entry['zero_dropped']} "
        f"swap_atomic={entry['swap_atomic']} "
        f"(generations observed: {entry['swap_generations_observed']})",
    ]
    for venue, stats in sorted(entry["per_venue"].items()):
        pct = entry["latency_ms"].get(venue) or {}
        lines.append(
            f"  {venue:10s}: {stats['qps']:8.1f} q/s "
            f"{stats['statuses']} p95="
            f"{pct.get('p95_ms', float('nan')):.2f} ms")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark multi-venue tenancy with a mid-stream "
                    "zero-downtime snapshot hot-swap.")
    parser.add_argument("--venues", type=int, default=3,
                        help="co-hosted synthetic tenants (default 3)")
    parser.add_argument("--floors", type=int, default=2)
    parser.add_argument("--rooms-per-floor", type=int, default=16)
    parser.add_argument("--words-per-room", type=int, default=4)
    parser.add_argument("--shards", type=int, default=2,
                        help="shard processes hosting every venue")
    parser.add_argument("--pool", type=int, default=6,
                        help="distinct queries per venue")
    parser.add_argument("--repeat", type=int, default=6,
                        help="how often each venue's pool repeats")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--algorithm", default="ToE")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="pool-wide admission queue depth")
    parser.add_argument("--tenant-quota", type=int, default=16,
                        help="per-venue in-flight quota (0 = none)")
    parser.add_argument("--json-swap", action="store_true",
                        help="swap in a JSON v1 snapshot instead of "
                             "binary v2")
    parser.add_argument("--artifact", default=DEFAULT_ARTIFACT,
                        help="trajectory JSON to append results to "
                             "('' disables)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: 2 venues, small malls; fails "
                             "on any identity mismatch, dropped request, "
                             "non-atomic swap or missing trajectory append")
    args = parser.parse_args(argv)

    if args.smoke:
        entry = run_tenancy(venues=2, floors=1, rooms_per_floor=16,
                            words_per_room=3, shards=2, pool=4, repeat=3,
                            seed=args.seed, algorithm=args.algorithm,
                            max_pending=args.max_pending,
                            tenant_quota=args.tenant_quota or None,
                            binary_swap=not args.json_swap)
    else:
        entry = run_tenancy(venues=args.venues, floors=args.floors,
                            rooms_per_floor=args.rooms_per_floor,
                            words_per_room=args.words_per_room,
                            shards=args.shards, pool=args.pool,
                            repeat=args.repeat, seed=args.seed,
                            algorithm=args.algorithm,
                            max_pending=args.max_pending,
                            tenant_quota=args.tenant_quota or None,
                            binary_swap=not args.json_swap)
    print(format_tenancy_report(entry))
    if args.artifact:
        append_trajectory(args.artifact, entry)
        print(f"trajectory appended to {args.artifact}")
    ok = (entry["verified_identical"] and entry["zero_dropped"]
          and entry["swap_atomic"])
    if args.smoke:
        if not ok:
            print("tenancy smoke FAILED: "
                  f"identical={entry['verified_identical']} "
                  f"zero_dropped={entry['zero_dropped']} "
                  f"swap_atomic={entry['swap_atomic']}")
            return 1
        if not args.artifact:
            print("tenancy smoke FAILED: --smoke verifies the trajectory "
                  "append; do not pass --artifact ''")
            return 1
        print(f"tenancy smoke ok: {entry['answered']} answers "
              f"byte-identical across 2 venues and a generation-2 "
              f"hot-swap, {entry['shed']} shed, 0 dropped, trajectory "
              f"at {args.artifact}")
        return 0
    # Identity/atomicity gate the exit code in every mode; timings are
    # recorded, never judged (shared CI runners are noisy).
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via wrapper
    import sys
    sys.exit(main())

"""Chaos harness: kill live shard workers mid-stream, gate on recovery.

``repro.bench chaos`` is the proving ground of the fault-tolerant
fleet: it

1. generates ``--venues`` distinct synthetic malls and computes every
   expected answer with local per-venue engines (sequential
   ``engine.search`` — the byte-identity reference),
2. starts one multi-venue :class:`~repro.serve.pool.ShardPool` with
   *fast* supervision clocks (sub-second heartbeats and restart
   backoff, so crash → detect → respawn cycles complete in bench
   time) behind a :class:`~repro.serve.pool.ShardDispatcher` with
   enough failover retries to walk the whole ring,
3. hammers every venue concurrently while a killer thread runs a
   deterministic schedule of ``SIGKILL``\\ s against live workers —
   shard ``i % shards`` dies once the stream crosses fraction
   ``(i+1)/(kills+1)`` — waiting for each corpse's replacement to
   rejoin before the next kill (so at least one shard is always up),
4. verifies byte-identity of every ``ok`` answer on the fly and, once
   the fleet has healed, replays each venue's distinct queries in a
   deterministic after-phase that must be 100 % ``ok`` and identical,
5. gates on **zero non-shed failures** (every status is ``ok`` or
   ``overloaded`` — never ``shard_down``/``timeout``/``error``),
   **recovery** (every killed worker restarted and rejoined),
   **byte-identity**, and a **bounded p99** (default 10 s — generous,
   but meaningful: without supervision a request parked on a dead
   shard burns the full 300 s RPC timeout),
6. appends one ``{"mode": "chaos"}`` entry — qps, kill windows with
   detection/recovery times, in-window latency percentiles, failover
   and restart counts, the four verdicts — to the
   ``BENCH_throughput.json`` trajectory.

Run it from the shell::

    python -m repro.bench chaos --shards 3 --kills 2
    python -m repro.bench chaos --smoke        # tiny CI self-check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.throughput import (DEFAULT_ARTIFACT, append_trajectory,
                                    build_stream, latency_percentiles)
from repro.core.engine import IKRQEngine, canonical_algorithm
from repro.obs import setup_serve_logging
from repro.datasets.synth import (build_synth_mall, mall_stats,
                                  tenant_mall_configs)
from repro.serve import (ShardDispatcher, ShardPool, answer_to_wire,
                         canonical_json, query_to_wire, save_snapshot)

#: Statuses that do not count as failures: answered, or deliberately
#: shed by admission control.
_ACCEPTABLE = ("ok", "overloaded")


class _VenueRun:
    """One venue's workload state: stream, expectations, outcomes."""

    def __init__(self, venue: str, engine: IKRQEngine,
                 stream, algorithm: str) -> None:
        self.venue = venue
        self.engine = engine
        self.stream = stream
        self.wire = [query_to_wire(q) for q in stream]
        self.expected = {}
        for query in dict.fromkeys(stream):
            answer = engine.search(query, algorithm)
            self.expected[canonical_json(query_to_wire(query))] = (
                canonical_json(answer_to_wire(answer)))
        #: (start offset s, latency s, status) per request, offsets
        #: relative to the shared bench clock so kill windows overlay.
        self.samples: List[tuple] = []
        self.statuses: Dict[str, int] = {}
        self.mismatches = 0
        self.seconds = 0.0


def _hammer(run: _VenueRun,
            dispatcher: ShardDispatcher,
            algorithm: str,
            progress,
            bench_started: float) -> None:
    """Replay one venue's stream, verifying every ``ok`` answer."""
    started = time.perf_counter()
    for doc in run.wire:
        q_started = time.perf_counter()
        response = dispatcher.submit(doc, algorithm, venue=run.venue)
        latency = time.perf_counter() - q_started
        run.samples.append((q_started - bench_started, latency,
                            response.get("status", "error")))
        status = response.get("status", "error")
        run.statuses[status] = run.statuses.get(status, 0) + 1
        if status == "ok":
            got = canonical_json({"algorithm": response.get("algorithm"),
                                  "routes": response.get("routes")})
            if got != run.expected[canonical_json(doc)]:
                run.mismatches += 1
        progress()
    run.seconds = time.perf_counter() - started


def run_chaos(venues: int = 2,
              floors: int = 1,
              rooms_per_floor: int = 16,
              words_per_room: int = 3,
              shards: int = 3,
              pool: int = 6,
              repeat: int = 25,
              seed: int = 11,
              algorithm: str = "ToE",
              max_pending: int = 64,
              kills: int = 2,
              p99_bound_ms: float = 10000.0,
              recovery_timeout: float = 30.0) -> Dict:
    """The chaos workload; returns one trajectory entry."""
    if shards < 2:
        raise ValueError("chaos needs >= 2 shards (a sibling to fail "
                         "over to)")
    algorithm = canonical_algorithm(algorithm)
    configs = tenant_mall_configs(
        venues, floors=floors, rooms_per_floor=rooms_per_floor,
        words_per_room=words_per_room, seed=seed)

    runs: List[_VenueRun] = []
    kill_windows: List[Dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        snapshot_paths: Dict[str, str] = {}
        for i, (venue, cfg) in enumerate(sorted(configs.items())):
            space, kindex = build_synth_mall(cfg)
            engine = IKRQEngine(space, kindex, door_matrix_eager=False)
            stream = build_stream(engine, pool=pool, repeat=repeat,
                                  endpoints=max(2, pool // 2),
                                  seed=seed + i)
            runs.append(_VenueRun(venue, engine, stream, algorithm))
            path = os.path.join(tmp, f"{venue}.snap.json")
            save_snapshot(path, engine)
            snapshot_paths[venue] = path

        total = sum(len(run.wire) for run in runs)
        done = threading.Lock()
        completed = [0]
        drained = threading.Event()

        def progress() -> None:
            with done:
                completed[0] += 1
                if completed[0] >= total:
                    drained.set()

        with ShardPool(venues=snapshot_paths, shards=shards,
                       heartbeat_interval=0.1, heartbeat_timeout=5.0,
                       restart_backoff_s=0.1, restart_backoff_max_s=0.5,
                       restart_budget=max(5, kills + 2),
                       restart_window_s=60.0) as shard_pool:
            dispatcher = ShardDispatcher(shard_pool,
                                         max_pending=max_pending,
                                         failover_retries=shards)
            # Warm each venue's affinity shards outside the timed
            # region (mirrors the other benches' warm-up).
            for run in runs:
                for doc in run.wire[:min(2, len(run.wire))]:
                    dispatcher.submit(doc, algorithm, venue=run.venue)

            bench_started = time.perf_counter()

            def killer() -> None:
                for i in range(kills):
                    threshold = max(1, int(total * (i + 1) / (kills + 1)))
                    while completed[0] < threshold and not drained.is_set():
                        time.sleep(0.005)
                    shard = i % shards
                    killed_at = time.perf_counter() - bench_started
                    if not shard_pool.kill_shard(shard):
                        continue  # already down (e.g. back-to-back kill)
                    window = {"shard": shard,
                              "killed_at_s": round(killed_at, 4),
                              "detected_s": None, "recovered_s": None}
                    kill_windows.append(window)
                    deadline = time.monotonic() + recovery_timeout
                    while time.monotonic() < deadline:
                        state = shard_pool.shard_state(shard)
                        now = time.perf_counter() - bench_started
                        if (window["detected_s"] is None
                                and state != "up"):
                            window["detected_s"] = round(
                                now - killed_at, 4)
                        if (window["detected_s"] is not None
                                and state == "up"):
                            window["recovered_s"] = round(
                                now - killed_at, 4)
                            break
                        time.sleep(0.01)

            threads = [threading.Thread(
                target=_hammer,
                args=(run, dispatcher, algorithm, progress, bench_started),
                name=f"hammer-{run.venue}") for run in runs]
            kill_thread = threading.Thread(target=killer, name="killer")
            for thread in threads:
                thread.start()
            kill_thread.start()
            for thread in threads:
                thread.join()
            drained.set()
            kill_thread.join()
            wall_seconds = time.perf_counter() - bench_started

            # Healing gate: every corpse replaced and ready.
            healed = shard_pool.wait_all_up(timeout=recovery_timeout)
            restarts = shard_pool.restarts_total
            worker_states = shard_pool.shard_states()

            # Deterministic after-phase: with the fleet healed, every
            # venue's distinct queries must all answer, byte-identical
            # — restarted workers prove their warm reload here.
            after_mismatches = 0
            after_bad = 0
            for run in runs:
                distinct = list({canonical_json(doc): doc
                                 for doc in run.wire}.values())
                for doc in distinct:
                    response = dispatcher.submit(doc, algorithm,
                                                 venue=run.venue)
                    if response.get("status") != "ok":
                        after_bad += 1
                        continue
                    got = canonical_json(
                        {"algorithm": response.get("algorithm"),
                         "routes": response.get("routes")})
                    if got != run.expected[canonical_json(doc)]:
                        after_mismatches += 1
            failovers = dispatcher.failovers

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    statuses: Dict[str, int] = {}
    for run in runs:
        for status, count in run.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
    answered = statuses.get("ok", 0)
    shed = statuses.get("overloaded", 0)
    failed = sum(count for status, count in statuses.items()
                 if status not in _ACCEPTABLE)
    mismatches = sum(run.mismatches for run in runs) + after_mismatches

    all_latencies = [s[1] for run in runs for s in run.samples]
    in_window: List[float] = []
    for run in runs:
        for offset, latency, _status in run.samples:
            for window in kill_windows:
                end = window["killed_at_s"] + (
                    window["recovered_s"] or recovery_timeout)
                if window["killed_at_s"] <= offset <= end:
                    in_window.append(latency)
                    break
    overall = latency_percentiles(all_latencies)
    window_pct = latency_percentiles(in_window)
    p99_ms = overall.get("p99_ms", 0.0)

    kills_fired = len(kill_windows)
    recovered = (healed and kills_fired > 0
                 and all(w["recovered_s"] is not None
                         for w in kill_windows)
                 and restarts >= kills_fired)

    entry = {
        "mode": "chaos",
        "venues": venues,
        "floors": floors,
        "rooms_per_floor": rooms_per_floor,
        "shards": shards,
        "algorithm": algorithm,
        "queries": total,
        "max_pending": max_pending,
        "kills_planned": kills,
        "kills_fired": kills_fired,
        "kill_windows": kill_windows,
        "qps": answered / wall_seconds if wall_seconds else float("inf"),
        "wall_seconds": wall_seconds,
        "answered": answered,
        "shed": shed,
        "shed_rate": shed / total if total else 0.0,
        "failed": failed,
        "statuses": dict(sorted(statuses.items())),
        "mismatches": mismatches,
        "failovers": failovers,
        "restarts": restarts,
        "workers": worker_states,
        "after_checks": {
            "queries": sum(len({canonical_json(doc) for doc in run.wire})
                           for run in runs),
            "not_ok": after_bad,
            "mismatches": after_mismatches,
        },
        "latency_ms": overall,
        "kill_window_latency_ms": window_pct,
        "p99_bound_ms": p99_bound_ms,
        "per_venue": {
            run.venue: {
                "queries": len(run.wire),
                "qps": (len(run.wire) / run.seconds
                        if run.seconds else float("inf")),
                "statuses": dict(sorted(run.statuses.items())),
                **mall_stats(run.engine.space, run.engine.kindex),
            } for run in runs},
        "zero_non_shed_failures": failed == 0 and after_bad == 0,
        "verified_identical": mismatches == 0,
        "recovered": recovered,
        "p99_bounded": p99_ms <= p99_bound_ms,
    }
    return entry


def format_chaos_report(entry: Dict) -> str:
    lines = [
        f"venues={entry['venues']} shards={entry['shards']} "
        f"algorithm={entry['algorithm']} queries={entry['queries']} "
        f"kills={entry['kills_fired']}/{entry['kills_planned']}",
        f"  served     : {entry['answered']} ok "
        f"({entry['qps']:10.1f} q/s), {entry['shed']} shed "
        f"({entry['shed_rate'] * 100.0:.1f}%), "
        f"{entry['failed']} failed, {entry['failovers']} failovers, "
        f"{entry['restarts']} restarts",
    ]
    for window in entry["kill_windows"]:
        lines.append(
            f"  kill       : shard {window['shard']} at "
            f"{window['killed_at_s']:.2f}s, detected "
            f"+{window['detected_s']}s, recovered "
            f"+{window['recovered_s']}s")
    overall = entry["latency_ms"] or {}
    in_window = entry["kill_window_latency_ms"] or {}
    lines.append(
        f"  latency    : p99={overall.get('p99_ms', float('nan')):.2f} ms "
        f"overall, p99={in_window.get('p99_ms', float('nan')):.2f} ms "
        f"inside kill windows (bound {entry['p99_bound_ms']:.0f} ms)")
    lines.append(
        f"  verdicts   : zero_non_shed_failures="
        f"{entry['zero_non_shed_failures']} "
        f"byte-identical={entry['verified_identical']} "
        f"recovered={entry['recovered']} "
        f"p99_bounded={entry['p99_bounded']}")
    for venue, stats in sorted(entry["per_venue"].items()):
        lines.append(
            f"  {venue:10s}: {stats['qps']:8.1f} q/s "
            f"{stats['statuses']}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Chaos-test the shard fleet: SIGKILL live workers "
                    "mid-stream, gate on failover, recovery and "
                    "byte-identity.")
    parser.add_argument("--venues", type=int, default=2,
                        help="co-hosted synthetic tenants (default 2)")
    parser.add_argument("--floors", type=int, default=1)
    parser.add_argument("--rooms-per-floor", type=int, default=16)
    parser.add_argument("--words-per-room", type=int, default=3)
    parser.add_argument("--shards", type=int, default=3,
                        help="shard processes (>= 2; every venue on "
                             "every shard)")
    parser.add_argument("--pool", type=int, default=6,
                        help="distinct queries per venue")
    parser.add_argument("--repeat", type=int, default=25,
                        help="how often each venue's pool repeats")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--algorithm", default="ToE")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="pool-wide admission queue depth")
    parser.add_argument("--kills", type=int, default=2,
                        help="scheduled worker SIGKILLs (default 2)")
    parser.add_argument("--p99-bound-ms", type=float, default=10000.0,
                        help="overall p99 latency gate in ms "
                             "(default 10000)")
    parser.add_argument("--artifact", default=DEFAULT_ARTIFACT,
                        help="trajectory JSON to append results to "
                             "('' disables)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: 2 venues, 2 shards, 1 kill; "
                             "fails on any non-shed failure, identity "
                             "mismatch, unrecovered worker, unbounded "
                             "p99 or missing trajectory append")
    args = parser.parse_args(argv)

    # Supervision events (worker_exit / failover / worker_restart) are
    # logged at WARNING; render them as JSON lines on stderr instead of
    # letting the stdlib last-resort handler spray bare event names.
    setup_serve_logging()

    if args.smoke:
        entry = run_chaos(venues=2, floors=1, rooms_per_floor=16,
                          words_per_room=3, shards=2, pool=4, repeat=12,
                          seed=args.seed, algorithm=args.algorithm,
                          max_pending=args.max_pending, kills=1,
                          p99_bound_ms=args.p99_bound_ms)
    else:
        entry = run_chaos(venues=args.venues, floors=args.floors,
                          rooms_per_floor=args.rooms_per_floor,
                          words_per_room=args.words_per_room,
                          shards=args.shards, pool=args.pool,
                          repeat=args.repeat, seed=args.seed,
                          algorithm=args.algorithm,
                          max_pending=args.max_pending, kills=args.kills,
                          p99_bound_ms=args.p99_bound_ms)
    print(format_chaos_report(entry))
    if args.artifact:
        append_trajectory(args.artifact, entry)
        print(f"trajectory appended to {args.artifact}")
    ok = (entry["zero_non_shed_failures"] and entry["verified_identical"]
          and entry["recovered"] and entry["p99_bounded"])
    if args.smoke:
        if not ok:
            print("chaos smoke FAILED: "
                  f"zero_non_shed_failures="
                  f"{entry['zero_non_shed_failures']} "
                  f"identical={entry['verified_identical']} "
                  f"recovered={entry['recovered']} "
                  f"p99_bounded={entry['p99_bounded']}")
            return 1
        if not args.artifact:
            print("chaos smoke FAILED: --smoke verifies the trajectory "
                  "append; do not pass --artifact ''")
            return 1
        print(f"chaos smoke ok: {entry['answered']} answers "
              f"byte-identical through {entry['kills_fired']} worker "
              f"kill(s), {entry['failovers']} failovers, "
              f"{entry['restarts']} restarts, 0 failed, trajectory "
              f"at {args.artifact}")
        return 0
    # Robustness verdicts gate the exit code in every mode; absolute
    # timings are recorded, never judged (the p99 bound is generous by
    # design — it catches the 300 s dead-shard hang, not CI noise).
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via wrapper
    import sys
    sys.exit(main())

"""Tenants-per-box under a memory budget: the memory-tiering proof.

``repro.bench memory`` measures what the mmap + spill + budget stack
actually buys: **how many co-hosted tenants fit into a fixed amount of
resident memory**, with answers that stay byte-identical to an eager
single-tenant engine.  The workload:

1. builds one deterministic synthetic mall, warms its KoE* door
   matrix, and bakes a page-aligned binary (v2.1) snapshot,
2. computes every expected answer on an eagerly loaded engine (the
   byte-identity reference),
3. **tiering off** — loads tenant engines the classic way (every
   buffer copied onto the process heap) until the next tenant would
   exceed the budget,
4. **tiering on** — loads tenants with ``mmap=True`` (all tenants
   share one page-cache copy of the typed-array payload), a small
   resident door-matrix budget, and a disk spill tier for the evicted
   rows, again until the budget is full,
5. replays the query stream through tiered tenants (``KoE*`` so the
   spill tier is actually exercised), verifying byte-identity and
   timing individual spilled-row faults,
6. appends one entry — tenants with/without tiering, the ratio,
   identity flag, spill counters, fault-latency percentiles, observed
   process RSS — to the ``BENCH_throughput.json`` trajectory.

Accounting is structural, not sampled: a tenant's resident cost is the
byte size of the typed index buffers it holds on the heap
(:meth:`~repro.core.engine.IKRQEngine.memory_breakdown`), and the
shared mapping is charged **once** — which is exactly how page cache
behaves when N processes map one generation file.  Observed process
RSS is recorded alongside for context (never gated: allocator reuse
makes it noisy), and the Python-object overhead (venue model, interning
dicts) is identical in both modes, so it cancels out of the ratio.

Run it from the shell::

    python -m repro.bench memory --floors 2 --budget-tenants 3
    python -m repro.bench memory --smoke     # tiny CI self-check
"""

from __future__ import annotations

import argparse
import gc
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.throughput import (DEFAULT_ARTIFACT, append_trajectory,
                                    build_stream, latency_percentiles)
from repro.core.engine import IKRQEngine, canonical_algorithm
from repro.datasets.synth import SynthMallConfig, build_synth_mall, mall_stats
from repro.serve import answer_to_wire, canonical_json, query_to_wire
from repro.serve.pool import process_rss_bytes
from repro.serve.snapshot import load_snapshot, save_snapshot


def _tenant_heap_bytes(engine: IKRQEngine) -> int:
    """The tenant's per-process resident share: heap buffer bytes."""
    return engine.memory_breakdown()["heap_bytes"]


def run_memory(floors: int = 2,
               rooms_per_floor: int = 16,
               words_per_room: int = 4,
               seed: int = 7,
               algorithm: str = "KoE*",
               pool: int = 6,
               repeat: int = 2,
               warm_rows: Optional[int] = None,
               matrix_budget: int = 2,
               budget_tenants: int = 3,
               max_tenants: int = 32,
               identity_tenants: int = 2) -> Dict:
    """The memory-tiering workload; returns one trajectory entry.

    ``budget_tenants`` fixes the resident budget at that many *eager*
    tenants' worth of buffer bytes (plus a sliver of headroom), so the
    tiering-off phase fits exactly ``budget_tenants`` and the ratio
    reads directly as "times more tenants per box".  ``matrix_budget``
    caps resident door-matrix rows per tiered tenant; everything the
    cap evicts goes to that tenant's spill file and faults back during
    the identity replay.
    """
    algorithm = canonical_algorithm(algorithm)
    config = SynthMallConfig(floors=floors,
                             rooms_per_floor=rooms_per_floor,
                             words_per_room=words_per_room, seed=seed)
    space, kindex = build_synth_mall(config)
    builder = IKRQEngine(space, kindex, door_matrix_eager=True)
    builder.door_matrix()  # warm every row; the snapshot caps below

    entry: Dict = {
        "mode": "memory",
        "algorithm": algorithm,
        "venue": {"floors": floors, "rooms_per_floor": rooms_per_floor,
                  "words_per_room": words_per_room, "seed": seed,
                  **mall_stats(space, kindex)},
    }
    rss_start = process_rss_bytes()

    with tempfile.TemporaryDirectory(prefix="repro-memory-") as tmp:
        snapshot_path = os.path.join(tmp, "venue.snap.bin")
        save_snapshot(snapshot_path, builder, binary=True,
                      matrix_rows=warm_rows)
        entry["snapshot_bytes"] = os.path.getsize(snapshot_path)

        # The byte-identity reference: an eager load of the very file
        # the tenants load, answering sequentially.
        reference = load_snapshot(snapshot_path)
        stream = build_stream(reference, pool=pool, repeat=repeat,
                              endpoints=max(2, pool // 2), seed=seed)
        distinct = list(dict.fromkeys(stream))
        expected = {
            canonical_json(query_to_wire(q)):
                canonical_json(answer_to_wire(reference.search(q, algorithm)))
            for q in distinct}

        eager_bytes = _tenant_heap_bytes(reference)
        budget = int(eager_bytes * budget_tenants + eager_bytes * 0.25)
        entry["budget_bytes"] = budget
        entry["per_tenant_eager_bytes"] = eager_bytes

        # -------------------------------------------------- tiering off
        eager_engines: List[IKRQEngine] = [reference]
        resident = eager_bytes
        while len(eager_engines) < max_tenants:
            engine = load_snapshot(snapshot_path)
            cost = _tenant_heap_bytes(engine)
            if resident + cost > budget:
                break
            resident += cost
            eager_engines.append(engine)
        tenants_eager = len(eager_engines)
        entry["resident_bytes_eager"] = resident
        rss_eager = process_rss_bytes()
        del eager_engines, reference
        gc.collect()

        # -------------------------------------------------- tiering on
        tiered: List[IKRQEngine] = []
        mapped_shared = 0
        resident = 0
        while len(tiered) < max_tenants:
            engine = load_snapshot(
                snapshot_path, mmap=True,
                matrix_spill_path=os.path.join(tmp,
                                               f"tenant{len(tiered)}.rows"),
                matrix_max_rows=matrix_budget)
            if not mapped_shared:
                # One page-cache copy serves every tenant mapping the
                # same generation file; charge it once.
                mapped_shared = engine.mapped_bytes
            cost = _tenant_heap_bytes(engine)
            if mapped_shared + resident + cost > budget:
                break
            resident += cost
            tiered.append(engine)
        tenants_tiered = len(tiered)
        entry["resident_bytes_tiered"] = mapped_shared + resident
        entry["mapped_shared_bytes"] = mapped_shared
        entry["per_tenant_tiered_bytes"] = (resident // tenants_tiered
                                            if tenants_tiered else 0)
        rss_tiered = process_rss_bytes()

        # ------------------------------------------- identity + faults
        mismatches = 0
        checked = 0
        spill_totals = {"spills": 0, "spill_hits": 0, "spill_misses": 0,
                        "spilled_rows": 0, "spilled_bytes": 0,
                        "evictions": 0}
        fault_seconds: List[float] = []
        check = tiered[:max(1, identity_tenants)]
        for engine in check:
            for query in distinct:
                got = canonical_json(
                    answer_to_wire(engine.search(query, algorithm)))
                if got != expected[canonical_json(query_to_wire(query))]:
                    mismatches += 1
                checked += 1
            matrix = engine._matrix
            if matrix is not None:
                # Time individual spilled-row faults through the public
                # path: a distance() on a spilled, non-resident source
                # must fault the row back from disk.
                probe = engine.graph._door_ids[0]
                spill = matrix._spill
                sources = spill.sources() if spill is not None else []
                for source in sources:
                    with matrix._lock:
                        resident_now = source in matrix._rows
                    if resident_now:
                        continue
                    before = matrix.spill_hits
                    started = time.perf_counter()
                    matrix.distance(source, probe)
                    elapsed = time.perf_counter() - started
                    if matrix.spill_hits > before:
                        fault_seconds.append(elapsed)
                counters = matrix.memory_counters()
                for name in spill_totals:
                    spill_totals[name] += counters[name]

    ratio = (tenants_tiered / tenants_eager) if tenants_eager else float("inf")
    entry.update({
        "tenants_eager": tenants_eager,
        "tenants_tiered": tenants_tiered,
        "tenant_ratio": ratio,
        "identity_checks": {"tenants": len(check), "queries": checked,
                            "mismatches": mismatches},
        "verified_identical": mismatches == 0 and checked > 0,
        "spill": spill_totals,
        "fault_latency_ms": latency_percentiles(fault_seconds),
        "faults_timed": len(fault_seconds),
        "rss_bytes": {"start": rss_start, "after_eager": rss_eager,
                      "after_tiered": rss_tiered},
    })
    return entry


def format_memory_report(entry: Dict) -> str:
    venue = entry["venue"]
    spill = entry["spill"]
    pct = entry.get("fault_latency_ms") or {}
    lines = [
        f"venue: floors={venue['floors']} rooms/floor="
        f"{venue['rooms_per_floor']} doors={venue['doors']} "
        f"algorithm={entry['algorithm']} "
        f"snapshot={entry['snapshot_bytes']} B",
        f"  budget     : {entry['budget_bytes']} B resident "
        f"({entry['per_tenant_eager_bytes']} B/tenant eager, "
        f"{entry['per_tenant_tiered_bytes']} B/tenant tiered + "
        f"{entry['mapped_shared_bytes']} B mapped once)",
        f"  tenants    : {entry['tenants_eager']} without tiering -> "
        f"{entry['tenants_tiered']} with tiering "
        f"({entry['tenant_ratio']:.1f}x)",
        f"  spill tier : {spill['spills']} spilled, "
        f"{spill['spill_hits']} faulted back, "
        f"{spill['spilled_bytes']} B on disk; fault p50="
        f"{pct.get('p50_ms', float('nan')):.3f} ms p95="
        f"{pct.get('p95_ms', float('nan')):.3f} ms "
        f"({entry['faults_timed']} timed)",
        f"  identity   : {entry['identity_checks']['queries']} answers "
        f"across {entry['identity_checks']['tenants']} tiered tenants, "
        f"{entry['identity_checks']['mismatches']} mismatches "
        f"(byte-identical={entry['verified_identical']})",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark resident tenants per memory budget with "
                    "and without the mmap/spill/GC memory tiers.")
    parser.add_argument("--floors", type=int, default=2)
    parser.add_argument("--rooms-per-floor", type=int, default=16)
    parser.add_argument("--words-per-room", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--algorithm", default="KoE*",
                        help="KoE* exercises the door-matrix spill tier")
    parser.add_argument("--pool", type=int, default=6,
                        help="distinct queries in the identity stream")
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--warm-rows", type=int, default=None,
                        help="cap on warm matrix rows baked into the "
                             "snapshot (default: all)")
    parser.add_argument("--matrix-budget", type=int, default=2,
                        help="resident door-matrix rows per tiered tenant")
    parser.add_argument("--budget-tenants", type=int, default=3,
                        help="memory budget, expressed in eager-tenant "
                             "buffer footprints")
    parser.add_argument("--max-tenants", type=int, default=32,
                        help="hard cap on loaded tenants per phase")
    parser.add_argument("--identity-tenants", type=int, default=2,
                        help="tiered tenants to replay the full stream "
                             "through for byte-identity")
    parser.add_argument("--artifact", default=DEFAULT_ARTIFACT,
                        help="trajectory JSON to append results to "
                             "('' disables)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run; fails on any identity "
                             "mismatch, a tenant ratio below 2x, a zero "
                             "spill count or a missing trajectory append")
    args = parser.parse_args(argv)

    if args.smoke:
        entry = run_memory(floors=1, rooms_per_floor=16, words_per_room=3,
                           seed=args.seed, algorithm=args.algorithm,
                           pool=4, repeat=1, warm_rows=8, matrix_budget=2,
                           budget_tenants=2, max_tenants=12,
                           identity_tenants=2)
    else:
        entry = run_memory(floors=args.floors,
                           rooms_per_floor=args.rooms_per_floor,
                           words_per_room=args.words_per_room,
                           seed=args.seed, algorithm=args.algorithm,
                           pool=args.pool, repeat=args.repeat,
                           warm_rows=args.warm_rows,
                           matrix_budget=args.matrix_budget,
                           budget_tenants=args.budget_tenants,
                           max_tenants=args.max_tenants,
                           identity_tenants=args.identity_tenants)
    print(format_memory_report(entry))
    if args.artifact:
        append_trajectory(args.artifact, entry)
        print(f"trajectory appended to {args.artifact}")
    ok = (entry["verified_identical"]
          and entry["tenant_ratio"] >= 2.0
          and entry["spill"]["spills"] > 0)
    if args.smoke:
        if not ok:
            print("memory smoke FAILED: "
                  f"identical={entry['verified_identical']} "
                  f"ratio={entry['tenant_ratio']:.1f} "
                  f"spills={entry['spill']['spills']}")
            return 1
        if not args.artifact:
            print("memory smoke FAILED: --smoke verifies the trajectory "
                  "append; do not pass --artifact ''")
            return 1
        print(f"memory smoke ok: {entry['tenants_tiered']} tiered vs "
              f"{entry['tenants_eager']} eager tenants "
              f"({entry['tenant_ratio']:.1f}x) in one budget, "
              f"{entry['spill']['spill_hits']} spilled-row faults, "
              f"answers byte-identical, trajectory at {args.artifact}")
        return 0
    # Identity and the >=2x tenant ratio gate the exit code; latencies
    # are recorded, never judged (shared CI runners are noisy).
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via wrapper
    import sys
    sys.exit(main())

"""Plain-text rendering of benchmark results (figure-style tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import SettingResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """A minimal fixed-width table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.3f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(results: List[SettingResult],
                  x_key: str,
                  metric: str = "time_ms",
                  algorithms: Sequence[str] = ()) -> str:
    """Render a parameter sweep as one row per x value (figure series).

    ``metric`` is one of ``time_ms``, ``memory_mb``, ``routes`` or
    ``homogeneous_rate``.
    """
    if not results:
        return "(no results)"
    algs = list(algorithms) or sorted(results[0].runs)
    headers = [x_key] + list(algs)
    rows = []
    for result in results:
        row: List = [result.setting.get(x_key, "?")]
        for alg in algs:
            run = result.runs.get(alg)
            if run is None:
                row.append("-")
                continue
            if metric == "time_ms":
                row.append(run.avg_time_ms)
            elif metric == "memory_mb":
                row.append(run.avg_memory_mb)
            elif metric == "routes":
                row.append(run.avg_routes)
            elif metric == "homogeneous_rate":
                row.append(run.avg_homogeneous_rate)
            else:
                raise ValueError(f"unknown metric {metric!r}")
        rows.append(row)
    return format_table(headers, rows)

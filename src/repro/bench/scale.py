"""Array-native core vs. the retained dict core on growing venues.

``repro.bench scale`` is the proving ground of the array-native hot
path: for each venue size it

1. generates a deterministic multi-floor synthetic mall
   (:mod:`repro.datasets.synth`),
2. builds two engines over the *same* venue — the production
   array-native core (CSR workspaces, flat δs2s, flat matrix rows,
   bitmask keywords) and the retained dict-of-dict reference core
   (:mod:`repro.space.baseline`),
3. replays one shuffled query stream through both sequentially,
   recording per-query latencies,
4. verifies the full result signatures are identical (routes, vias,
   distances, scores — the equivalence harness),
5. cold-starts a third engine from a **binary v2 snapshot**, replays
   the stream again, and verifies identity a third time, timing the
   v1-JSON vs. v2-binary snapshot load on the side,
6. replays the stream through engines pinned to each available
   compiled kernel backend (``numpy`` / ``native``), verifying
   byte-identity a fourth time, and micro-benchmarks the two kernel
   surfaces in isolation (endpoint lower-bound sweeps and full
   Dijkstra tree builds) per backend with an in-run byte-identity
   gate — the per-kernel speedup entries of the trajectory,
7. splits one untimed instrumented pass into relaxation vs.
   lower-bound vs. merge wall time (where does a query's time go?),
8. replays the stream once more with serve-style request tracing
   (:mod:`repro.obs` recorder + engine-stage probe every Nth query)
   against a bare twin engine and reports the qps overhead — the
   audit for the ≤2% tracing budget,
9. appends one entry per size — qps for all modes, the speedup over
   the dict core, per-kernel stage speedups, the stage split, the
   tracing overhead, p50/p95/p99 latencies and cold-start times — to
   the ``BENCH_throughput.json`` trajectory.

Run it from the shell::

    python -m repro.bench scale --floors 10
    python -m repro.bench scale --floors 2,6,10 --rooms-per-floor 48
    python -m repro.bench scale --smoke          # tiny CI self-check
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

import random

from repro.bench.throughput import (DEFAULT_ARTIFACT, _signature,
                                    append_trajectory, latency_percentiles)
from repro.core.engine import IKRQEngine, canonical_algorithm
from repro.obs import STAGE_ENGINE, EngineTrace, TraceRecorder
from repro.datasets.queries import QueryGenerator
from repro.datasets.synth import (SynthMallConfig, build_synth_mall,
                                  mall_stats, venue_diameter)
from repro.serve.snapshot import load_snapshot, save_snapshot
from repro.space.baseline import build_reference_engine, reference_context

#: Timed passes per engine.  The fastest pass counts, and competing
#: engines run their passes interleaved, so a scheduler hiccup on a
#: shared runner hits every core alike instead of skewing the ratio.
TIMED_PASSES = 3


def _one_pass(engine: IKRQEngine, stream, algorithm: str,
              context_for=None):
    """One sequential replay: ``(answers, seconds, latencies)``."""
    answers = []
    latencies: List[float] = []
    started = time.perf_counter()
    for query in stream:
        q_started = time.perf_counter()
        if context_for is None:
            answers.append(engine.search(query, algorithm))
        else:
            answers.append(engine.search(
                query, algorithm, context=context_for(engine, query)))
        latencies.append(time.perf_counter() - q_started)
    return answers, time.perf_counter() - started, latencies


def _timed_interleaved(contenders: List[Tuple[IKRQEngine, Optional[object]]],
                       stream,
                       algorithm: str,
                       passes: int = TIMED_PASSES) -> List[Tuple]:
    """Best-of-``passes`` replay for several engines, interleaved.

    ``contenders`` is a list of ``(engine, context_for)`` pairs; each
    pass runs every contender once before the next pass starts, so
    background load perturbs all of them symmetrically.  Returns one
    ``(answers, best seconds, best latencies)`` triple per contender.
    """
    best = [(None, float("inf"), []) for _ in contenders]
    for _ in range(max(1, passes)):
        for i, (engine, context_for) in enumerate(contenders):
            answers, total, latencies = _one_pass(
                engine, stream, algorithm, context_for)
            if total < best[i][1]:
                best[i] = (answers, total, latencies)
            else:
                best[i] = (answers, best[i][1], best[i][2])
    return best


def _cold_start_times(engine: IKRQEngine,
                      ) -> Tuple[Dict[str, float], IKRQEngine]:
    """Save v1/v2 snapshots and time a cold load of each."""
    with tempfile.TemporaryDirectory(prefix="repro-scale-") as tmp:
        json_path = os.path.join(tmp, "snapshot.json")
        binary_path = os.path.join(tmp, "snapshot.bin")
        save_snapshot(json_path, engine)
        save_snapshot(binary_path, engine, binary=True)
        sizes = {"json_bytes": os.path.getsize(json_path),
                 "binary_bytes": os.path.getsize(binary_path)}
        started = time.perf_counter()
        load_snapshot(json_path)
        json_s = time.perf_counter() - started
        started = time.perf_counter()
        loaded = load_snapshot(binary_path)
        binary_s = time.perf_counter() - started
    return {"json_load_s": json_s, "binary_load_s": binary_s,
            "speedup": json_s / binary_s if binary_s else float("inf"),
            **sizes}, loaded


def _stage_breakdown(engine: IKRQEngine, stream, algorithm: str) -> Dict:
    """Relaxation vs lower-bound vs merge wall-time split.

    One extra *untimed* instrumented replay.  "Relaxation" is the
    route-growing work: the graph's batch Dijkstra entry point
    (matrix rows, KoE* continuations, connect) plus the per-door
    ``extend_to_door`` extension ToE relaxes edges with.
    "Lower-bound" is the Rule 1-4 work: the context's
    ``lb_to_terminal`` / ``lb_from_start`` plus the skeleton's
    entry points underneath (a shared reentrancy guard keeps nested
    calls from double-counting).  Everything neither stage covers —
    stamp/heap bookkeeping, route merging, ranking — lands in
    ``merge_s``.  Instrumentation is instance-local and removed
    afterwards, so the timed passes are never perturbed; the
    per-call timer overhead slightly inflates the instrumented
    stages, which is the conservative direction for a "how much is
    left to accelerate" split.
    """
    graph = engine.graph
    skeleton = engine.skeleton
    acc = {"relaxation_s": 0.0, "lower_bound_s": 0.0}
    depth = [0]

    def _timed(fn, key):
        def wrapper(*args, **kwargs):
            if depth[0]:
                return fn(*args, **kwargs)
            depth[0] = 1
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                depth[0] = 0
                acc[key] += time.perf_counter() - started
        return wrapper

    lb_names = [name for name in
                ("lower_bound", "lower_bound_heads",
                 "lower_bound_via_partition",
                 "lower_bound_via_partition_heads",
                 "lower_bound_sweep_from", "lower_bound_sweep_to")
                if hasattr(skeleton, name)]
    originals = [(graph, "_run_dijkstra", graph._run_dijkstra)]
    originals += [(skeleton, name, getattr(skeleton, name))
                  for name in lb_names]
    originals.append((engine, "context", engine.context))
    graph._run_dijkstra = _timed(graph._run_dijkstra, "relaxation_s")
    for name in lb_names:
        setattr(skeleton, name, _timed(getattr(skeleton, name),
                                       "lower_bound_s"))
    orig_context = engine.context

    def instrumented_context(query, **kwargs):
        ctx = orig_context(query, **kwargs)
        ctx.extend_to_door = _timed(ctx.extend_to_door, "relaxation_s")
        ctx.lb_to_terminal = _timed(ctx.lb_to_terminal, "lower_bound_s")
        ctx.lb_from_start = _timed(ctx.lb_from_start, "lower_bound_s")
        return ctx

    engine.context = instrumented_context
    try:
        started = time.perf_counter()
        for query in stream:
            engine.search(query, algorithm)
        total = time.perf_counter() - started
    finally:
        for obj, name, fn in originals:
            try:
                delattr(obj, name)  # restore the class attribute
            except AttributeError:
                setattr(obj, name, fn)
    merge = max(0.0, total - acc["relaxation_s"] - acc["lower_bound_s"])
    out = {"total_s": total, "relaxation_s": acc["relaxation_s"],
           "lower_bound_s": acc["lower_bound_s"], "merge_s": merge}
    if total > 0.0:
        out["relaxation_pct"] = 100.0 * acc["relaxation_s"] / total
        out["lower_bound_pct"] = 100.0 * acc["lower_bound_s"] / total
        out["merge_pct"] = 100.0 * merge / total
    return out


#: Every Nth query of the traced overhead contender runs with the fine
#: engine-stage probe attached — the worker's behaviour under the
#: default 1% sampling plus forced/slow traces, rounded up to stay
#: conservative.
TRACE_FINE_EVERY = 20


def _tracing_overhead(space, kindex, stream, distinct, algorithm: str,
                      fine_every: int = TRACE_FINE_EVERY,
                      passes: int = TIMED_PASSES) -> Dict:
    """Serve-style tracing cost on sequential engine throughput.

    Replays the stream through two fresh warmed engines — one bare,
    one doing per-query what the shard worker does for every request
    (a :class:`TraceRecorder` engine span, an :class:`EngineTrace`,
    the stage-span graft and the finished trace document), with the
    fine stage probe attached every ``fine_every``-th query.  Passes
    are interleaved and best-of like the main replay, answers are
    signature-checked (tracing must only observe), and the qps delta
    is reported as ``overhead_pct`` — the number the ≤2% tracing
    budget in docs/observability.md is audited against.
    """
    plain = IKRQEngine(space, kindex, door_matrix_eager=False)
    traced = IKRQEngine(space, kindex, door_matrix_eager=False)
    for query in distinct:
        plain.search(query, algorithm)
        traced.search(query, algorithm)

    def _plain_pass():
        # Bare loop, not _one_pass: its per-query latency stopwatch
        # would pad the plain side and understate the overhead.
        answers = []
        started = time.perf_counter()
        for query in stream:
            answers.append(plain.search(query, algorithm))
        return answers, time.perf_counter() - started

    counter = [0]

    def _traced_pass():
        answers = []
        started = time.perf_counter()
        for query in stream:
            recorder = TraceRecorder()
            trace = EngineTrace(fine=counter[0] % fine_every == 0)
            counter[0] += 1
            with recorder.span(STAGE_ENGINE) as span:
                ctx = traced.context(query)
                if trace.fine:
                    ctx.attach_stage_probe(trace.stages)
                answers.append(traced.search(query, algorithm, context=ctx))
                engine_ms = recorder.elapsed_ms() - span["start_ms"]
                span["children"] = trace.stage_spans(span["start_ms"],
                                                     engine_ms)
                span["annotations"].update(trace.annotations)
            recorder.finish("ok")
        return answers, time.perf_counter() - started

    best_plain = best_traced = float("inf")
    plain_answers = traced_answers = None
    for _ in range(max(1, passes)):
        answers, seconds = _plain_pass()
        if seconds < best_plain:
            best_plain, plain_answers = seconds, answers
        answers, seconds = _traced_pass()
        if seconds < best_traced:
            best_traced, traced_answers = seconds, answers
    if _signature(traced_answers) != _signature(plain_answers):
        raise AssertionError(
            "tracing changed the answers — probes must only observe")
    n = len(stream)
    overhead = ((best_traced - best_plain) / best_plain * 100.0
                if best_plain else 0.0)
    return {
        "plain_qps": n / best_plain if best_plain else float("inf"),
        "traced_qps": n / best_traced if best_traced else float("inf"),
        "plain_seconds": best_plain,
        "traced_seconds": best_traced,
        "overhead_pct": overhead,
        "fine_every": fine_every,
        "verified_identical": True,
    }


#: Passes for the kernel-stage micro benchmark (best-of, interleaved).
KERNEL_PASSES = 3


def _kernel_stage(space, kindex, stream, sources_cap: int = 48) -> Dict:
    """Per-backend kernel-level sequential qps with in-run identity.

    Measures the two kernel surfaces in isolation, per backend:

    * ``lower-bound``: full endpoint sweeps (``lower_bound_sweep_from``
      / ``..._to``) for every distinct stream endpoint — the Rule 1-4
      work one query performs across its candidate doors;
    * ``relaxation``: full ``dijkstra_tree`` builds over a
      deterministic source sample — the matrix-row/batch-relaxation
      work.

    The ``python`` rows are the interpreted array core (no kernel
    attached).  Every faster backend's outputs are compared
    byte-for-byte against it in-run: sweep maps by exact float
    equality per door, trees by buffer bytes (``verified_identical``
    in the result; a mismatch raises).  Unavailable backends record
    their reason and are skipped — the graceful python-ward
    degradation the serve tier relies on.

    Each backend gets its own graph/skeleton pair (so per-backend
    kernel caches persist across passes) and the passes are
    *interleaved* across backends — like the end-to-end replay, so a
    machine-load swing hits every backend's pass, not one backend's
    whole block, and best-of-``KERNEL_PASSES`` compares like with
    like.
    """
    from repro.space.graph import DoorGraph
    from repro.space.kernels import available_backends, get_suite
    from repro.space.skeleton import SkeletonIndex

    endpoints = list(dict.fromkeys(
        p for query in stream for p in (query.ps, query.pt)))
    doors = sorted(space.doors)
    step = max(1, len(doors) // sources_cap)
    sources = doors[::step][:sources_cap]

    availability = available_backends()
    backends = {}
    harness = []
    for backend in ("python", "numpy", "native"):
        reason = availability.get(backend)
        if reason is not None:
            backends[backend] = {"available": False, "reason": reason}
            continue
        graph = DoorGraph(space)
        skeleton = SkeletonIndex(space)
        if backend != "python":
            suite = get_suite(backend)
            graph.set_kernel(suite)
            skeleton.set_kernel(suite)
        heads = [skeleton.heads(p) for p in endpoints]
        harness.append({"backend": backend, "graph": graph,
                        "skeleton": skeleton, "heads": heads,
                        "best_lb": float("inf"),
                        "best_relax": float("inf")})
    for _ in range(KERNEL_PASSES):
        for h in harness:
            skeleton, graph = h["skeleton"], h["graph"]
            started = time.perf_counter()
            sweeps = ([skeleton.lower_bound_sweep_from(ha)
                       for ha in h["heads"]]
                      + [skeleton.lower_bound_sweep_to(ha)
                         for ha in h["heads"]])
            h["best_lb"] = min(h["best_lb"],
                               time.perf_counter() - started)
            started = time.perf_counter()
            trees = [graph.dijkstra_tree(src) for src in sources]
            h["best_relax"] = min(h["best_relax"],
                                  time.perf_counter() - started)
            h["outputs"] = (sweeps, [
                (bytes(t.dist), bytes(t.pred), bytes(t.pred_via),
                 bytes(t.touched)) for t in trees])
    reference = None
    for h in harness:
        if reference is None:
            reference = h["outputs"]
        elif h["outputs"] != reference:
            raise AssertionError(
                f"kernel backend {h['backend']!r} output differs from "
                "the interpreted array core")
        lb_ops = 2 * len(endpoints)
        relax_ops = len(sources)
        best_lb, best_relax = h["best_lb"], h["best_relax"]
        backends[h["backend"]] = {
            "available": True,
            "lower_bound_qps": lb_ops / best_lb if best_lb else float("inf"),
            "relaxation_qps": (relax_ops / best_relax
                               if best_relax else float("inf")),
            "kernel_qps": ((lb_ops + relax_ops) / (best_lb + best_relax)
                           if best_lb + best_relax else float("inf")),
            "lower_bound_seconds": best_lb,
            "relaxation_seconds": best_relax,
        }
    base = backends.get("python", {})
    for name, entry in backends.items():
        if not entry.get("available") or name == "python":
            continue
        for key in ("lower_bound_qps", "relaxation_qps", "kernel_qps"):
            if base.get(key):
                entry[f"speedup_{key[:-4]}"] = entry[key] / base[key]
    best_name = max(
        (name for name, e in backends.items() if e.get("available")),
        key=lambda name: backends[name]["kernel_qps"])
    return {
        "backends": backends,
        "best_backend": best_name,
        "best_speedup": backends[best_name].get("speedup_kernel", 1.0),
        "lower_bound_ops": 2 * len(endpoints),
        "relaxation_sources": len(sources),
        "verified_identical": True,
    }


def build_scale_stream(engine: IKRQEngine,
                       pool: int = 16,
                       repeat: int = 2,
                       qw_size: int = 6,
                       seed: int = 7) -> List:
    """A paper-methodology traffic stream over a big venue.

    ``pool`` distinct instances are drawn with the Section V-A1 query
    generator (start/terminal δs2t at ~35% of the venue diameter,
    ``Δ = 1.8 · δs2t``, six keywords — the top of the paper's |QW|
    sweep — at i-word fraction 0.6) and the
    pool repeats ``repeat`` times in a deterministic shuffle — traffic
    that actually crosses floors and hunts keywords, unlike the tiny
    fig1 streams.
    """
    space = engine.space
    qgen = QueryGenerator(space, engine.kindex, graph=engine.graph,
                          seed=seed)
    s2t = max(venue_diameter(space) * 0.35, 1.0)
    workload = qgen.workload(s2t=s2t, eta=1.8, qw_size=qw_size, beta=0.6,
                             k=7, alpha=0.5, tau=0.2, instances=pool)
    distinct = list(workload.queries)
    stream = [distinct[i % len(distinct)]
              for i in range(len(distinct) * repeat)]
    random.Random(seed).shuffle(stream)
    return stream


def run_scale_size(floors: int,
                   rooms_per_floor: int = 48,
                   words_per_room: int = 8,
                   seed: int = 7,
                   algorithm: str = "ToE",
                   pool: int = 16,
                   repeat: int = 2,
                   qw_size: int = 6) -> Dict:
    """One venue size: build, replay, verify, measure."""
    algorithm = canonical_algorithm(algorithm)
    cfg = SynthMallConfig(floors=floors, rooms_per_floor=rooms_per_floor,
                          words_per_room=words_per_room, seed=seed)
    started = time.perf_counter()
    space, kindex = build_synth_mall(cfg)
    venue_build_s = time.perf_counter() - started

    started = time.perf_counter()
    engine = IKRQEngine(space, kindex, door_matrix_eager=False)
    index_build_s = time.perf_counter() - started
    reference = build_reference_engine(space, kindex)

    stream = build_scale_stream(engine, pool=pool, repeat=repeat,
                                qw_size=qw_size, seed=seed)
    delta = stream[0].delta if stream else 0.0
    # Warm both engines on every distinct query once: the timed region
    # then measures steady-state serving (engine-level pure caches
    # filled on both sides), not first-touch construction costs.
    distinct = list(dict.fromkeys(stream))
    for query in distinct:
        engine.search(query, algorithm)
        reference.search(query, algorithm,
                         context=reference_context(reference, query))

    timed = _timed_interleaved(
        [(engine, None), (reference, reference_context)],
        stream, algorithm)
    array_answers, array_s, array_lat = timed[0]
    dict_answers, dict_s, dict_lat = timed[1]
    if _signature(array_answers) != _signature(dict_answers):
        raise AssertionError(
            "array-native results differ from the dict reference core")

    cold_start, snapshot_engine = _cold_start_times(engine)
    for query in distinct:
        snapshot_engine.search(query, algorithm)
    snap_answers, snap_s, snap_lat = _timed_interleaved(
        [(snapshot_engine, None)], stream, algorithm)[0]
    if _signature(snap_answers) != _signature(array_answers):
        raise AssertionError(
            "v2-cold-started engine results differ from the live engine")

    n = len(stream)
    # End-to-end replay per kernel backend: same stream, same warm-up,
    # answers must match the interpreted array core byte-for-byte.
    from repro.space.kernels import available_backends
    availability = available_backends()
    kernel_end_to_end = {}
    for backend in ("numpy", "native"):
        reason = availability.get(backend)
        if reason is not None:
            kernel_end_to_end[backend] = {"available": False,
                                          "reason": reason}
            continue
        k_engine = IKRQEngine(space, kindex, door_matrix_eager=False,
                              kernel=backend)
        for query in distinct:
            k_engine.search(query, algorithm)
        k_answers, k_s, k_lat = _timed_interleaved(
            [(k_engine, None)], stream, algorithm)[0]
        if _signature(k_answers) != _signature(array_answers):
            raise AssertionError(
                f"kernel={backend} engine results differ from the "
                "interpreted array core")
        kernel_end_to_end[backend] = {
            "available": True,
            "qps": n / k_s if k_s else float("inf"),
            "seconds": k_s,
            "latency_ms": latency_percentiles(k_lat),
            "speedup_vs_array": ((n / k_s) / (n / array_s)
                                 if k_s and array_s else float("inf")),
        }
    kernel_stage = _kernel_stage(space, kindex, stream)
    # The split replays on a *fresh* engine: a warmed engine serves the
    # whole stream from matrix-row caches and every stage but merge
    # vanishes.  Cold, the pass shows where a new shard's time goes —
    # the relaxation/lower-bound shares the kernels attack.
    stage_breakdown = _stage_breakdown(
        IKRQEngine(space, kindex, door_matrix_eager=False), stream,
        algorithm)
    tracing = _tracing_overhead(space, kindex, stream, distinct, algorithm)
    result = {
        "mode": "scale",
        "venue": "synth",
        "algorithm": algorithm,
        "floors": floors,
        "rooms_per_floor": rooms_per_floor,
        "words_per_room": words_per_room,
        "delta": delta,
        "queries": n,
        "distinct_queries": pool,
        **mall_stats(space, kindex),
        "venue_build_seconds": venue_build_s,
        "index_build_seconds": index_build_s,
        "array_qps": n / array_s if array_s else float("inf"),
        "dict_qps": n / dict_s if dict_s else float("inf"),
        "snapshot_v2_qps": n / snap_s if snap_s else float("inf"),
        "array_seconds": array_s,
        "dict_seconds": dict_s,
        "snapshot_v2_seconds": snap_s,
        "latency_ms": {
            "array": latency_percentiles(array_lat),
            "dict": latency_percentiles(dict_lat),
            "snapshot_v2": latency_percentiles(snap_lat),
        },
        "cold_start": cold_start,
        "stage_breakdown": stage_breakdown,
        "tracing": tracing,
        "kernel_stage": kernel_stage,
        "kernel_end_to_end": kernel_end_to_end,
        "verified_identical": True,
    }
    result["speedup_vs_dict"] = (result["array_qps"] / result["dict_qps"]
                                 if result["dict_qps"] else float("inf"))
    return result


def _format_kernel_lines(result: Dict) -> List[str]:
    lines = []
    split = result.get("stage_breakdown")
    if split and split.get("total_s"):
        lines.append(
            f"  stage split: relaxation {split.get('relaxation_pct', 0):.1f}% "
            f"lower-bound {split.get('lower_bound_pct', 0):.1f}% "
            f"merge {split.get('merge_pct', 0):.1f}% "
            f"(of {split['total_s'] * 1000.0:.1f} ms/pass)")
    stage = result.get("kernel_stage")
    if stage:
        for key, label in (("lower_bound_qps", "kernel lb "),
                           ("relaxation_qps", "kernel sssp"),
                           ("kernel_qps", "kernel all ")):
            parts = []
            for name in ("python", "numpy", "native"):
                entry = stage["backends"].get(name, {})
                if not entry.get("available"):
                    parts.append(f"{name}=n/a")
                    continue
                text = f"{name}={entry[key]:.1f}/s"
                speedup = entry.get(f"speedup_{key[:-4]}")
                if speedup is not None:
                    text += f" ({speedup:.1f}x)"
                parts.append(text)
            lines.append(f"  {label}: " + "  ".join(parts))
        lines.append(
            f"  kernel best: {stage['best_backend']} "
            f"{stage['best_speedup']:.1f}x vs interpreted core "
            f"(bit-identical: {stage['verified_identical']})")
    tracing = result.get("tracing")
    if tracing:
        lines.append(
            f"  tracing    : {tracing['traced_qps']:.1f} q/s traced vs "
            f"{tracing['plain_qps']:.1f} q/s plain -> "
            f"{tracing['overhead_pct']:+.2f}% overhead "
            f"(fine probe every {tracing['fine_every']}th query, "
            f"identical: {tracing['verified_identical']})")
    e2e = result.get("kernel_end_to_end")
    if e2e:
        parts = []
        for name in ("numpy", "native"):
            entry = e2e.get(name, {})
            if not entry.get("available"):
                parts.append(f"{name}=n/a")
            else:
                parts.append(f"{name}={entry['qps']:.1f} q/s "
                             f"({entry['speedup_vs_array']:.2f}x)")
        lines.append("  e2e kernel : " + "  ".join(parts))
    return lines


def format_scale_report(result: Dict) -> str:
    lat = result["latency_ms"]["array"]
    cold = result["cold_start"]
    return "\n".join([
        f"floors={result['floors']} rooms/floor={result['rooms_per_floor']} "
        f"partitions={result['partitions']} doors={result['doors']} "
        f"algorithm={result['algorithm']} queries={result['queries']} "
        f"delta={result['delta']:.0f}m",
        f"  array core : {result['array_qps']:10.1f} q/s "
        f"({result['array_seconds'] * 1000.0:8.1f} ms)",
        f"  dict core  : {result['dict_qps']:10.1f} q/s "
        f"({result['dict_seconds'] * 1000.0:8.1f} ms)",
        f"  v2 cold    : {result['snapshot_v2_qps']:10.1f} q/s",
        f"  speedup    : {result['speedup_vs_dict']:10.2f}x   "
        f"results identical: {result['verified_identical']}",
        f"  latency ms : p50={lat['p50_ms']:.2f} p95={lat['p95_ms']:.2f} "
        f"p99={lat['p99_ms']:.2f}",
        f"  cold start : json={cold['json_load_s'] * 1000.0:.1f} ms "
        f"({cold['json_bytes']} B)  binary="
        f"{cold['binary_load_s'] * 1000.0:.1f} ms ({cold['binary_bytes']} B) "
        f"-> {cold['speedup']:.2f}x",
    ] + _format_kernel_lines(result))


def run_scale(floors: Sequence[int] = (10,),
              rooms_per_floor: int = 48,
              words_per_room: int = 8,
              seed: int = 7,
              algorithm: str = "ToE",
              pool: int = 16,
              repeat: int = 2,
              qw_size: int = 6,
              artifact: Optional[str] = DEFAULT_ARTIFACT) -> List[Dict]:
    """The full sweep: one entry per floor count, trajectory appended."""
    results = []
    for count in floors:
        result = run_scale_size(
            count, rooms_per_floor=rooms_per_floor,
            words_per_room=words_per_room, seed=seed, algorithm=algorithm,
            pool=pool, repeat=repeat, qw_size=qw_size)
        print(format_scale_report(result))
        if artifact:
            append_trajectory(artifact, result)
            print(f"trajectory appended to {artifact}")
        results.append(result)
    return results


def _parse_floors(text: str) -> List[int]:
    try:
        floors = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"floors must be a comma-separated list of ints, got {text!r}")
    if not floors or any(f < 1 for f in floors):
        raise argparse.ArgumentTypeError("floor counts must be >= 1")
    return floors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the array-native core against the retained "
                    "dict core on growing synthetic malls.")
    parser.add_argument("--floors", type=_parse_floors, default=[10],
                        help="comma-separated floor counts (default 10)")
    parser.add_argument("--rooms-per-floor", type=int, default=48)
    parser.add_argument("--words-per-room", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--algorithm", default="ToE")
    parser.add_argument("--pool", type=int, default=16,
                        help="distinct queries in the traffic pool")
    parser.add_argument("--repeat", type=int, default=2,
                        help="how often the pool repeats in the stream")
    parser.add_argument("--qw-size", type=int, default=6,
                        help="keywords per query (default 6, the top "
                             "of the paper's |QW| sweep)")
    parser.add_argument("--artifact", default=None,
                        help="trajectory JSON to append results to "
                             f"(default {DEFAULT_ARTIFACT}, or "
                             "bench_scale_smoke.json under --smoke; "
                             "'' disables)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny CI run: 2 floors, small pool; fails on "
                             "identity mismatch or a missing trajectory "
                             "append")
    args = parser.parse_args(argv)
    if args.smoke:
        # The smoke exists to prove the append happens, so it writes a
        # scratch artifact by default (never the tracked trajectory)
        # and refuses the '' disable.
        if args.artifact == "":
            parser.error("--smoke verifies the trajectory append and "
                         "needs an artifact; do not pass --artifact ''")
        artifact = args.artifact or "bench_scale_smoke.json"
        results = run_scale(
            floors=[2], rooms_per_floor=16, words_per_room=4,
            seed=args.seed, algorithm=args.algorithm,
            pool=6, repeat=2, qw_size=3, artifact=artifact)
        if not all(r.get("verified_identical") for r in results):
            print("scale smoke FAILED: results not identical")
            return 1
        import json
        from pathlib import Path
        try:
            doc = json.loads(Path(artifact).read_text())
            entries = [e for e in doc.get("entries", [])
                       if e.get("mode") == "scale"]
        except (OSError, ValueError):
            entries = []
        if not entries:
            print(f"scale smoke FAILED: no scale entry appended to "
                  f"{artifact}")
            return 1
        print(f"scale smoke ok: {len(results)} size(s) verified identical "
              f"across array/dict/v2-snapshot cores, trajectory at "
              f"{artifact}")
        return 0
    artifact = DEFAULT_ARTIFACT if args.artifact is None else args.artifact
    run_scale(floors=args.floors, rooms_per_floor=args.rooms_per_floor,
              words_per_room=args.words_per_room, seed=args.seed,
              algorithm=args.algorithm, pool=args.pool, repeat=args.repeat,
              qw_size=args.qw_size, artifact=artifact)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via wrapper
    import sys
    sys.exit(main())

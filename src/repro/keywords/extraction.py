"""Keyword extraction: RAKE phrases + TF-IDF selection (Section V-A1).

The paper builds its t-word vocabulary by feeding crawled shop
documents through the RAKE algorithm (Rose et al., 2010) and keeping,
per i-word, up to 60 extracted keywords with the highest TF-IDF
values.  This module reimplements that pipeline from scratch:

* :class:`RakeExtractor` — Rapid Automatic Keyword Extraction: split
  text into candidate phrases at stopwords/punctuation, score each
  word by ``degree / frequency`` over the co-occurrence graph, score a
  phrase as the sum of its word scores.
* :class:`TfIdfSelector` — corpus-level TF-IDF over the extracted
  keywords, used to rank and cap each document's keywords.
* :func:`extract_twords` — the composed pipeline: documents in,
  per-i-word t-word lists out.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.keywords.stopwords import STOPWORDS

_SENTENCE_SPLIT = re.compile(r"[.!?,;:\t\n\r\f\"'()\[\]{}<>|/\\]+")
_WORD_SPLIT = re.compile(r"[^a-zA-Z0-9_+\-]+")
_NUMERIC = re.compile(r"^\d+$")


@dataclass(frozen=True)
class ScoredPhrase:
    """A candidate keyword phrase with its RAKE score."""

    phrase: str
    score: float

    @property
    def words(self) -> Tuple[str, ...]:
        return tuple(self.phrase.split())


class RakeExtractor:
    """Rapid Automatic Keyword Extraction over a single document.

    Parameters mirror the knobs of the original algorithm:

    Args:
        stopwords: Phrase delimiters (defaults to the embedded list).
        min_word_len: Words shorter than this never join a phrase.
        max_phrase_words: Candidate phrases longer than this are
            discarded (long phrases are rarely useful as t-words).
    """

    def __init__(self,
                 stopwords: Iterable[str] = STOPWORDS,
                 min_word_len: int = 2,
                 max_phrase_words: int = 3) -> None:
        self._stopwords = frozenset(w.lower() for w in stopwords)
        self._min_word_len = min_word_len
        self._max_phrase_words = max_phrase_words

    # ------------------------------------------------------------------
    def candidate_phrases(self, text: str) -> List[Tuple[str, ...]]:
        """Split ``text`` into candidate phrases (tuples of words)."""
        phrases: List[Tuple[str, ...]] = []
        for fragment in _SENTENCE_SPLIT.split(text.lower()):
            current: List[str] = []
            for raw in _WORD_SPLIT.split(fragment):
                word = raw.strip("-+_")
                usable = (len(word) >= self._min_word_len
                          and word not in self._stopwords
                          and not _NUMERIC.match(word))
                if usable:
                    current.append(word)
                elif current:
                    phrases.append(tuple(current))
                    current = []
            if current:
                phrases.append(tuple(current))
        return [p for p in phrases if len(p) <= self._max_phrase_words]

    def word_scores(self, phrases: Sequence[Tuple[str, ...]]) -> Dict[str, float]:
        """Per-word ``degree / frequency`` scores (RAKE's metric)."""
        freq: Counter = Counter()
        degree: Counter = Counter()
        for phrase in phrases:
            extra_degree = len(phrase) - 1
            for word in phrase:
                freq[word] += 1
                degree[word] += extra_degree
        return {
            word: (degree[word] + freq[word]) / freq[word]
            for word in freq
        }

    def extract(self, text: str, top_n: int = 0) -> List[ScoredPhrase]:
        """Ranked candidate phrases of ``text`` (all when ``top_n=0``)."""
        phrases = self.candidate_phrases(text)
        if not phrases:
            return []
        scores = self.word_scores(phrases)
        seen: Dict[str, float] = {}
        for phrase in phrases:
            key = " ".join(phrase)
            score = sum(scores[w] for w in phrase)
            if score > seen.get(key, -1.0):
                seen[key] = score
        ranked = sorted(
            (ScoredPhrase(k, v) for k, v in seen.items()),
            key=lambda sp: (-sp.score, sp.phrase))
        if top_n > 0:
            ranked = ranked[:top_n]
        return ranked

    def extract_words(self, text: str) -> List[str]:
        """Single-word keyword candidates, best-scored first.

        Phrases are broken into their member words because t-words in
        the paper's mappings are single tokens (``coffee``, ``latte``).
        """
        phrases = self.candidate_phrases(text)
        if not phrases:
            return []
        scores = self.word_scores(phrases)
        return [w for w, _ in sorted(scores.items(),
                                     key=lambda kv: (-kv[1], kv[0]))]


class TfIdfSelector:
    """TF-IDF ranking of extracted keywords across a document corpus.

    Fit on the keyword lists of all documents, then used to pick each
    document's ``max_keywords`` best keywords — exactly how the paper
    caps t-words at 60 per i-word.
    """

    def __init__(self, max_keywords: int = 60, max_df: float = 1.0) -> None:
        """``max_df`` drops words appearing in more than that fraction
        of documents (boilerplate such as "store" or "offers" carries
        no thematic signal and would otherwise make every pair of
        brands look similar)."""
        self._max_keywords = max_keywords
        self._max_df = max_df
        self._df: Counter = Counter()
        self._num_docs = 0

    def fit(self, documents_keywords: Sequence[Sequence[str]]) -> "TfIdfSelector":
        """Record document frequencies from per-document keyword lists."""
        self._num_docs = len(documents_keywords)
        self._df = Counter()
        for keywords in documents_keywords:
            for word in set(keywords):
                self._df[word] += 1
        return self

    def idf(self, word: str) -> float:
        """Smoothed inverse document frequency."""
        if self._num_docs == 0:
            return 0.0
        return math.log((1 + self._num_docs) / (1 + self._df[word])) + 1.0

    def select(self, keywords: Sequence[str]) -> List[str]:
        """The top ``max_keywords`` keywords of one document by TF-IDF."""
        if not keywords:
            return []
        tf = Counter(keywords)
        total = sum(tf.values())
        df_cap = self._max_df * max(self._num_docs, 1)
        scored = sorted(
            ((tf[w] / total * self.idf(w), w) for w in tf
             if self._df[w] <= df_cap),
            key=lambda sw: (-sw[0], sw[1]))
        return [w for _, w in scored[:self._max_keywords]]


def extract_twords(documents: Mapping[str, str],
                   max_twords: int = 60,
                   extractor: RakeExtractor = None,
                   max_df: float = 1.0) -> Dict[str, List[str]]:
    """Run the full RAKE + TF-IDF pipeline over an i-word → text corpus.

    Args:
        documents: Mapping from i-word (brand name) to the concatenated
            description documents for that brand.
        max_twords: Per-i-word keyword cap (the paper uses 60).
        extractor: Optional preconfigured :class:`RakeExtractor`.

    Returns:
        Mapping from i-word to its selected t-word list.  I-words whose
        documents yield no keywords are omitted, matching the paper
        (only 1120 of 1225 crawled brands yielded keywords).
    """
    extractor = extractor or RakeExtractor()
    per_doc: Dict[str, List[str]] = {}
    for iword, text in documents.items():
        words = extractor.extract_words(text)
        if words:
            per_doc[iword] = words
    selector = TfIdfSelector(max_keywords=max_twords, max_df=max_df)
    selector.fit(list(per_doc.values()))
    selected = {
        iword: selector.select(words)
        for iword, words in per_doc.items()
    }
    return {iword: words for iword, words in selected.items() if words}

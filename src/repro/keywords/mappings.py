"""The four keyword mappings P2I, I2P, I2T, T2I (paper Section III-A).

The mappings use i-words as the pivot between partitions and t-words:

* ``P2I`` (many-to-one): partition → its single i-word,
* ``I2P`` (one-to-many): i-word → the partitions it identifies,
* ``I2T`` (many-to-many): i-word → its relevant t-words,
* ``T2I`` (many-to-many): t-word → the i-words it describes.

:class:`KeywordIndex` maintains all four consistently and derives the
partition words ``PW(v) = {P2I(v), I2T(P2I(v))}`` used for route-word
and relevance computation.  The paper keeps these mappings in main
memory (≈4 MB for the synthetic corpus); we do the same.

Both vocabularies are additionally *interned* to dense integer ids in
first-seen order, and every ``I2T`` feature set is mirrored as a
Python-int **bitmask** over t-word ids.  Set algebra on feature sets —
the inner loop of the candidate i-word conversion (Definition 4) and
of route-relevance evaluation — then becomes ``&``/``|`` plus
``int.bit_count()`` on machine words, which is both faster and far
smaller than frozensets of strings.  The masks are pure derived state:
every mask-based computation returns exactly what the set-based
algebra would (``tests/test_array_native.py`` pins this against the
retained reference implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.keywords.vocabulary import Vocabulary, normalize_word


@dataclass(frozen=True)
class PartitionWords:
    """``PW(v)``: the i-word of a partition plus that i-word's t-words.

    ``iword`` is ``None`` for partitions with no semantic name (e.g.
    hallway cells); such partitions contribute nothing to route words.
    """

    iword: Optional[str]
    twords: FrozenSet[str]

    @property
    def wi(self) -> FrozenSet[str]:
        """The i-word component as a (possibly empty) set.

        Mirrors the paper's ``PW(v).wi`` notation, which is unioned
        across partitions when computing route words.
        """
        if self.iword is None:
            return frozenset()
        return frozenset({self.iword})


_EMPTY = frozenset()


class KeywordIndex:
    """Consistent container for the four keyword mappings.

    Construction enforces the paper's cardinalities: a partition maps
    to at most one i-word (P2I is many-to-one), while I2T/T2I are
    unrestricted many-to-many.  The index also owns the
    :class:`~repro.keywords.vocabulary.Vocabulary` so that adding an
    association keeps ``Wi`` and ``Wt`` disjoint.
    """

    def __init__(self, vocabulary: Optional[Vocabulary] = None) -> None:
        self._vocab = vocabulary or Vocabulary()
        self._p2i: Dict[int, str] = {}
        self._i2p: Dict[str, Set[int]] = {}
        self._i2t: Dict[str, Set[str]] = {}
        self._t2i: Dict[str, Set[str]] = {}
        self._pw_cache: Dict[int, PartitionWords] = {}
        # Interning state: dense ids in first-seen order plus the
        # bitmask mirror of every I2T feature set (see module docs).
        self._iword_ids: Dict[str, int] = {}
        self._iword_names: list = []
        self._tword_ids: Dict[str, int] = {}
        self._i2t_mask: Dict[str, int] = {}
        self._iword_entries_cache: Optional[list] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def assign_iword(self, pid: int, iword: str) -> str:
        """Bind partition ``pid`` to identity word ``iword``.

        Re-assigning a partition to a different i-word is an error —
        P2I is a function.
        """
        w = self._vocab.add_iword(iword)
        existing = self._p2i.get(pid)
        if existing is not None and existing != w:
            raise ValueError(
                f"partition {pid} already identified by {existing!r}")
        self._p2i[pid] = w
        self._i2p.setdefault(w, set()).add(pid)
        self._i2t.setdefault(w, set())
        self._intern_iword(w)
        self._pw_cache.pop(pid, None)
        return w

    def _intern_iword(self, w: str) -> int:
        wid = self._iword_ids.get(w)
        if wid is None:
            wid = len(self._iword_names)
            self._iword_ids[w] = wid
            self._iword_names.append(w)
            self._iword_entries_cache = None
        return wid

    def _intern_tword(self, w: str) -> int:
        wid = self._tword_ids.get(w)
        if wid is None:
            wid = len(self._tword_ids)
            self._tword_ids[w] = wid
        return wid

    def add_tword(self, iword: str, tword: str) -> Optional[str]:
        """Associate thematic word ``tword`` with i-word ``iword``.

        Returns the normalised t-word, or ``None`` when the word is
        itself an i-word (i-words are excluded from ``Wt``).
        """
        wi = normalize_word(iword)
        if wi not in self._i2p and wi not in self._i2t:
            # Allow declaring t-words for an i-word before any
            # partition uses it (corpus loading order independence).
            self._vocab.add_iword(wi)
            self._i2t.setdefault(wi, set())
        self._intern_iword(wi)
        wt = self._vocab.add_tword(tword)
        if not self._vocab.is_tword(wt):
            return None
        self._i2t.setdefault(wi, set()).add(wt)
        self._t2i.setdefault(wt, set()).add(wi)
        self._i2t_mask[wi] = self._i2t_mask.get(wi, 0) | (
            1 << self._intern_tword(wt))
        self._iword_entries_cache = None
        self._invalidate_iword(wi)
        return wt

    def add_twords(self, iword: str, twords: Iterable[str]) -> None:
        for tword in twords:
            self.add_tword(iword, tword)

    def _invalidate_iword(self, wi: str) -> None:
        for pid in self._i2p.get(wi, ()):
            self._pw_cache.pop(pid, None)

    # ------------------------------------------------------------------
    # The four mappings
    # ------------------------------------------------------------------
    def p2i(self, pid: int) -> Optional[str]:
        """``P2I(v)``: the i-word identifying partition ``pid``."""
        return self._p2i.get(pid)

    def i2p(self, iword: str) -> FrozenSet[int]:
        """``I2P(wi)``: partitions identified by ``iword``."""
        return frozenset(self._i2p.get(normalize_word(iword), _EMPTY))

    def i2t(self, iword: str) -> FrozenSet[str]:
        """``I2T(wi)``: t-words relevant to ``iword``."""
        return frozenset(self._i2t.get(normalize_word(iword), _EMPTY))

    def t2i(self, tword: str) -> FrozenSet[str]:
        """``T2I(wt)``: i-words described by ``tword``."""
        return frozenset(self._t2i.get(normalize_word(tword), _EMPTY))

    def i2p_many(self, iwords: Iterable[str]) -> FrozenSet[int]:
        """Union of ``I2P`` over a set of i-words."""
        pids: Set[int] = set()
        for wi in iwords:
            pids |= self._i2p.get(normalize_word(wi), _EMPTY)
        return frozenset(pids)

    # ------------------------------------------------------------------
    # Interned ids and bitmasks
    # ------------------------------------------------------------------
    def iword_id(self, iword: str) -> Optional[int]:
        """The dense id of an i-word (``None`` when unknown)."""
        return self._iword_ids.get(normalize_word(iword))

    def iword_name(self, wid: int) -> str:
        """The i-word carrying dense id ``wid``."""
        return self._iword_names[wid]

    @property
    def num_interned_iwords(self) -> int:
        return len(self._iword_names)

    def iword_mask(self, iwords: Iterable[str]) -> int:
        """Bitmask over i-word ids covering the known words of a set."""
        ids = self._iword_ids
        mask = 0
        for wi in iwords:
            wid = ids.get(wi)
            if wid is not None:
                mask |= 1 << wid
        return mask

    def i2t_mask(self, iword: str) -> int:
        """``I2T(wi)`` as a bitmask over interned t-word ids."""
        return self._i2t_mask.get(normalize_word(iword), 0)

    def iword_entries(self) -> list:
        """``(iword, I2T bitmask)`` pairs sorted by i-word (cached).

        The iteration backbone of the candidate i-word conversion:
        one pass over this list with ``&``/``|`` replaces the per-word
        frozenset algebra of the reference implementation.
        """
        entries = self._iword_entries_cache
        if entries is None:
            mask = self._i2t_mask
            entries = [(wi, mask.get(wi, 0))
                       for wi in sorted(self._iword_names)]
            self._iword_entries_cache = entries
        return entries

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def partition_words(self, pid: int) -> PartitionWords:
        """``PW(v)`` for partition ``pid`` (cached)."""
        pw = self._pw_cache.get(pid)
        if pw is None:
            wi = self._p2i.get(pid)
            twords = frozenset(self._i2t.get(wi, _EMPTY)) if wi else _EMPTY
            pw = PartitionWords(wi, twords)
            self._pw_cache[pid] = pw
        return pw

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocab

    @property
    def iwords(self) -> Set[str]:
        """All i-words known to the index."""
        return set(self._i2p) | set(self._i2t)

    def labelled_partitions(self) -> Set[int]:
        """Partitions that carry an i-word."""
        return set(self._p2i)

    def stats(self) -> Dict[str, float]:
        """Corpus statistics matching those the paper reports."""
        twords_per_iword = [len(ts) for ts in self._i2t.values()]
        n_with = sum(1 for n in twords_per_iword if n > 0)
        return {
            "num_iwords": len(self.iwords),
            "num_twords": self._vocab.num_twords,
            "num_labelled_partitions": len(self._p2i),
            "iwords_with_twords": n_with,
            "avg_twords_per_iword": (
                sum(twords_per_iword) / len(twords_per_iword)
                if twords_per_iword else 0.0),
            "max_twords_per_iword": max(twords_per_iword, default=0),
        }

    def estimated_bytes(self) -> int:
        """Rough in-memory footprint of the mappings."""
        total = 0
        for wi, pids in self._i2p.items():
            total += len(wi) + 48 * len(pids)
        for wi, ts in self._i2t.items():
            total += len(wi) + sum(len(t) + 48 for t in ts)
        for wt, ws in self._t2i.items():
            total += len(wt) + sum(len(w) + 48 for w in ws)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (f"KeywordIndex({int(s['num_iwords'])} i-words, "
                f"{int(s['num_twords'])} t-words, "
                f"{int(s['num_labelled_partitions'])} partitions)")

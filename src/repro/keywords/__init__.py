"""Indoor keyword organisation (paper Section III).

The package implements the paper's two-level keyword scheme:

* :class:`Vocabulary` — disjoint identity-word (i-word) and thematic-
  word (t-word) sets,
* :class:`KeywordIndex` — the four bi-directional mappings P2I (n:1),
  I2P (1:n), I2T (m:n) and T2I (n:m) plus partition words ``PW(v)``,
* :func:`candidate_iword_set` / :class:`QueryKeywords` — candidate
  i-word sets ``κ(wQ)`` with direct and Jaccard-scored indirect
  matching (Definition 4),
* :mod:`repro.keywords.extraction` — the RAKE keyword extractor and
  TF-IDF selection used to harvest t-words from shop documents
  (Section V-A1).
"""

from repro.keywords.vocabulary import Vocabulary
from repro.keywords.mappings import KeywordIndex, PartitionWords
from repro.keywords.matching import (
    CandidateEntry,
    QueryKeywords,
    candidate_iword_set,
)
from repro.keywords.extraction import (
    RakeExtractor,
    TfIdfSelector,
    extract_twords,
)

__all__ = [
    "CandidateEntry",
    "KeywordIndex",
    "PartitionWords",
    "QueryKeywords",
    "RakeExtractor",
    "TfIdfSelector",
    "Vocabulary",
    "candidate_iword_set",
    "extract_twords",
]

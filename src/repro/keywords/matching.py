"""Candidate i-word sets and query-keyword preprocessing (Definition 4).

A query keyword ``wQ`` is converted into a candidate i-word set
``κ(wQ)``:

* ``wQ`` is an i-word — ``κ(wQ) = {(wQ, 1)}``,
* ``wQ`` is a t-word — every *direct* matching i-word (``T2I(wQ)``)
  enters with similarity 1; every *indirect* matching i-word ``w''``
  whose t-word feature set overlaps the union feature set of the
  direct matches enters with Jaccard similarity

  .. math::

     s(w'') = \\frac{|I2T(w'') \\cap U|}{|I2T(w'') \\cup U|},
     \\qquad U = \\bigcup_{w \\in T2I(wQ)} I2T(w).

Entries below the threshold ``τ`` are dropped ("to avoid long tails").

:class:`QueryKeywords` bundles the converted list ``K(QW)`` with the
inverted structures the search algorithms need to update keyword
relevance incrementally: for every candidate i-word, the list of
``(query position, similarity)`` pairs it contributes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.keywords.mappings import KeywordIndex
from repro.keywords.vocabulary import normalize_word


@dataclass(frozen=True)
class CandidateEntry:
    """One ``(wi, s)`` pair of a matching i-word and its similarity."""

    iword: str
    similarity: float
    direct: bool

    def __iter__(self):
        # Allows ``wi, s = entry`` unpacking in user code and tests.
        yield self.iword
        yield self.similarity


def candidate_iword_set(index: KeywordIndex,
                        word: str,
                        tau: float = 0.2) -> List[CandidateEntry]:
    """Compute ``κ(wQ)`` for one query keyword.

    Unknown words (neither i-word nor t-word) yield an empty set — the
    query keyword can then never be covered by any route.
    Entries are sorted by descending similarity, direct matches first.

    The Jaccard similarities of indirect matches are evaluated over
    the interned t-word *bitmasks* of :class:`KeywordIndex`:
    ``|I2T(w'') ∩ U|`` / ``|I2T(w'') ∪ U|`` become ``&`` / ``|`` plus
    ``bit_count()`` over one precomputed ``(iword, mask)`` list —
    numerically identical to the frozenset algebra (both count the
    same elements) at a fraction of the cost on large vocabularies.
    """
    w = normalize_word(word)
    vocab = index.vocabulary
    if vocab.is_iword(w):
        return [CandidateEntry(w, 1.0, True)]
    if not vocab.is_tword(w):
        return []
    direct = index.t2i(w)
    if not direct:
        return []
    union_mask = 0
    for wi in direct:
        union_mask |= index.i2t_mask(wi)
    entries = [CandidateEntry(wi, 1.0, True) for wi in sorted(direct)]
    for wi, features in index.iword_entries():
        if not features or wi in direct:
            continue
        inter = (features & union_mask).bit_count()
        if inter == 0:
            continue
        union = (features | union_mask).bit_count()
        score = inter / union
        if score > tau:
            entries.append(CandidateEntry(wi, score, False))
    entries.sort(key=lambda e: (-e.similarity, not e.direct, e.iword))
    return entries


class QueryKeywords:
    """The converted query keyword list ``K(QW)`` plus search indexes.

    Attributes:
        words: The normalised query keywords, in query order.
        candidates: ``candidates[i]`` is ``κ(words[i])``.
        tau: The similarity threshold used for indirect matches.
    """

    #: The κ conversion in use — a hook so the retained dict-based
    #: reference core (``repro.space.baseline``) can swap in the
    #: set-algebra implementation while sharing everything else.
    _candidates = staticmethod(candidate_iword_set)

    #: Whether query contexts may carry route-word *bitmasks* on the
    #: routes they build and merge words bitwise (see
    #: :attr:`wid_hits`).  The reference core overrides this to keep
    #: measuring the frozenset algebra; either path yields identical
    #: words and similarities.
    use_route_masks = True

    def __init__(self,
                 index: KeywordIndex,
                 words: Sequence[str],
                 tau: float = 0.2) -> None:
        if not words:
            raise ValueError("query keyword list QW must not be empty")
        self.index = index
        self.words: List[str] = [normalize_word(w) for w in words]
        self.tau = tau
        self.candidates: List[List[CandidateEntry]] = [
            self._candidates(index, w, tau) for w in self.words]

        #: ``|QW| + 1``: relevance when all words match with sim 1.
        #: A plain attribute — it sits on the ranking-score hot path.
        self.max_relevance: float = len(self.words) + 1.0

        # Inverted index: candidate i-word -> [(query position, sim)].
        self._iword_hits: Dict[str, List[Tuple[int, float]]] = {}
        for qi, entries in enumerate(self.candidates):
            for entry in entries:
                self._iword_hits.setdefault(entry.iword, []).append(
                    (qi, entry.similarity))

        #: The same inverted index keyed by interned i-word id — the
        #: lookup behind mask-carried route-word merges (a route's new
        #: words arrive as set bits, not strings, so the hot path
        #: skips re-interning entirely).  Words the index cannot
        #: intern simply have no entry; the ``_mask_exact`` flag below
        #: already disables the mask path for such vocabularies.
        self.wid_hits: Dict[int, List[Tuple[int, float]]] = {}
        for iword, hits in self._iword_hits.items():
            wid = index.iword_id(iword)
            if wid is not None:
                self.wid_hits[wid] = hits

        # Bitmask mirror: per query position, the candidate i-word
        # masks grouped by similarity in descending order — the best
        # similarity a route-word mask achieves at a position is the
        # first group it intersects.  Exact whenever every candidate
        # i-word is interned (always, for indexes built through
        # KeywordIndex; the flag guards exotic hand-built vocabularies).
        self._mask_exact = True
        self._sim_groups: List[List[Tuple[float, int]]] = []
        for entries in self.candidates:
            groups: Dict[float, int] = {}
            for entry in entries:
                wid = index.iword_id(entry.iword)
                if wid is None:
                    self._mask_exact = False
                    continue
                groups[entry.similarity] = (
                    groups.get(entry.similarity, 0) | (1 << wid))
            self._sim_groups.append(
                sorted(groups.items(), key=lambda g: -g[0]))

        #: ``Wci``: all candidate i-words across the query (Alg. 1 line 2).
        self.all_candidate_iwords: FrozenSet[str] = frozenset(self._iword_hits)

        #: Key partitions covering at least one candidate i-word
        #: (before the start/terminal adjustment of Alg. 1 line 3).
        self.keyword_partitions: FrozenSet[int] = index.i2p_many(
            self.all_candidate_iwords)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.words)

    def candidate_set(self, position: int) -> List[CandidateEntry]:
        """``κ(QW[position])``."""
        return self.candidates[position]

    def candidate_iwords(self, position: int) -> Set[str]:
        """``κ(QW[position]).Wi``."""
        return {e.iword for e in self.candidates[position]}

    def hits_for_iword(self, iword: str) -> List[Tuple[int, float]]:
        """``(query position, similarity)`` pairs i-word contributes to."""
        return self._iword_hits.get(iword, [])

    def partitions_for_word(self, position: int) -> FrozenSet[int]:
        """Key partitions relevant to query word ``position``
        (``I2P(κ(wQ).Wi)`` in Alg. 6 line 7)."""
        return self.index.i2p_many(self.candidate_iwords(position))

    def relevance_from_sims(self, sims: Sequence[float]) -> float:
        """Keyword relevance ``ρ`` from per-word best similarities.

        ``sims[i]`` is the maximum similarity of query word ``i``'s
        matching i-words on the route (0 when uncovered).  Implements
        Definition 6: covered count plus the mean best similarity.
        """
        covered = sum(1 for s in sims if s > 0.0)
        if covered == 0:
            return 0.0
        return covered + sum(sims) / covered

    def relevance_of_iword_set(self, iwords: Iterable[str]) -> float:
        """Keyword relevance of a plain route-word set (Definition 6).

        Routed through :meth:`relevance_of_iword_mask`: the word set
        collapses to one bitmask and each position's best similarity
        is the first (highest) similarity group the mask intersects —
        bitwise ops in place of the per-word hit-list scans.
        """
        if not self._mask_exact:
            sims = [0.0] * len(self.words)
            for wi in iwords:
                for qi, s in self.hits_for_iword(wi):
                    if s > sims[qi]:
                        sims[qi] = s
            return self.relevance_from_sims(sims)
        return self.relevance_of_iword_mask(self.index.iword_mask(iwords))

    def relevance_of_iword_mask(self, mask: int) -> float:
        """Keyword relevance of a route-word set given as an i-word
        bitmask (see :meth:`KeywordIndex.iword_mask`)."""
        covered = 0
        total = 0.0
        for groups in self._sim_groups:
            for s, gmask in groups:
                if gmask & mask:
                    covered += 1
                    total += s
                    break
        if covered == 0:
            return 0.0
        return covered + total / covered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryKeywords({self.words!r}, tau={self.tau})"

"""Candidate i-word sets and query-keyword preprocessing (Definition 4).

A query keyword ``wQ`` is converted into a candidate i-word set
``κ(wQ)``:

* ``wQ`` is an i-word — ``κ(wQ) = {(wQ, 1)}``,
* ``wQ`` is a t-word — every *direct* matching i-word (``T2I(wQ)``)
  enters with similarity 1; every *indirect* matching i-word ``w''``
  whose t-word feature set overlaps the union feature set of the
  direct matches enters with Jaccard similarity

  .. math::

     s(w'') = \\frac{|I2T(w'') \\cap U|}{|I2T(w'') \\cup U|},
     \\qquad U = \\bigcup_{w \\in T2I(wQ)} I2T(w).

Entries below the threshold ``τ`` are dropped ("to avoid long tails").

:class:`QueryKeywords` bundles the converted list ``K(QW)`` with the
inverted structures the search algorithms need to update keyword
relevance incrementally: for every candidate i-word, the list of
``(query position, similarity)`` pairs it contributes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.keywords.mappings import KeywordIndex
from repro.keywords.vocabulary import normalize_word


@dataclass(frozen=True)
class CandidateEntry:
    """One ``(wi, s)`` pair of a matching i-word and its similarity."""

    iword: str
    similarity: float
    direct: bool

    def __iter__(self):
        # Allows ``wi, s = entry`` unpacking in user code and tests.
        yield self.iword
        yield self.similarity


def candidate_iword_set(index: KeywordIndex,
                        word: str,
                        tau: float = 0.2) -> List[CandidateEntry]:
    """Compute ``κ(wQ)`` for one query keyword.

    Unknown words (neither i-word nor t-word) yield an empty set — the
    query keyword can then never be covered by any route.
    Entries are sorted by descending similarity, direct matches first.
    """
    w = normalize_word(word)
    vocab = index.vocabulary
    if vocab.is_iword(w):
        return [CandidateEntry(w, 1.0, True)]
    if not vocab.is_tword(w):
        return []
    direct = index.t2i(w)
    if not direct:
        return []
    union_features: Set[str] = set()
    for wi in direct:
        union_features |= index.i2t(wi)
    entries = [CandidateEntry(wi, 1.0, True) for wi in sorted(direct)]
    for wi in sorted(index.iwords):
        if wi in direct:
            continue
        features = index.i2t(wi)
        if not features:
            continue
        inter = len(features & union_features)
        if inter == 0:
            continue
        union = len(features | union_features)
        score = inter / union
        if score > tau:
            entries.append(CandidateEntry(wi, score, False))
    entries.sort(key=lambda e: (-e.similarity, not e.direct, e.iword))
    return entries


class QueryKeywords:
    """The converted query keyword list ``K(QW)`` plus search indexes.

    Attributes:
        words: The normalised query keywords, in query order.
        candidates: ``candidates[i]`` is ``κ(words[i])``.
        tau: The similarity threshold used for indirect matches.
    """

    def __init__(self,
                 index: KeywordIndex,
                 words: Sequence[str],
                 tau: float = 0.2) -> None:
        if not words:
            raise ValueError("query keyword list QW must not be empty")
        self.index = index
        self.words: List[str] = [normalize_word(w) for w in words]
        self.tau = tau
        self.candidates: List[List[CandidateEntry]] = [
            candidate_iword_set(index, w, tau) for w in self.words]

        # Inverted index: candidate i-word -> [(query position, sim)].
        self._iword_hits: Dict[str, List[Tuple[int, float]]] = {}
        for qi, entries in enumerate(self.candidates):
            for entry in entries:
                self._iword_hits.setdefault(entry.iword, []).append(
                    (qi, entry.similarity))

        #: ``Wci``: all candidate i-words across the query (Alg. 1 line 2).
        self.all_candidate_iwords: FrozenSet[str] = frozenset(self._iword_hits)

        #: Key partitions covering at least one candidate i-word
        #: (before the start/terminal adjustment of Alg. 1 line 3).
        self.keyword_partitions: FrozenSet[int] = index.i2p_many(
            self.all_candidate_iwords)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.words)

    def candidate_set(self, position: int) -> List[CandidateEntry]:
        """``κ(QW[position])``."""
        return self.candidates[position]

    def candidate_iwords(self, position: int) -> Set[str]:
        """``κ(QW[position]).Wi``."""
        return {e.iword for e in self.candidates[position]}

    def hits_for_iword(self, iword: str) -> List[Tuple[int, float]]:
        """``(query position, similarity)`` pairs i-word contributes to."""
        return self._iword_hits.get(iword, [])

    def partitions_for_word(self, position: int) -> FrozenSet[int]:
        """Key partitions relevant to query word ``position``
        (``I2P(κ(wQ).Wi)`` in Alg. 6 line 7)."""
        return self.index.i2p_many(self.candidate_iwords(position))

    def relevance_from_sims(self, sims: Sequence[float]) -> float:
        """Keyword relevance ``ρ`` from per-word best similarities.

        ``sims[i]`` is the maximum similarity of query word ``i``'s
        matching i-words on the route (0 when uncovered).  Implements
        Definition 6: covered count plus the mean best similarity.
        """
        covered = sum(1 for s in sims if s > 0.0)
        if covered == 0:
            return 0.0
        return covered + sum(sims) / covered

    @property
    def max_relevance(self) -> float:
        """``|QW| + 1``: relevance when all words match with sim 1."""
        return len(self.words) + 1.0

    def relevance_of_iword_set(self, iwords: Iterable[str]) -> float:
        """Keyword relevance of a plain route-word set (Definition 6)."""
        sims = [0.0] * len(self.words)
        for wi in iwords:
            for qi, s in self.hits_for_iword(wi):
                if s > sims[qi]:
                    sims[qi] = s
        return self.relevance_from_sims(sims)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryKeywords({self.words!r}, tau={self.tau})"

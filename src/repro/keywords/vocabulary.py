"""Disjoint identity-word / thematic-word vocabularies.

The paper keeps the i-word set and the t-word set distinct: "If a word
is in the i-word set Wi, it is excluded from the t-word set Wt"
(Section III-A).  :class:`Vocabulary` enforces that invariant and
classifies incoming query words, so users never need to tag keywords
themselves ("they are recognized automatically in our implementation",
Section V-A1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set


def normalize_word(word: str) -> str:
    """Canonical form used for every vocabulary lookup."""
    return word.strip().lower()


class Vocabulary:
    """The two disjoint keyword sets ``Wi`` (identity) and ``Wt`` (thematic).

    Words are normalised to lower case.  A word added as an i-word is
    silently dropped from the t-word set (i-words take precedence, per
    the paper's construction where brand names are i-words first and
    extracted keywords become t-words only if they are not brands).
    """

    def __init__(self,
                 iwords: Iterable[str] = (),
                 twords: Iterable[str] = ()) -> None:
        self._iwords: Set[str] = set()
        self._twords: Set[str] = set()
        for w in iwords:
            self.add_iword(w)
        for w in twords:
            self.add_tword(w)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_iword(self, word: str) -> str:
        """Register an identity word; evicts it from the t-word set."""
        w = normalize_word(word)
        if not w:
            raise ValueError("empty i-word")
        self._iwords.add(w)
        self._twords.discard(w)
        return w

    def add_tword(self, word: str) -> str:
        """Register a thematic word unless it is already an i-word."""
        w = normalize_word(word)
        if not w:
            raise ValueError("empty t-word")
        if w not in self._iwords:
            self._twords.add(w)
        return w

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_iword(self, word: str) -> bool:
        return normalize_word(word) in self._iwords

    def is_tword(self, word: str) -> bool:
        return normalize_word(word) in self._twords

    def __contains__(self, word: str) -> bool:
        w = normalize_word(word)
        return w in self._iwords or w in self._twords

    @property
    def iwords(self) -> Set[str]:
        """A copy of the identity-word set."""
        return set(self._iwords)

    @property
    def twords(self) -> Set[str]:
        """A copy of the thematic-word set."""
        return set(self._twords)

    @property
    def num_iwords(self) -> int:
        return len(self._iwords)

    @property
    def num_twords(self) -> int:
        return len(self._twords)

    def __iter__(self) -> Iterator[str]:
        yield from self._iwords
        yield from self._twords

    def __len__(self) -> int:
        return len(self._iwords) + len(self._twords)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary({self.num_iwords} i-words, {self.num_twords} t-words)"

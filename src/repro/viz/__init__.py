"""Floor-plan and route rendering (SVG, no dependencies).

:func:`render_svg` draws one floor of a venue — partitions coloured by
kind, doors, keyword labels — with optional route overlays, producing
a standalone SVG string or file.  Used by the examples and handy for
debugging fixtures and generators.
"""

from repro.viz.svg import RouteStyle, render_svg, save_svg

__all__ = ["RouteStyle", "render_svg", "save_svg"]

"""Dependency-free SVG rendering of floors and routes."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.route import Route
from repro.geometry import Point
from repro.keywords.mappings import KeywordIndex
from repro.space.entities import PartitionKind
from repro.space.indoor_space import IndoorSpace

_KIND_FILL = {
    PartitionKind.ROOM: "#f5efe0",
    PartitionKind.HALLWAY: "#e8eef7",
    PartitionKind.STAIRCASE: "#d9c8ef",
    PartitionKind.ELEVATOR: "#c8e8d8",
}

_ROUTE_COLORS = ("#d62728", "#1f77b4", "#2ca02c", "#ff7f0e", "#9467bd")


@dataclass(frozen=True)
class RouteStyle:
    """Stroke styling of one route overlay."""

    color: str
    width: float = 1.6
    dash: Optional[str] = None
    label: Optional[str] = None


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _route_points(space: IndoorSpace, route: Route) -> List[Tuple[float, float]]:
    pts: List[Tuple[float, float]] = []
    for item in route.items:
        pos = space.door(item).position if isinstance(item, int) else item
        pts.append((pos.x, pos.y))
    return pts


def render_svg(space: IndoorSpace,
               floor: int = 0,
               kindex: Optional[KeywordIndex] = None,
               routes: Sequence[Route] = (),
               route_styles: Sequence[RouteStyle] = (),
               markers: Sequence[Tuple[str, Point]] = (),
               width: int = 900) -> str:
    """Render one floor as a standalone SVG document.

    Args:
        space: The venue.
        floor: Which floor to draw (doors and partitions on it).
        kindex: When given, partitions are labelled with their i-words.
        routes: Route overlays (segments on other floors are skipped).
        route_styles: Styling per route; defaults cycle a palette.
        markers: ``(label, point)`` pairs (e.g. ``("ps", ps)``).
        width: Pixel width; height preserves the aspect ratio.
    """
    parts = [p for p in space.partitions.values() if p.floor == floor]
    if not parts:
        raise ValueError(f"no partitions on floor {floor}")
    x_min = min(p.footprint.x_min for p in parts)
    x_max = max(p.footprint.x_max for p in parts)
    y_min = min(p.footprint.y_min for p in parts)
    y_max = max(p.footprint.y_max for p in parts)
    pad = 0.03 * max(x_max - x_min, y_max - y_min)
    x_min, y_min = x_min - pad, y_min - pad
    x_max, y_max = x_max + pad, y_max + pad
    scale = width / (x_max - x_min)
    height = int((y_max - y_min) * scale)

    def sx(x: float) -> float:
        return (x - x_min) * scale

    def sy(y: float) -> float:
        # Flip the y axis: SVG grows downwards, floor plans upwards.
        return (y_max - y) * scale

    font = max(8.0, min(14.0, scale * 2.5))
    out: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for p in sorted(parts, key=lambda p: p.pid):
        fp = p.footprint
        fill = _KIND_FILL.get(p.kind, "#eeeeee")
        out.append(
            f'<rect x="{sx(fp.x_min):.1f}" y="{sy(fp.y_max):.1f}" '
            f'width="{(fp.width) * scale:.1f}" '
            f'height="{(fp.height) * scale:.1f}" '
            f'fill="{fill}" stroke="#555" stroke-width="0.8"/>')
        label = p.name or f"v{p.pid}"
        iword = kindex.p2i(p.pid) if kindex else None
        text = f"{label}" + (f" · {iword}" if iword else "")
        cx, cy = sx(fp.center.x), sy(fp.center.y)
        out.append(
            f'<text x="{cx:.1f}" y="{cy:.1f}" font-size="{font:.1f}" '
            f'text-anchor="middle" fill="#333">{_esc(text)}</text>')

    for did, door in sorted(space.doors.items()):
        if door.floor != floor and not door.is_staircase_door:
            continue
        pos = door.position
        color = "#9467bd" if door.is_staircase_door else "#b22"
        out.append(
            f'<circle cx="{sx(pos.x):.1f}" cy="{sy(pos.y):.1f}" '
            f'r="{max(2.0, scale * 0.6):.1f}" fill="{color}"/>')
        out.append(
            f'<text x="{sx(pos.x) + 3:.1f}" y="{sy(pos.y) - 3:.1f}" '
            f'font-size="{font * 0.85:.1f}" fill="#822">'
            f'{_esc(door.name or f"d{did}")}</text>')

    for i, route in enumerate(routes):
        style = (route_styles[i] if i < len(route_styles)
                 else RouteStyle(color=_ROUTE_COLORS[i % len(_ROUTE_COLORS)]))
        pts = _route_points(space, route)
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        dash = f' stroke-dasharray="{style.dash}"' if style.dash else ""
        out.append(
            f'<polyline points="{coords}" fill="none" '
            f'stroke="{style.color}" stroke-width="{style.width}"{dash} '
            f'stroke-linejoin="round" opacity="0.85"/>')
        if style.label and pts:
            x0, y0 = pts[0]
            out.append(
                f'<text x="{sx(x0):.1f}" y="{sy(y0) + font:.1f}" '
                f'font-size="{font:.1f}" fill="{style.color}">'
                f'{_esc(style.label)}</text>')

    for label, point in markers:
        out.append(
            f'<circle cx="{sx(point.x):.1f}" cy="{sy(point.y):.1f}" '
            f'r="{max(3.0, scale * 0.8):.1f}" fill="#111"/>')
        out.append(
            f'<text x="{sx(point.x) + 4:.1f}" y="{sy(point.y) + 4:.1f}" '
            f'font-size="{font:.1f}" font-weight="bold" fill="#111">'
            f'{_esc(label)}</text>')

    out.append("</svg>")
    return "\n".join(out)


def save_svg(path: Union[str, Path], svg: str) -> Path:
    """Write an SVG document to disk and return the path."""
    path = Path(path)
    path.write_text(svg)
    return path

"""Top-k result collection for IKRQ searches.

The collection enforces the diversity principle: at most one route per
homogeneity class (identified by the key-partition sequence — complete
routes share head ``ps`` and tail ``pt``), and within a class only the
*prime* (shortest) route is retained, even when a longer homogeneous
route scores higher (Definition 3 subordinates score to primality
inside a class).

For the ToE\\P ablation the class bookkeeping can be disabled, which
reproduces the paper's homogeneous-rate measurements (Figs. 16/20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.route import Route


@dataclass(frozen=True)
class RouteResult:
    """One returned route with its derived measures."""

    route: Route
    kp: Tuple[int, ...]
    relevance: float
    score: float

    @property
    def distance(self) -> float:
        return self.route.distance


class TopKResults:
    """Best-k complete routes, deduplicated by homogeneity class.

    ``kbound`` is the current k-th best ranking score (0 until k
    classes have been seen), feeding Pruning Rule 4.
    """

    def __init__(self, k: int, deduplicate: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.deduplicate = deduplicate
        self._by_class: Dict[Tuple[int, ...], RouteResult] = {}
        self._all: List[RouteResult] = []
        self._ranked_cache: Optional[List[RouteResult]] = None
        self.added = 0
        self.replaced = 0

    # ------------------------------------------------------------------
    def add(self, result: RouteResult) -> bool:
        """Insert a complete route; returns whether anything changed.

        With deduplication on, a route replaces its class entry only
        when strictly shorter (primality); without it, every route is
        kept (ToE\\P mode).
        """
        self.added += 1
        if not self.deduplicate:
            self._all.append(result)
            self._ranked_cache = None
            return True
        existing = self._by_class.get(result.kp)
        if existing is None:
            self._by_class[result.kp] = result
            self._ranked_cache = None
            return True
        if result.distance < existing.distance:
            self._by_class[result.kp] = result
            self._ranked_cache = None
            self.replaced += 1
            return True
        return False

    # ------------------------------------------------------------------
    def _ranked(self) -> List[RouteResult]:
        if self._ranked_cache is None:
            pool = (list(self._by_class.values())
                    if self.deduplicate else list(self._all))
            pool.sort(key=lambda r: (-r.score, r.distance))
            self._ranked_cache = pool
        return self._ranked_cache

    def top(self) -> List[RouteResult]:
        """The final top-k routes, best score first."""
        return self._ranked()[: self.k]

    @property
    def kbound(self) -> float:
        """The k-th best score among seen classes (0 when fewer than k)."""
        ranked = self._ranked()
        if len(ranked) < self.k:
            return 0.0
        return ranked[self.k - 1].score

    def __len__(self) -> int:
        return (len(self._by_class) if self.deduplicate else len(self._all))

    def homogeneous_rate(self) -> float:
        """Fraction of returned routes sharing a class with another
        returned route (the paper's homogeneous rate, Figs. 16/20)."""
        top = self.top()
        if not top:
            return 0.0
        counts: Dict[Tuple[int, ...], int] = {}
        for r in top:
            counts[r.kp] = counts.get(r.kp, 0) + 1
        homogeneous = sum(1 for r in top if counts[r.kp] > 1)
        return homogeneous / len(top)

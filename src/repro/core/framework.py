"""The unified IKRQ search framework (Algorithm 1 + Algorithm 5).

The framework drives a priority queue of stamps ordered by ranking
score.  Each iteration pops the best stamp, asks the expansion
strategy (``find`` — topology- or keyword-oriented) for the next valid
stamps, and ``connect``\\ s each of them towards the terminal point:

* a stamp whose partition is ``v(pt)`` is immediately completed (and,
  unlike the paper's pseudo-code but consistent with its worked
  Example 8 and Table II, also kept for further expansion so routes
  may pass *through* the terminal partition),
* a stamp covering all query keywords is completed via the shortest
  regular continuation and not expanded further (additional travel can
  only lower its score),
* anything else goes back into the queue.

Pruning Rules 1–5 are applied inside the strategies and the connect
step; each can be disabled through :class:`SearchConfig` to reproduce
the paper's ablation variants (ToE\\D, ToE\\B, ToE\\P, KoE\\D, KoE\\B,
KoE*).

Shortest *regular* continuations — used by both ``connect`` and the
keyword-oriented expansion — are served by a pluggable
:class:`ContinuationProvider`.  Continuations respect the regularity
principle (no door of the prefix is reused), leave the stamp's current
partition first, and may *start* with the one-hop ``(d, d)`` re-entry
loop, which is the only way out of a dead-end keyword partition.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.prime import PrimeTable
from repro.core.query import QueryContext
from repro.core.results import RouteResult, TopKResults
from repro.core.route import Route
from repro.core.stamp import Stamp
from repro.core.stats import SearchStats

INF = float("inf")

#: A continuation: (door sequence, via sequence, distance).
Continuation = Tuple[List[int], List[int], float]


@dataclass(frozen=True)
class SearchConfig:
    """Feature switches defining an algorithm variant.

    Attributes:
        use_distance_pruning: Pruning Rules 1, 2 and 3 (off in \\D).
        use_kbound_pruning: Pruning Rule 4 (off in \\B).
        use_prime_pruning: Pruning Rule 5, the Lemma 2 loop
            restriction, and result deduplication (off in \\P).
        expand_through_terminal: Keep expanding stamps that reached
            ``v(pt)`` (see module docstring).
        expand_after_coverage: Algorithm 5 stops expanding a stamp once
            it covers every query keyword (extra travel can only lower
            its score, so the heuristic only drops classes that are
            strictly dominated score-wise by the class they extend).
            Set ``True`` for a fully exhaustive search whose result
            multiset matches the naive baseline exactly.
        max_expansions: Optional safety cap on pop iterations; ``None``
            searches exhaustively.  The paper's ToE\\P runs five to six
            orders of magnitude longer than ToE — the cap lets the
            bench harness keep such ablations finite on large venues.
    """

    use_distance_pruning: bool = True
    use_kbound_pruning: bool = True
    use_prime_pruning: bool = True
    expand_through_terminal: bool = True
    expand_after_coverage: bool = False
    max_expansions: Optional[int] = None


class ContinuationProvider:
    """Source of shortest non-loop door continuations.

    ``nonloop`` returns, per target door, the shortest door path from
    ``tail`` whose first segment traverses ``first_via`` and that
    avoids every banned door.  The default implementation runs the
    unified CSR Dijkstra on the fly (reusing the query's workspace, so
    repeated calls allocate no per-node state); KoE* substitutes a
    precomputed matrix, and batched execution may serve start-point
    continuations from a shared attachment map.

    A closure overlay (``ctx.closed_doors`` / ``ctx.sealed_partitions``)
    joins the banned arguments here — the route-level ``banned`` set
    keeps its own meaning (doors already on the route), including in
    the start-map cache gate, which stays aligned with a from-scratch
    engine because an overlay context's start map is itself computed
    with the overlay's banned sets.
    """

    def nonloop(self,
                search: "IKRQSearch",
                tail,
                first_via: int,
                targets: Set[int],
                banned: FrozenSet[int],
                budget: float) -> Dict[int, Continuation]:
        ctx = search.ctx
        closed = ctx.closed_doors
        sealed = ctx.sealed_partitions or None
        if isinstance(tail, int):
            search.stats.dijkstra_calls += 1
            return ctx.graph.multi_target_routes(
                tail, first_via, targets,
                banned=(banned | closed if closed else banned),
                bound=budget, workspace=ctx.workspace,
                banned_partitions=sealed)
        cached = ctx.cached_point_routes(
            tail, first_via, targets, banned, budget)
        if cached is not None:
            search.stats.point_cache_hits += 1
            return cached
        search.stats.dijkstra_calls += 1
        return ctx.graph.routes_from_point(
            tail, first_via, targets,
            banned=(banned | closed if closed else banned),
            bound=budget, workspace=ctx.workspace,
            banned_partitions=sealed)


class ExpansionStrategy:
    """Interface of the ``find`` step (instantiated by ToE and KoE)."""

    name = "abstract"

    def find(self, search: "IKRQSearch", stamp: Stamp) -> List[Stamp]:
        raise NotImplementedError

    def prepare(self, search: "IKRQSearch") -> None:
        """Hook called once per query before the main loop."""

    def finish(self, search: "IKRQSearch") -> None:
        """Hook called once per query after the main loop."""


class IKRQSearch:
    """One evaluation of an IKRQ query (Algorithm 1).

    Instances are single-use: construct, call :meth:`run`, read
    ``results`` / ``stats``.
    """

    def __init__(self,
                 context: QueryContext,
                 strategy: ExpansionStrategy,
                 config: SearchConfig = SearchConfig(),
                 provider: Optional[ContinuationProvider] = None) -> None:
        self.ctx = context
        self.strategy = strategy
        self.config = config
        self.provider = provider or ContinuationProvider()
        self.prime = PrimeTable()
        self.results = TopKResults(
            context.k, deduplicate=config.use_prime_pruning)
        self.stats = SearchStats()
        self._heap: List[Tuple[float, int, Stamp]] = []
        self._counter = itertools.count()
        self._partitions_ok: Set[int] = set()

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    def _push(self, stamp: Stamp) -> None:
        heapq.heappush(self._heap, (-stamp.score, next(self._counter), stamp))
        self.stats.on_push(stamp.route.num_items)
        self.stats.track_queue(len(self._heap))

    def _pop(self) -> Stamp:
        _, _, stamp = heapq.heappop(self._heap)
        self.stats.on_pop(stamp.route.num_items)
        return stamp

    # ------------------------------------------------------------------
    # Stamp helpers shared with the strategies
    # ------------------------------------------------------------------
    def make_stamp(self, partition: int, route: Route) -> Stamp:
        self.stats.stamps_created += 1
        # One relevance derivation feeds both the stamp field and the
        # ranking score (Stamp.of would recompute it).
        relevance = route.relevance
        return Stamp(partition=partition, route=route,
                     distance=route.distance, relevance=relevance,
                     score=self.ctx.score_from_relevance(route, relevance))

    @property
    def kbound(self) -> float:
        if not self.config.use_kbound_pruning:
            return -INF
        return self.results.kbound

    def prime_check(self, stamp: Stamp) -> bool:
        """Pruning Rule 5 (Algorithm 3) on a stamp, variant-aware."""
        if not self.config.use_prime_pruning:
            return True
        # Routes carry KP(R) incrementally (ctx.key_partition_sequence
        # is the same attribute read); stay on the attributes here.
        route = stamp.route
        ok = self.prime.check(route.tail, route.kp, stamp.distance)
        if not ok:
            self.stats.pruned_rule5 += 1
        return ok

    def prime_update(self, stamp: Stamp) -> None:
        """Algorithm 4 on a stamp, variant-aware."""
        if not self.config.use_prime_pruning:
            return
        route = stamp.route
        self.prime.update(route.tail, route.kp, stamp.distance)

    # ------------------------------------------------------------------
    # Distance pruning caches (Rules 2 and 3)
    # ------------------------------------------------------------------
    def door_admissible(self, door: int) -> bool:
        """Pruning Rule 2: ``|ps, d|L + |d, pt|L ≤ Δ`` (cached)."""
        ctx = self.ctx
        if not self.config.use_distance_pruning:
            return True
        # Valid-first: on settled queries nearly every check is a
        # repeat hit on Dn, and the two sets are disjoint.
        if door in ctx.doors_valid:
            return True
        if door in ctx.doors_pruned:
            return False
        bound = ctx.lb_from_start(door) + ctx.lb_to_terminal(door)
        if bound > ctx.delta_hard:
            ctx.doors_pruned.add(door)
            self.stats.pruned_rule2 += 1
            return False
        ctx.doors_valid.add(door)
        return True

    def key_partition_pool(self) -> Set[int]:
        """The surviving KoE candidate partitions (Algorithm 1 line 3,
        shrunk in place by Pruning Rule 3)."""
        return self.ctx.key_partition_pool

    def partition_admissible(self, pid: int) -> bool:
        """Pruning Rule 3: drop partitions off every feasible route."""
        ctx = self.ctx
        if pid in self._partitions_ok:
            return True
        if pid not in ctx.key_partition_pool:
            return False
        lower = ctx.lb_via_partition(ctx.query.ps, pid)
        if lower > ctx.delta_hard:
            ctx.key_partition_pool.discard(pid)
            self.stats.pruned_rule3 += 1
            return False
        self._partitions_ok.add(pid)
        return True

    # ------------------------------------------------------------------
    # Regular continuations (shared by connect and KoE)
    # ------------------------------------------------------------------
    def regular_continuations(self,
                              stamp: Stamp,
                              targets: Set[int],
                              budget: float) -> Dict[int, Continuation]:
        """Shortest regular continuations from a stamp to target doors.

        Combines the ordinary first-hop-restricted shortest paths with
        paths that start with the ``(d, d)`` re-entry loop — subject to
        Lemma 2, the loop is only available when the stamp's partition
        covers a query keyword (always, in the \\P ablation).
        """
        ctx = self.ctx
        route = stamp.route
        tail = route.tail
        tail_is_door = isinstance(tail, int)
        banned = frozenset(route.door_counts) - (
            frozenset({tail}) if tail_is_door else frozenset())
        reachable_targets = set(targets) - banned
        if not reachable_targets or budget < 0:
            return {}
        out = self.provider.nonloop(
            self, tail, stamp.partition, reachable_targets, banned, budget)

        if not tail_is_door or not route.may_append_door(tail):
            return out
        loop_allowed = (not self.config.use_prime_pruning
                        or ctx.is_keyword_partition(stamp.partition))
        if not loop_allowed:
            return out
        reentry = ctx.oracle.d2d(tail, tail, via=stamp.partition)
        if reentry == INF or reentry > budget:
            return out
        # The loop itself can be the whole continuation when the tail
        # door also enters a target's partition.
        if tail in reachable_targets:
            cand: Continuation = ([tail], [stamp.partition], reentry)
            best = out.get(tail)
            if best is None or cand[2] < best[2]:
                out[tail] = cand
        for far in ctx.space.d2p_enter(tail) - {stamp.partition}:
            sub = self.provider.nonloop(
                self, tail, far, reachable_targets,
                banned | {tail}, budget - reentry)
            for target, (doors, vias, dist) in sub.items():
                cand = ([tail] + doors, [stamp.partition] + vias,
                        reentry + dist)
                best = out.get(target)
                if best is None or cand[2] < best[2]:
                    out[target] = cand
        return out

    # ------------------------------------------------------------------
    # Completion / result recording
    # ------------------------------------------------------------------
    def _record_complete(self, route: Route) -> None:
        """Validate a complete route and fold it into the top-k set."""
        ctx = self.ctx
        self.stats.complete_routes += 1
        if route.distance > ctx.delta_hard:
            return
        score = ctx.ranking_score(route)
        kp = ctx.key_partition_sequence(route)
        if self.config.use_prime_pruning:
            if not self.prime.check(route.tail, kp, route.distance):
                self.stats.pruned_rule5 += 1
                return
        # The paper additionally gates on ψ(Rf) > kbound.  A shorter
        # homogeneous route must still replace its class entry to keep
        # results prime, so the gate lives inside TopKResults.add
        # (class replacement always happens; new classes simply rank).
        changed = self.results.add(RouteResult(
            route=route, kp=kp, relevance=route.relevance, score=score))
        if changed and self.config.use_prime_pruning:
            self.prime.update(route.tail, kp, route.distance)

    def _connect_directly(self, stamp: Stamp) -> None:
        """Stamp is in ``v(pt)``: append the terminal point."""
        complete = self.ctx.complete_route(stamp.route)
        if complete is not None:
            self._record_complete(complete)

    def _connect_via_shortest(self, stamp: Stamp) -> None:
        """All keywords covered: shortest regular continuation to pt."""
        ctx = self.ctx
        route = stamp.route
        budget = ctx.delta_hard - route.distance
        if budget < 0:
            return
        attach = ctx.terminal_attachments()
        if not attach:
            return
        paths = self.regular_continuations(stamp, set(attach), budget)
        best: Optional[Route] = None
        for target, (doors, vias, dist) in paths.items():
            extra = attach[target]
            if route.distance + dist + extra > ctx.delta_hard:
                continue
            extended = ctx.extend_along_path(route, doors, vias, dist)
            complete = ctx.complete_route(extended)
            if complete is None or complete.distance > ctx.delta_hard:
                continue
            if best is None or complete.distance < best.distance:
                best = complete
        if best is not None:
            self._record_complete(best)

    def connect(self, stamp: Stamp) -> None:
        """Algorithm 5."""
        self.stats.connects += 1
        ctx = self.ctx
        if stamp.partition == ctx.v_pt:
            self._connect_directly(stamp)
            if self.config.expand_through_terminal:
                self._push(stamp)
            return
        if not self.prime_check(stamp):
            return
        if stamp.relevance >= ctx.full_relevance:
            self._connect_via_shortest(stamp)
            if self.config.expand_after_coverage:
                self._push(stamp)
            return
        self._push(stamp)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> List[RouteResult]:
        """Execute the search and return the ranked top-k routes."""
        started = time.perf_counter()
        ctx = self.ctx
        self.strategy.prepare(self)

        start_route = ctx.start_route()
        s0 = self.make_stamp(ctx.v_ps, start_route)

        # Trivial completion: start and terminal share a partition.
        if ctx.v_ps == ctx.v_pt:
            direct = ctx.complete_route(start_route)
            if direct is not None:
                self._record_complete(direct)
        # Start already covers every keyword: early connect, matching
        # the heuristic of Algorithm 5 for ordinary stamps.
        if s0.relevance >= ctx.full_relevance:
            self._connect_via_shortest(s0)

        self._push(s0)
        cap = self.config.max_expansions
        while self._heap:
            stamp = self._pop()
            self.stats.stamps_popped += 1
            if cap is not None and self.stats.stamps_popped > cap:
                break
            if self.config.use_kbound_pruning:
                remaining = (ctx.lb_to_terminal(stamp.route.tail)
                             if self.config.use_distance_pruning else 0.0)
                upper = ctx.upper_bound_score(stamp.distance + remaining)
                if upper <= self.kbound:
                    self.stats.pruned_rule4 += 1
                    continue
            for next_stamp in self.strategy.find(self, stamp):
                self.connect(next_stamp)

        self.strategy.finish(self)
        self.stats.prime_table_entries = len(self.prime)
        self.stats.aux_bytes += self.prime.estimated_bytes()
        self.stats.elapsed_seconds = time.perf_counter() - started
        return self.results.top()

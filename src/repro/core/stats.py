"""Instrumentation counters for IKRQ searches.

The paper reports running time and memory per query.  Wall-clock time
is measured by the bench harness; :class:`SearchStats` adds the
implementation-independent counters that explain *why* an algorithm is
fast or slow (pruning hit counts, expansion counts) and a live-memory
proxy used for the memory figures: the peak number of route items held
by queued stamps, the prime table, and — for KoE* — the precomputed
matrix rows, converted to approximate bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Approximate in-memory size of one route item inside a stamp (tuple
#: slot + door id / point object share, measured on CPython 3.11).
BYTES_PER_ROUTE_ITEM = 96
#: Fixed per-stamp overhead (dataclass + tuples + floats).
BYTES_PER_STAMP = 280


@dataclass
class SearchStats:
    """Counters collected by one IKRQ search run."""

    stamps_created: int = 0
    stamps_popped: int = 0
    expansions: int = 0
    connects: int = 0
    complete_routes: int = 0
    dijkstra_calls: int = 0
    precomputed_hits: int = 0
    precomputed_misses: int = 0
    #: Continuations served from a QueryService point-attachment map
    #: instead of a fresh Dijkstra run.
    point_cache_hits: int = 0
    #: Rows the (memory-budgeted) KoE* door matrix has evicted so far.
    matrix_evictions: int = 0

    pruned_rule1: int = 0
    pruned_rule2: int = 0
    pruned_rule3: int = 0
    pruned_rule4: int = 0
    pruned_rule5: int = 0
    pruned_regularity: int = 0
    pruned_distance: int = 0

    max_queue_len: int = 0
    live_route_items: int = 0
    peak_route_items: int = 0
    prime_table_entries: int = 0
    aux_bytes: int = 0

    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    def on_push(self, route_items: int) -> None:
        self.live_route_items += route_items
        if self.live_route_items > self.peak_route_items:
            self.peak_route_items = self.live_route_items

    def on_pop(self, route_items: int) -> None:
        self.live_route_items -= route_items

    def track_queue(self, length: int) -> None:
        if length > self.max_queue_len:
            self.max_queue_len = length

    # ------------------------------------------------------------------
    @property
    def total_pruned(self) -> int:
        return (self.pruned_rule1 + self.pruned_rule2 + self.pruned_rule3
                + self.pruned_rule4 + self.pruned_rule5)

    def estimated_peak_bytes(self) -> int:
        """The memory proxy reported by the bench harness."""
        stamp_bytes = (self.peak_route_items * BYTES_PER_ROUTE_ITEM
                       + self.max_queue_len * BYTES_PER_STAMP)
        return stamp_bytes + self.aux_bytes

    def estimated_peak_mb(self) -> float:
        return self.estimated_peak_bytes() / (1024.0 * 1024.0)

    def as_dict(self) -> Dict[str, float]:
        return {
            "stamps_created": self.stamps_created,
            "stamps_popped": self.stamps_popped,
            "expansions": self.expansions,
            "connects": self.connects,
            "complete_routes": self.complete_routes,
            "dijkstra_calls": self.dijkstra_calls,
            "point_cache_hits": self.point_cache_hits,
            "matrix_evictions": self.matrix_evictions,
            "pruned_rule1": self.pruned_rule1,
            "pruned_rule2": self.pruned_rule2,
            "pruned_rule3": self.pruned_rule3,
            "pruned_rule4": self.pruned_rule4,
            "pruned_rule5": self.pruned_rule5,
            "pruned_regularity": self.pruned_regularity,
            "pruned_distance": self.pruned_distance,
            "max_queue_len": self.max_queue_len,
            "peak_route_items": self.peak_route_items,
            "prime_table_entries": self.prime_table_entries,
            "estimated_peak_mb": self.estimated_peak_mb(),
            "elapsed_seconds": self.elapsed_seconds,
        }

"""Exhaustive baseline search for IKRQ.

This is the naive method sketched at the start of the paper's
Section IV: iteratively grow candidate partial routes from the start
point, validate them against the distance constraint and the
regularity principle, enumerate *all* complete routes, then keep the
prime route per homogeneity class and return the k best by ranking
score.

It is exponential and only usable on small venues; the test suite
uses it as ground truth for the pruned ToE / KoE algorithms.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.query import QueryContext
from repro.core.results import RouteResult, TopKResults
from repro.core.route import Route
from repro.core.stats import SearchStats


class NaiveSearch:
    """Depth-first exhaustive enumeration of regular routes.

    Args:
        context: The query context.
        max_routes: Safety cap on enumerated complete routes; the
            search raises :class:`RuntimeError` when exceeded so tests
            never silently truncate the ground truth.
    """

    def __init__(self,
                 context: QueryContext,
                 max_routes: int = 2_000_000) -> None:
        self.ctx = context
        self.max_routes = max_routes
        self.results = TopKResults(context.k, deduplicate=True)
        self.stats = SearchStats()

    # ------------------------------------------------------------------
    def run(self) -> List[RouteResult]:
        ctx = self.ctx
        start = ctx.start_route()
        self._record_if_terminal(start, ctx.v_ps)
        self._expand(start, ctx.v_ps)
        return self.results.top()

    # ------------------------------------------------------------------
    def _record_if_terminal(self, route: Route, partition: int) -> None:
        ctx = self.ctx
        if partition != ctx.v_pt:
            return
        complete = ctx.complete_route(route)
        if complete is None or complete.distance > ctx.delta_hard:
            return
        self.stats.complete_routes += 1
        if self.stats.complete_routes > self.max_routes:
            raise RuntimeError(
                f"naive search exceeded {self.max_routes} complete routes")
        self.results.add(RouteResult(
            route=complete,
            kp=ctx.key_partition_sequence(complete),
            relevance=complete.relevance,
            score=ctx.ranking_score(complete)))

    def _expand(self, route: Route, partition: int) -> None:
        ctx = self.ctx
        for dl in ctx.space.p2d_leave(partition):
            if not route.may_append_door(dl):
                continue
            extended = ctx.extend_to_door(route, dl, via=partition)
            if extended is None or extended.distance > ctx.delta_hard:
                continue
            self.stats.expansions += 1
            for vj in ctx.space.d2p_enter(dl) - {partition}:
                self._record_if_terminal(extended, vj)
                self._expand(extended, vj)

"""Turn routes into human-readable, step-by-step directions.

A :class:`~repro.core.route.Route` is a door/partition sequence; end
users (and the examples) want instructions: *"leave zara through d2,
cross oppo, enter costa through d7 (covers: latte), …"*.  The
generator annotates each step with the partition crossed, the distance
walked, floor changes, keyword pickups, and the special same-door
re-entry ("visit X and return").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.query import QueryContext
from repro.core.route import Route
from repro.geometry import Point


@dataclass(frozen=True)
class Step:
    """One leg of a route between consecutive route items."""

    index: int
    kind: str                 # "start" | "walk" | "revisit" | "arrive"
    partition: str            # crossed partition label
    via: Optional[str]        # door label stepped through (None at start)
    distance: float           # metres walked on this leg
    floor: int
    picked_keywords: Sequence[str]  # query words first covered here

    def render(self) -> str:
        picked = (f"  [covers: {', '.join(self.picked_keywords)}]"
                  if self.picked_keywords else "")
        if self.kind == "start":
            return f"start in {self.partition}{picked}"
        if self.kind == "revisit":
            return (f"step into {self.partition} through {self.via} and "
                    f"return ({self.distance:.1f} m){picked}")
        if self.kind == "arrive":
            return (f"arrive after {self.distance:.1f} m in "
                    f"{self.partition}{picked}")
        return (f"cross {self.partition} to {self.via} "
                f"({self.distance:.1f} m, floor {self.floor}){picked}")


def _label(space, pid: int) -> str:
    part = space.partition(pid)
    return part.name or f"partition {pid}"


def _door_label(space, did: int) -> str:
    door = space.door(did)
    return door.name or f"door {did}"


def directions(context: QueryContext, route: Route) -> List[Step]:
    """Step-by-step directions for a (complete or partial) route."""
    space = context.space
    kindex = context.kindex
    qk = context.qk
    steps: List[Step] = []
    covered: set = set()

    def pickups(words) -> List[str]:
        found = []
        for wi in words:
            for qi, _sim in qk.hits_for_iword(wi):
                if qi not in covered:
                    covered.add(qi)
                    found.append(qk.words[qi])
        return found

    start = route.items[0]
    if isinstance(start, Point):
        host = space.host_partition(start)
        start_words = context.item_iwords(start)
        steps.append(Step(
            index=0, kind="start", partition=_label(space, host.pid),
            via=None, distance=0.0, floor=host.floor,
            picked_keywords=pickups(start_words)))

    prev = start
    for i, item in enumerate(route.items[1:], start=1):
        via = route.vias[i - 1]
        leg = context.oracle.item_distance(prev, item, via=via) \
            if isinstance(item, int) and isinstance(prev, int) \
            else context.oracle.item_distance(prev, item)
        if isinstance(item, int):
            picked = pickups(context.item_iwords(item))
            kind = ("revisit"
                    if isinstance(prev, int) and prev == item else "walk")
            steps.append(Step(
                index=i, kind=kind,
                partition=_label(space, via),
                via=_door_label(space, item),
                distance=leg,
                floor=space.door(item).floor,
                picked_keywords=picked))
        else:
            host = space.host_partition(item)
            picked = pickups(context.item_iwords(item))
            steps.append(Step(
                index=i, kind="arrive",
                partition=_label(space, host.pid),
                via=None, distance=leg, floor=host.floor,
                picked_keywords=picked))
        prev = item
    return steps


def render_directions(context: QueryContext, route: Route) -> str:
    """The directions as one numbered text block."""
    lines = [f"{i + 1}. {step.render()}"
             for i, step in enumerate(directions(context, route))]
    lines.append(f"total: {route.distance:.1f} m, "
                 f"relevance {route.relevance:.2f}")
    return "\n".join(lines)

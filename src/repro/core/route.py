"""Routes over the indoor door topology (paper Definition 1).

A route ``R = (xs, d1, ..., dn, xt)`` is a path through a sequence of
doors; the first and last items may be free points.  Besides the item
sequence, :class:`Route` records the *via* sequence — ``vias[i]`` is
the partition traversed between ``items[i]`` and ``items[i + 1]`` —
which makes route distance, key partitions and the regularity checks
well defined even when a door touches several partitions.

Routes also accumulate the query-scoped derived state the search needs
in O(1) per extension:

* ``words`` — the route words ``RW(R)`` (Definition 5),
* ``sims`` — per query keyword, the best similarity of a matching
  i-word on the route (drives keyword relevance, Definition 6),
* ``door_counts`` — door multiplicities for the regularity principle.

Instances are immutable; extensions produce new routes that share
nothing mutable with their parents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.geometry import Point

#: A route item: a door id or a free indoor point.
Item = Union[int, Point]


@dataclass(frozen=True, slots=True)
class Route:
    """An immutable (partial or complete) route.

    Attributes:
        items: The item sequence ``(xs, d1, ..., [xt])``.
        vias: ``vias[i]`` is the partition crossed between ``items[i]``
            and ``items[i+1]`` (``len(vias) == len(items) - 1``).
        distance: The route distance ``δ(R)``.
        words: Route words ``RW(R)`` accumulated so far.
        sims: Per-query-keyword best matching similarity.
        door_counts: Door id → number of appearances on the route.
    """

    items: Tuple[Item, ...]
    vias: Tuple[int, ...]
    distance: float
    words: FrozenSet[str]
    sims: Tuple[float, ...]
    door_counts: Dict[int, int] = field(compare=False)
    #: Incrementally maintained key-partition sequence ``KP(R)``:
    #: the start partition, then keyword-covering partitions at first
    #: traversal, then (for complete routes) the terminal partition.
    kp: Tuple[int, ...] = ()
    #: The interned-id bitmask mirror of ``words``, carried on the
    #: route so word merges on the expansion hot path are bitwise ops
    #: instead of frozenset algebra with per-string re-interning.
    #: Derived state, excluded from equality: it is 0 whenever the
    #: owning context runs the reference (mask-free) word path, and
    #: exactly ``kindex.iword_mask(words)`` otherwise.
    words_mask: int = field(default=0, compare=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def head(self) -> Item:
        return self.items[0]

    @property
    def tail(self) -> Item:
        return self.items[-1]

    @property
    def tail_door(self) -> Optional[int]:
        """The tail as a door id, or ``None`` when it is a point."""
        tail = self.items[-1]
        return tail if isinstance(tail, int) else None

    @property
    def num_items(self) -> int:
        return len(self.items)

    @property
    def doors(self) -> Tuple[int, ...]:
        """The door subsequence of the route."""
        return tuple(x for x in self.items if isinstance(x, int))

    @property
    def is_complete(self) -> bool:
        """Whether both endpoints are points (start and terminal)."""
        return (len(self.items) >= 2
                and isinstance(self.items[0], Point)
                and isinstance(self.items[-1], Point))

    def count(self, door: int) -> int:
        return self.door_counts.get(door, 0)

    def contains_door(self, door: int) -> bool:
        return door in self.door_counts

    @property
    def covered_count(self) -> int:
        """Number of query keywords covered (``NQW`` of Definition 6)."""
        return sum(1 for s in self.sims if s > 0.0)

    @property
    def relevance(self) -> float:
        """Keyword relevance ``ρ(R)`` (Definition 6)."""
        covered = 0
        total = 0.0
        for s in self.sims:
            total += s
            if s > 0.0:
                covered += 1
        if covered == 0:
            return 0.0
        return covered + total / covered

    # ------------------------------------------------------------------
    # Regularity (paper's Principle of Regularity)
    # ------------------------------------------------------------------
    def may_append_door(self, door: int) -> bool:
        """Whether appending ``door`` keeps the route regular.

        A door may appear at most twice and only consecutively (the
        one-hop loop ``(d, d)``); any other repetition would place
        doors between two identical doors.
        """
        seen = self.door_counts.get(door, 0)
        if seen == 0:
            return True
        if seen >= 2:
            return False
        return self.items[-1] == door

    def is_regular(self) -> bool:
        """Full regularity audit of the door sequence (used by tests
        and the naive baseline; the search maintains the invariant
        incrementally via :meth:`may_append_door`)."""
        doors = self.doors
        last_pos: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for pos, door in enumerate(doors):
            counts[door] = counts.get(door, 0) + 1
            if counts[door] > 2:
                return False
            if counts[door] == 2 and last_pos[door] != pos - 1:
                return False
            last_pos[door] = pos
        return True

    # ------------------------------------------------------------------
    # Extension (query-scoped state is supplied by the caller —
    # normally :class:`repro.core.query.QueryContext`)
    # ------------------------------------------------------------------
    def extended(self,
                 item: Item,
                 via: int,
                 cost: float,
                 new_words: FrozenSet[str],
                 new_sims: Tuple[float, ...],
                 new_kp: Tuple[int, ...],
                 new_mask: int = 0) -> "Route":
        """A new route with ``item`` appended through partition ``via``."""
        counts = dict(self.door_counts)
        if isinstance(item, int):
            counts[item] = counts.get(item, 0) + 1
        return Route(
            items=self.items + (item,),
            vias=self.vias + (via,),
            distance=self.distance + cost,
            words=new_words,
            sims=new_sims,
            door_counts=counts,
            kp=new_kp,
            words_mask=new_mask,
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def describe(self, space=None) -> str:
        """Human-readable route string in the paper's arrow notation."""
        parts = []
        for i, item in enumerate(self.items):
            if isinstance(item, int):
                if space is not None:
                    parts.append(space.door(item).name or f"d{item}")
                else:
                    parts.append(f"d{item}")
            else:
                parts.append(f"({item.x:.1f},{item.y:.1f})@{item.level:g}")
            if i < len(self.vias):
                via = self.vias[i]
                if space is not None:
                    vname = space.partition(via).name or f"v{via}"
                else:
                    vname = f"v{via}"
                parts.append(f"-[{vname}]->")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Route({self.describe()}, δ={self.distance:.2f})"

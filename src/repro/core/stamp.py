"""Search stamps: the expansion unit of Algorithm 1.

A stamp ``S(v, R, δ, ρ, ψ)`` records a route expanded to a door (or
the start point), the last partition the route has *entered*, and the
route's distance, keyword relevance and ranking score.  Stamps are the
elements of the priority queue driving the search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.route import Route


@dataclass(frozen=True, slots=True)
class Stamp:
    """A five-tuple ``S(v, R, δ, ρ, ψ)`` (paper Section IV-B).

    ``partition`` is the last partition the route reached (entered
    through its tail door; the host partition of ``ps`` for the
    initial stamp).
    """

    partition: int
    route: Route
    distance: float
    relevance: float
    score: float

    @classmethod
    def of(cls, partition: int, route: Route, score: float) -> "Stamp":
        return cls(partition=partition,
                   route=route,
                   distance=route.distance,
                   relevance=route.relevance,
                   score=score)

    @property
    def tail(self):
        return self.route.tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Stamp(v{self.partition}, δ={self.distance:.2f}, "
                f"ρ={self.relevance:.3f}, ψ={self.score:.4f}, "
                f"{self.route.describe()})")

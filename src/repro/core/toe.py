"""Topology-oriented expansion — ``ToE_find`` (Algorithm 2).

ToE expands a stamp to every admissible leaveable door of its current
partition, one hop at a time.  The checks, in the paper's order:

1. Pruning Rule 5 on the popped stamp (prime check),
2. per-door regularity (a visited door may only repeat at the tail,
   and never a third time),
3. Pruning Rule 2 with the ``Dn`` / ``Df`` caches,
4. the Lemma 2 loop restriction (a ``(d, d)`` loop must enter a
   partition that covers a query keyword),
5. the plain distance constraint, then Pruning Rule 1 with the
   skeleton lower bound, then Pruning Rule 4 with the kbound.

Valid expansions are recorded in the prime table and handed back to
the framework for ``connect``.
"""

from __future__ import annotations

from typing import List

from repro.core.framework import ExpansionStrategy, IKRQSearch
from repro.core.stamp import Stamp

INF = float("inf")


class TopologyOrientedExpansion(ExpansionStrategy):
    """The ToE strategy (paper Section IV-C)."""

    name = "ToE"

    def find(self, search: IKRQSearch, stamp: Stamp) -> List[Stamp]:
        ctx = search.ctx
        config = search.config
        stats = search.stats
        found: List[Stamp] = []

        route = stamp.route
        vi = stamp.partition
        tail = route.tail  # door id, or the start point for S0

        if not search.prime_check(stamp):
            return found

        tail_is_door = isinstance(tail, int)
        for dl in ctx.space.p2d_leave(vi):
            stats.expansions += 1
            # Regularity (Algorithm 2 line 5): a door already on the
            # route may only be appended as an immediate repetition of
            # the tail, and no door may appear more than twice.
            if route.contains_door(dl) and not route.may_append_door(dl):
                stats.pruned_regularity += 1
                continue
            # Pruning Rule 2 with Dn / Df caches (lines 6-10).
            if not search.door_admissible(dl):
                continue
            # Lemma 2 (lines 11-13): the one-hop loop must enter a
            # keyword-covering partition.  The restriction derives from
            # the prime concept, so the \P ablation drops it as well.
            if (tail_is_door and dl == tail
                    and config.use_prime_pruning
                    and not ctx.is_keyword_partition(vi)):
                stats.pruned_regularity += 1
                continue
            extended = ctx.extend_to_door(route, dl, via=vi)
            if extended is None:
                continue
            # Plain distance constraint (line 14) — always enforced.
            if extended.distance > ctx.delta_hard:
                stats.pruned_distance += 1
                continue
            # Pruning Rule 1 (lines 15-16).
            if config.use_distance_pruning:
                lower = extended.distance + ctx.lb_to_terminal(dl)
                if lower > ctx.delta_hard:
                    stats.pruned_rule1 += 1
                    continue
            else:
                lower = extended.distance
            # Pruning Rule 4 (lines 17-18).
            if config.use_kbound_pruning:
                if ctx.upper_bound_score(lower) <= search.kbound:
                    stats.pruned_rule4 += 1
                    continue
            # The partition entered through dl (line 11).  Two-way
            # doors between two partitions give exactly one choice;
            # doors touching more partitions yield one stamp each.
            # (For the (d, d) loop this is the far side of the tail.)
            next_partitions = ctx.space.d2p_enter(dl) - {vi}
            for vj in next_partitions:
                next_stamp = search.make_stamp(vj, extended)
                search.prime_update(next_stamp)
                found.append(next_stamp)
        return found

"""Topology-oriented expansion — ``ToE_find`` (Algorithm 2).

ToE expands a stamp to every admissible leaveable door of its current
partition, one hop at a time.  The checks, in the paper's order:

1. Pruning Rule 5 on the popped stamp (prime check),
2. per-door regularity (a visited door may only repeat at the tail,
   and never a third time),
3. Pruning Rule 2 with the ``Dn`` / ``Df`` caches,
4. the Lemma 2 loop restriction (a ``(d, d)`` loop must enter a
   partition that covers a query keyword),
5. the plain distance constraint, then Pruning Rule 1 with the
   skeleton lower bound, then Pruning Rule 4 with the kbound.

Valid expansions are recorded in the prime table and handed back to
the framework for ``connect``.
"""

from __future__ import annotations

from typing import List

from repro.core.framework import ExpansionStrategy, IKRQSearch
from repro.core.stamp import Stamp

INF = float("inf")


class TopologyOrientedExpansion(ExpansionStrategy):
    """The ToE strategy (paper Section IV-C)."""

    name = "ToE"

    def find(self, search: IKRQSearch, stamp: Stamp) -> List[Stamp]:
        ctx = search.ctx
        config = search.config
        stats = search.stats
        found: List[Stamp] = []

        route = stamp.route
        vi = stamp.partition
        tail = route.tail  # door id, or the start point for S0

        if not search.prime_check(stamp):
            return found

        tail_is_door = isinstance(tail, int)
        # Stat counters batch in locals — attribute stores per door
        # would dominate the per-door work on large partitions.
        pruned_regularity = 0
        pruned_distance = 0
        pruned_rule1 = 0
        pruned_rule4 = 0
        delta_hard = ctx.delta_hard
        use_distance = config.use_distance_pruning
        use_kbound = config.use_kbound_pruning
        # Bound-method hoists for the per-door loop.
        contains_door = route.contains_door
        may_append_door = route.may_append_door
        door_admissible = search.door_admissible
        extend_to_door = ctx.extend_to_door
        lb_to_terminal = ctx.lb_to_terminal
        upper_bound_score = ctx.upper_bound_score
        d2p_enter = ctx.space.d2p_enter
        make_stamp = search.make_stamp
        prime_update = search.prime_update
        # The kbound cannot improve during one find (results only
        # change in connect), so one read serves the whole door loop.
        kbound = search.kbound if use_kbound else -INF
        leaveable = ctx.space.p2d_leave(vi)
        expansions = len(leaveable)
        for dl in leaveable:
            # Regularity (Algorithm 2 line 5): a door already on the
            # route may only be appended as an immediate repetition of
            # the tail, and no door may appear more than twice.
            if contains_door(dl) and not may_append_door(dl):
                pruned_regularity += 1
                continue
            # Pruning Rule 2 with Dn / Df caches (lines 6-10).
            if not door_admissible(dl):
                continue
            # Lemma 2 (lines 11-13): the one-hop loop must enter a
            # keyword-covering partition.  The restriction derives from
            # the prime concept, so the \P ablation drops it as well.
            if (tail_is_door and dl == tail
                    and config.use_prime_pruning
                    and not ctx.is_keyword_partition(vi)):
                pruned_regularity += 1
                continue
            extended = extend_to_door(route, dl, via=vi)
            if extended is None:
                continue
            # Plain distance constraint (line 14) — always enforced.
            if extended.distance > delta_hard:
                pruned_distance += 1
                continue
            # Pruning Rule 1 (lines 15-16).
            if use_distance:
                lower = extended.distance + lb_to_terminal(dl)
                if lower > delta_hard:
                    pruned_rule1 += 1
                    continue
            else:
                lower = extended.distance
            # Pruning Rule 4 (lines 17-18).
            if use_kbound:
                if upper_bound_score(lower) <= kbound:
                    pruned_rule4 += 1
                    continue
            # The partition entered through dl (line 11).  Two-way
            # doors between two partitions give exactly one choice;
            # doors touching more partitions yield one stamp each.
            # (For the (d, d) loop this is the far side of the tail.)
            for vj in d2p_enter(dl) - {vi}:
                next_stamp = make_stamp(vj, extended)
                prime_update(next_stamp)
                found.append(next_stamp)
        stats.expansions += expansions
        stats.pruned_regularity += pruned_regularity
        stats.pruned_distance += pruned_distance
        stats.pruned_rule1 += pruned_rule1
        stats.pruned_rule4 += pruned_rule4
        return found

"""IKRQ query objects and the per-query search context.

:class:`IKRQ` is the user-facing query of Problem 1:
``IKRQ(ps, pt, Δ, QW, k)`` plus the ranking trade-off ``α`` and the
similarity threshold ``τ``.

:class:`QueryContext` holds everything a single query evaluation
shares: the indoor space and its distance/graph/skeleton oracles, the
converted query keywords, the key-partition set ``P`` of Algorithm 1,
the route-extension logic (distance, route words, per-keyword
similarities), key-partition sequences ``KP(R)``, ranking scores, and
the global door caches ``Dn`` / ``Df`` of Pruning Rule 2.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.geometry import Point
from repro.keywords.matching import QueryKeywords
from repro.keywords.mappings import KeywordIndex
from repro.space.distances import DistanceOracle
from repro.space.graph import DijkstraWorkspace, DoorGraph, reconstruct_route
from repro.space.indoor_space import IndoorSpace
from repro.space.skeleton import SkeletonIndex
from repro.core.route import Item, Route

INF = math.inf


@dataclass(frozen=True)
class IKRQ:
    """An indoor top-k keyword-aware routing query (Problem 1).

    Attributes:
        ps: Start point.
        pt: Terminal point.
        delta: Distance constraint ``Δ`` (metres).
        keywords: Query keyword list ``QW`` (i-words and/or t-words,
            recognised automatically).
        k: Number of routes requested.
        alpha: Keyword/distance trade-off ``α`` of Equation 1.
        tau: Similarity threshold ``τ`` of Definition 4.
    """

    ps: Point
    pt: Point
    delta: float
    keywords: Tuple[str, ...]
    k: int = 1
    alpha: float = 0.5
    tau: float = 0.2
    #: Soft-constraint slack (paper §VII future work): routes may
    #: exceed Δ by up to ``soft_slack · Δ``; the spatial score of an
    #: overshooting route goes negative, so such routes rank below
    #: every in-budget route of equal relevance.
    soft_slack: float = 0.0
    #: Popularity weight (paper §VII future work): blend a per-route
    #: popularity term into the ranking (see
    #: :meth:`QueryContext.ranking_score`).
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("distance constraint Δ must be positive")
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if not (0.0 <= self.alpha <= 1.0):
            raise ValueError("alpha must be in [0, 1]")
        if not self.keywords:
            raise ValueError("query keyword list QW must not be empty")
        if self.soft_slack < 0.0:
            raise ValueError("soft_slack must be non-negative")
        if self.gamma < 0.0:
            raise ValueError("gamma must be non-negative")

    @property
    def delta_hard(self) -> float:
        """The hard feasibility bound ``Δ · (1 + soft_slack)``."""
        return self.delta * (1.0 + self.soft_slack)


class QueryContext:
    """Shared per-query state and route algebra.

    One context is built per query evaluation; the space-level oracles
    (graph, skeleton, distance) are typically shared across queries and
    passed in, while the keyword conversion and the pruning caches are
    query-local.
    """

    def __init__(self,
                 space: IndoorSpace,
                 kindex: KeywordIndex,
                 query: IKRQ,
                 graph: Optional[DoorGraph] = None,
                 skeleton: Optional[SkeletonIndex] = None,
                 oracle: Optional[DistanceOracle] = None,
                 popularity: Optional[dict] = None,
                 workspace: Optional[DijkstraWorkspace] = None,
                 qk: Optional[QueryKeywords] = None,
                 closed_doors: FrozenSet[int] = frozenset(),
                 sealed_partitions: FrozenSet[int] = frozenset()) -> None:
        self.space = space
        self.kindex = kindex
        self.query = query
        #: Closure overlay sets (empty without an overlay).  Under an
        #: overlay, ``space`` is the edited view (closed doors/sealed
        #: partitions stripped from the topology mappings) while
        #: ``graph`` stays the original CSR — these sets are what the
        #: continuation provider adds to its banned arguments so the
        #: shared graph routes exactly like the edited one.
        self.closed_doors = closed_doors
        self.sealed_partitions = sealed_partitions
        #: Optional partition-popularity map (values in [0, 1]) used by
        #: the γ-weighted ranking extension.
        self.popularity = popularity or {}
        self.oracle = oracle or DistanceOracle(space)
        self.graph = graph or DoorGraph(space, self.oracle)
        self.skeleton = skeleton or SkeletonIndex(space)
        #: Dijkstra scratch state for every routing call of this query.
        #: Defaults to the graph-owned workspace; batched evaluation
        #: passes one workspace per worker thread instead.
        self.workspace = workspace or self.graph.workspace
        #: Converted query keywords.  ``QueryKeywords`` is immutable
        #: after construction, so a batching layer may share one
        #: instance across queries with identical ``(QW, τ)``.
        self.qk = qk or QueryKeywords(kindex, query.keywords, tau=query.tau)

        self.v_ps: int = space.host_partition(query.ps).pid
        self.v_pt: int = space.host_partition(query.pt).pid

        # Per-call-free copies of the query scalars: these sit under
        # every pruning check, so they are plain attributes rather
        # than forwarding properties.
        self.delta: float = query.delta
        self.delta_hard: float = query.delta_hard
        self.alpha: float = query.alpha
        self.k: int = query.k
        self.num_keywords: int = len(self.qk)
        #: ``|QW| + 1`` — relevance of a fully covered route.
        self.full_relevance: float = self.qk.max_relevance

        #: Partitions covering at least one candidate i-word — used by
        #: key-partition sequences and the Lemma 2 loop check.
        self.keyword_partitions: FrozenSet[int] = self.qk.keyword_partitions

        #: Algorithm 1 line 3: the KoE candidate set ``P`` — keyword
        #: partitions minus ``v(ps)`` plus ``v(pt)``.
        self.key_partition_pool: Set[int] = set(self.keyword_partitions)
        self.key_partition_pool.discard(self.v_ps)
        self.key_partition_pool.add(self.v_pt)

        #: Pruning Rule 2 caches: doors known valid (``Dn``) and doors
        #: pruned for good (``Df``).
        self.doors_valid: Set[int] = set()
        self.doors_pruned: Set[int] = set()

        # Per-door skeleton lower-bound caches (hot path of Rules 1-4).
        self._lb_to_pt: dict = {}
        self._lb_from_ps: dict = {}
        self._door_iwords: dict = {}
        # Interned bitmask mirror of the door i-word sets (-1 marks a
        # door whose words the index cannot intern exactly).  Routes
        # built through this context carry the merged mask
        # (Route.words_mask), so word merges are bitwise; the flag
        # drops to False — for the whole query — the moment any item's
        # mask is inexact, and the frozenset reference path takes over.
        self._door_iword_masks: dict = {}
        self._use_masks = (getattr(self.qk, "use_route_masks", False)
                           and getattr(self.qk, "_mask_exact", False))
        # Endpoint attachment triples for the skeleton's precomputed-
        # heads fast path (array-native index only): ps/pt attach to
        # their floors' staircase doors exactly once per query instead
        # of once per lower-bound call.
        self._use_heads = getattr(self.skeleton, "supports_heads", False)
        # With a kernel attached, the first per-door lower-bound miss
        # prefills the whole endpoint map in one vectorized sweep
        # (values bit-identical to the per-door calls, so the shared
        # per-endpoint caches stay exact).
        self._kernel_sweeps = (
            self._use_heads
            and getattr(self.skeleton, "_kernel", None) is not None)
        self._ps_heads = None
        self._pt_heads = None
        # Optional start-point attachment tree (host pid, dist, pred)
        # shared across queries with the same ps by QueryService.
        self._start_map: Optional[tuple] = None
        # Terminal-side attachment map of pt: per enterable door of
        # v(pt), the straight-line completion cost |d, pt|E used by the
        # connect step's budget pre-check.  Computed lazily per query;
        # QueryService shares one per (ps, pt) endpoint entry.
        self._terminal_attach: Optional[Dict[int, float]] = None

    def share_caches(self,
                     lb_from_ps: Optional[dict] = None,
                     lb_to_pt: Optional[dict] = None,
                     door_iwords: Optional[dict] = None,
                     start_map: Optional[tuple] = None,
                     terminal_attach: Optional[Dict[int, float]] = None,
                     door_iword_masks: Optional[dict] = None) -> None:
        """Adopt caches shared across queries by a batching layer.

        Every shared structure must hold exactly the values this
        context would compute itself (the lower-bound maps are pure in
        ``ps`` / ``pt``, the door i-words are pure in the space and
        keyword index, and the start map is the unbounded
        point-attachment tree of ``ps``) — sharing changes no
        behaviour, it only avoids recomputation.
        """
        if lb_from_ps is not None:
            self._lb_from_ps = lb_from_ps
        if lb_to_pt is not None:
            self._lb_to_pt = lb_to_pt
        if door_iwords is not None:
            self._door_iwords = door_iwords
        if door_iword_masks is not None:
            self._door_iword_masks = door_iword_masks
        if start_map is not None:
            self._start_map = start_map
        if terminal_attach is not None:
            self._terminal_attach = terminal_attach

    def terminal_attachments(self) -> Dict[int, float]:
        """``d -> |d, pt|E`` over the enterable doors of ``v(pt)``.

        These are the connect step's completion targets together with
        the straight-line cost it pre-checks against the distance
        budget before validating the full completion.  The map is pure
        in ``pt`` (and the space), so the batching layer shares one
        instance per endpoint entry instead of recomputing it on every
        covered stamp.
        """
        attach = self._terminal_attach
        if attach is None:
            pt = self.query.pt
            space = self.space
            attach = {door: space.door(door).position.distance_to(pt)
                      for door in space.p2d_enter(self.v_pt)}
            self._terminal_attach = attach
        return attach

    def cached_point_routes(self,
                            p: Point,
                            first_via: int,
                            targets: Set[int],
                            banned: FrozenSet[int],
                            budget: float) -> Optional[dict]:
        """Point continuations served from the shared start map.

        Usable only for the exact case the map captures — the start
        point with an empty banned set, leaving its host partition —
        where the unbounded tree restricted to within-budget targets
        equals a fresh bounded run.  Returns ``None`` otherwise, and
        the caller falls back to the unified Dijkstra.
        """
        cached = self._start_map
        if cached is None or banned:
            return None
        host_pid, dist, pred = cached
        if first_via != host_pid or p != self.query.ps:
            return None
        routes = {}
        for target in targets:
            d = dist.get(target)
            if d is None or d > budget:
                continue
            doors, vias = reconstruct_route(pred, None, target)
            routes[target] = (doors, vias, d)
        return routes

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def is_keyword_partition(self, pid: int) -> bool:
        """Whether the partition's i-word is a candidate of some query word."""
        return pid in self.keyword_partitions

    # ------------------------------------------------------------------
    # Route words and similarity updates
    # ------------------------------------------------------------------
    def item_iwords(self, item: Item) -> FrozenSet[str]:
        """``PW(v*(x)).wi`` — the i-words an item contributes to RW(R).

        For a door this unions the i-words of every partition one can
        *leave* through it (paper Example 5); for a point it is the
        i-word of the host partition.  Door contributions are cached —
        this sits on the expansion hot path.
        """
        if isinstance(item, int):
            cached = self._door_iwords.get(item)
            if cached is None:
                words: Set[str] = set()
                for pid in self.space.d2p_leave(item):
                    wi = self.kindex.p2i(pid)
                    if wi is not None:
                        words.add(wi)
                cached = frozenset(words)
                self._door_iwords[item] = cached
            return cached
        wi = self.kindex.p2i(self.space.host_partition(item).pid)
        return frozenset({wi}) if wi is not None else frozenset()

    def item_words_and_mask(self, item: Item,
                            ) -> Tuple[FrozenSet[str], Optional[int]]:
        """``item_iwords(item)`` plus its interned bitmask.

        The mask is ``None`` (and the context permanently falls back
        to the frozenset merge path) when any of the item's words is
        unknown to the intern table — the mask would then under-report
        the set and a bitwise subset test could silently drop a word.
        Door masks are cached (engine-wide when shared): like the
        word sets themselves they are pure in the space and keyword
        index.
        """
        words = self.item_iwords(item)
        if not self._use_masks:
            return words, None
        if isinstance(item, int):
            mask = self._door_iword_masks.get(item)
            if mask is None:
                mask = self.kindex.iword_mask(words)
                if mask.bit_count() != len(words):
                    mask = -1
                self._door_iword_masks[item] = mask
        else:
            mask = self.kindex.iword_mask(words)
            if mask.bit_count() != len(words):
                mask = -1
        if mask < 0:
            self._use_masks = False
            return words, None
        return words, mask

    def _merge_words(self,
                     words: FrozenSet[str],
                     sims: Tuple[float, ...],
                     added: FrozenSet[str],
                     route_mask: int = 0,
                     added_mask: Optional[int] = None,
                     ) -> Tuple[FrozenSet[str], Tuple[float, ...], int]:
        """Merge an item's words into a route's ``(words, sims, mask)``.

        With exact masks on both sides the no-new-words case — by far
        the common one on the expansion hot path — is a single bitwise
        subset test, and the new words' similarity hits are looked up
        by interned id (:attr:`QueryKeywords.wid_hits`) instead of
        re-interning strings.  Both paths compute identical words and
        sims; the returned mask is 0 on the reference path.
        """
        if self._use_masks and added_mask is not None:
            merged_mask = route_mask | added_mask
            if merged_mask == route_mask:
                return words, sims, route_mask
            out = list(sims)
            changed = False
            wid_hits = self.qk.wid_hits
            new_mask = added_mask & ~route_mask
            while new_mask:
                low = new_mask & -new_mask
                for qi, s in wid_hits.get(low.bit_length() - 1, ()):
                    if s > out[qi]:
                        out[qi] = s
                        changed = True
                new_mask ^= low
            return (words | added,
                    tuple(out) if changed else sims, merged_mask)
        new = added - words
        if not new:
            return words, sims, 0
        out = list(sims)
        changed = False
        for wi in new:
            for qi, s in self.qk.hits_for_iword(wi):
                if s > out[qi]:
                    out[qi] = s
                    changed = True
        return words | new, tuple(out) if changed else sims, 0

    # ------------------------------------------------------------------
    # Route construction
    # ------------------------------------------------------------------
    def _kp_after(self, route: Route, via: int) -> Tuple[int, ...]:
        """``KP`` of a partial route after one more segment through
        ``via``: keyword partitions enter at first traversal."""
        if (via in self.keyword_partitions and via != self.v_ps
                and via not in route.kp):
            return route.kp + (via,)
        return route.kp

    def start_route(self) -> Route:
        """The initial route ``R0 = (ps)``."""
        ps = self.query.ps
        added, added_mask = self.item_words_and_mask(ps)
        sims = (0.0,) * self.num_keywords
        words, sims, mask = self._merge_words(
            frozenset(), sims, added, 0, added_mask)
        return Route(items=(ps,), vias=(), distance=0.0,
                     words=words, sims=sims, door_counts={},
                     kp=(self.v_ps,), words_mask=mask)

    def extend_to_door(self, route: Route, door: int, via: int) -> Optional[Route]:
        """Append ``door`` to ``route`` through partition ``via``.

        Returns ``None`` when the move is topologically impossible
        (infinite distance).
        """
        tail = route.tail
        if isinstance(tail, int):
            cost = self.oracle.d2d(tail, door, via=via)
        else:
            cost = self.oracle.pt2d(tail, door)
        if cost == INF:
            return None
        added, added_mask = self.item_words_and_mask(door)
        words, sims, mask = self._merge_words(
            route.words, route.sims, added, route.words_mask, added_mask)
        return route.extended(door, via, cost, words, sims,
                              self._kp_after(route, via), new_mask=mask)

    def extend_along_path(self,
                          route: Route,
                          doors: Sequence[int],
                          vias: Sequence[int],
                          total: float) -> Route:
        """Append a precomputed door path (KoE / connect continuations).

        ``total`` is the path length as computed by the door graph; the
        per-segment costs are re-derived from door positions so that
        route distances stay consistent with :meth:`extend_to_door`.
        """
        words, sims = route.words, route.sims
        mask = route.words_mask
        items = route.items
        via_seq = route.vias
        counts = dict(route.door_counts)
        distance = route.distance
        kp = route.kp
        prev = route.tail
        for door, via in zip(doors, vias):
            if isinstance(prev, int):
                # The oracle knows the same-door re-entry cost of the
                # (d, d) loop; plain positions would price it at zero.
                step = self.oracle.d2d(prev, door, via=via)
            else:
                step = self.oracle.pt2d(prev, door)
            distance += step
            added, added_mask = self.item_words_and_mask(door)
            words, sims, mask = self._merge_words(
                words, sims, added, mask, added_mask)
            items = items + (door,)
            via_seq = via_seq + (via,)
            counts[door] = counts.get(door, 0) + 1
            if (via in self.keyword_partitions and via != self.v_ps
                    and via not in kp):
                kp = kp + (via,)
            prev = door
        return Route(items=items, vias=via_seq, distance=distance,
                     words=words, sims=sims, door_counts=counts, kp=kp,
                     words_mask=mask)

    def complete_route(self, route: Route) -> Optional[Route]:
        """Append the terminal point ``pt`` to a route ending at a door
        that enters ``v(pt)`` (or to the bare start route when start
        and terminal share a partition)."""
        pt = self.query.pt
        tail = route.tail
        if isinstance(tail, int):
            cost = self.oracle.d2pt(tail, pt)
        else:
            cost = self.oracle.item_distance(tail, pt)
        if cost == INF:
            return None
        added, added_mask = self.item_words_and_mask(pt)
        words, sims, mask = self._merge_words(
            route.words, route.sims, added, route.words_mask, added_mask)
        return route.extended(pt, self.v_pt, cost, words, sims,
                              route.kp + (self.v_pt,), new_mask=mask)

    # ------------------------------------------------------------------
    # Key partitions and ranking
    # ------------------------------------------------------------------
    def key_partition_sequence(self, route: Route) -> Tuple[int, ...]:
        """``KP(R)``: the sequence of key partitions on a route.

        The start partition always opens the sequence; keyword-covering
        partitions enter at their first traversal; for a complete route
        the terminal partition closes the sequence (paper Section II-B,
        matching Table II).  Routes built through this context carry
        ``KP`` incrementally; :meth:`recompute_key_partitions` derives
        it from scratch (tests assert both agree).
        """
        return route.kp

    def recompute_key_partitions(self, route: Route) -> Tuple[int, ...]:
        """Non-incremental ``KP(R)`` derivation from the via sequence."""
        vias = route.vias
        if not vias:
            return (self.v_ps,)
        body = vias[:-1] if route.is_complete else vias
        kp: List[int] = [self.v_ps]
        seen: Set[int] = {self.v_ps}
        for via in body:
            if via in self.keyword_partitions and via not in seen:
                kp.append(via)
                seen.add(via)
        if route.is_complete:
            kp.append(self.v_pt)
        return tuple(kp)

    def route_popularity(self, route: Route) -> float:
        """Mean popularity of the route's key partitions (in [0, 1]).

        Hallway filler does not count: popularity, like keyword
        relevance, attaches to the places a route *visits for a
        reason* (the paper's future-work sketch ties popularity to
        indoor mobility data over semantic regions).
        """
        if not self.popularity or not route.kp:
            return 0.0
        values = [self.popularity.get(pid, 0.0) for pid in route.kp]
        return sum(values) / len(values)

    def ranking_score(self, route: Route) -> float:
        """``ψ(R)`` of Equation 1 (also defined for partial routes).

        With a soft slack the spatial part can go negative for routes
        exceeding Δ (but within the hard bound).  With ``gamma > 0``
        the γ-weighted popularity term is blended in and the result
        renormalised to keep scores in [−γ', 1].
        """
        return self.score_from_relevance(route, route.relevance)

    def score_from_relevance(self, route: Route, relevance: float) -> float:
        """``ψ(R)`` with an already-computed relevance.

        Callers that need both numbers (stamp construction computes
        relevance anyway) avoid deriving it twice; the arithmetic is
        exactly :meth:`ranking_score`'s.
        """
        alpha = self.alpha
        delta = self.delta
        gamma = self.query.gamma
        keyword_part = relevance / self.full_relevance
        spatial_part = (delta - route.distance) / delta
        psi = alpha * keyword_part + (1 - alpha) * spatial_part
        if gamma > 0.0:
            psi = (psi + gamma * self.route_popularity(route)) / (
                1.0 + gamma)
        return psi

    def upper_bound_score(self, dist_lower_bound: float) -> float:
        """Pruning Rule 4's ``ψU``: keyword part overestimated to 1
        (and popularity to 1 under the γ extension)."""
        alpha = self.alpha
        gamma = self.query.gamma
        upper = alpha + (1 - alpha) * (1.0 - dist_lower_bound / self.delta)
        if gamma > 0.0:
            upper = (upper + gamma) / (1.0 + gamma)
        return upper

    # ------------------------------------------------------------------
    # Lower bounds (pruning rules)
    # ------------------------------------------------------------------
    def _terminal_heads(self):
        heads = self._pt_heads
        if heads is None:
            heads = self._pt_heads = self.skeleton.heads(self.query.pt)
        return heads

    def _start_heads(self):
        heads = self._ps_heads
        if heads is None:
            heads = self._ps_heads = self.skeleton.heads(self.query.ps)
        return heads

    def lb_to_terminal(self, item: Item) -> float:
        """``|x, pt|L`` (cached per door)."""
        skeleton = self.skeleton
        if isinstance(item, int):
            cached = self._lb_to_pt.get(item)
            if cached is None:
                if self._kernel_sweeps:
                    self._lb_to_pt.update(
                        skeleton.lower_bound_sweep_to(
                            self._terminal_heads()))
                    cached = self._lb_to_pt.get(item)
                    if cached is not None:
                        return cached
                if self._use_heads:
                    cached = skeleton.lower_bound_heads(
                        skeleton.heads(item), self._terminal_heads())
                else:
                    cached = skeleton.lower_bound(item, self.query.pt)
                self._lb_to_pt[item] = cached
            return cached
        if self._use_heads:
            return skeleton.lower_bound_heads(
                skeleton.heads(item), self._terminal_heads())
        return skeleton.lower_bound(item, self.query.pt)

    def lb_from_start(self, item: Item) -> float:
        """``|ps, x|L`` (cached per door)."""
        skeleton = self.skeleton
        if isinstance(item, int):
            cached = self._lb_from_ps.get(item)
            if cached is None:
                if self._kernel_sweeps:
                    self._lb_from_ps.update(
                        skeleton.lower_bound_sweep_from(
                            self._start_heads()))
                    cached = self._lb_from_ps.get(item)
                    if cached is not None:
                        return cached
                if self._use_heads:
                    cached = skeleton.lower_bound_heads(
                        self._start_heads(), skeleton.heads(item))
                else:
                    cached = skeleton.lower_bound(self.query.ps, item)
                self._lb_from_ps[item] = cached
            return cached
        if self._use_heads:
            return skeleton.lower_bound_heads(
                self._start_heads(), skeleton.heads(item))
        return skeleton.lower_bound(self.query.ps, item)

    def lb_via_partition(self, source: Item, pid: int) -> float:
        """``δLB(source, v, pt)`` of Pruning Rule 3 / Alg. 6 line 11."""
        if self._use_heads:
            skeleton = self.skeleton
            if source is self.query.ps:
                hs = self._start_heads()
            else:
                hs = skeleton.heads(source)
            return skeleton.lower_bound_via_partition_heads(
                hs, pid, self._terminal_heads(), space=self.space)
        return self.skeleton.lower_bound_via_partition(
            source, pid, self.query.pt)

    # ------------------------------------------------------------------
    # Stage instrumentation (tracing)
    # ------------------------------------------------------------------
    #: Relaxation-stage entry points: the route-growing work ToE/KoE
    #: relax edges with.  Lower-bound entry points are the Rule 1-4
    #: work.  Same split as the bench's engine-wide breakdown, scoped
    #: to one context so concurrent queries never share a timer.
    _RELAXATION_PROBES = ("extend_to_door", "extend_along_path",
                          "complete_route")
    _LOWER_BOUND_PROBES = ("lb_to_terminal", "lb_from_start",
                           "lb_via_partition")

    def attach_stage_probe(self, acc: Dict[str, float]) -> None:
        """Wrap this context's stage entry points with wall-clock
        timers accumulating seconds into ``acc["relaxation"]`` /
        ``acc["lower_bound"]``.

        Instance-local: only this context is instrumented, engine- and
        space-level shared objects are untouched, so concurrent
        untraced queries pay nothing.  A shared reentrancy guard keeps
        nested entry points (none today, but the split must stay
        honest under refactors) from double-counting.  The wrappers
        only time — arguments and results pass through unchanged, so
        answers are bit-identical with the probe attached.
        """
        depth = [0]
        perf_counter = time.perf_counter

        def timed(fn, key):
            def wrapper(*args, **kwargs):
                if depth[0]:
                    return fn(*args, **kwargs)
                depth[0] = 1
                started = perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    depth[0] = 0
                    acc[key] = acc.get(key, 0.0) + (
                        perf_counter() - started)
            return wrapper

        for name in self._RELAXATION_PROBES:
            setattr(self, name, timed(getattr(self, name), "relaxation"))
        for name in self._LOWER_BOUND_PROBES:
            setattr(self, name, timed(getattr(self, name), "lower_bound"))

"""Keyword-oriented expansion — ``KoE_find`` (Algorithm 6) and KoE*.

KoE jumps directly from the current stamp to candidate key partitions
that can cover still-uncovered query keywords (plus the terminal
partition), using shortest *regular* connecting routes instead of
one-hop door expansions:

1. Pruning Rule 5 on the popped stamp,
2. build ``P'`` — the key-partition pool minus the partitions of
   query words the route already covers (never removing the terminal
   partition, which must stay reachable),
3. per candidate partition: Pruning Rule 3 (permanently shrinking the
   pool), then the distance check ``δi + δLB(dk, vj, pt) ≤ Δ``,
4. per enterable door of the candidate: the shortest regular
   connecting route (Lemma 3 justifies keeping only the shortest per
   target door), then Pruning Rules 1 and 4 on the extended route.

``KoEStar`` (KoE* in the paper, Table III) swaps the on-the-fly
Dijkstra for routes served from a precomputed all-pairs door matrix,
falling back to recomputation whenever a cached route violates
regularity against the current prefix or does not leave the current
partition first — the paper's Figs. 13–14 show this trade-off loses
except under the tightest distance constraints.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.framework import (
    Continuation,
    ContinuationProvider,
    ExpansionStrategy,
    IKRQSearch,
)
from repro.core.stamp import Stamp
from repro.space.graph import DoorMatrix

INF = float("inf")


class KeywordOrientedExpansion(ExpansionStrategy):
    """The KoE strategy (paper Section IV-D)."""

    name = "KoE"

    def find(self, search: IKRQSearch, stamp: Stamp) -> List[Stamp]:
        ctx = search.ctx
        config = search.config
        stats = search.stats
        found: List[Stamp] = []

        route = stamp.route
        tail = route.tail
        tail_is_door = isinstance(tail, int)

        if not search.prime_check(stamp):
            return found

        # Candidate key partitions (Algorithm 6 lines 4-7).  The
        # initial stamp keeps the full pool; later stamps drop the
        # partitions of covered query words.  The terminal partition is
        # always re-added: it must stay reachable even when its i-word
        # happens to match a covered keyword.
        pool: Set[int] = set(search.key_partition_pool())
        if tail_is_door:
            for qi in range(ctx.num_keywords):
                if route.sims[qi] > 0.0:
                    pool -= ctx.qk.partitions_for_word(qi)
        pool.add(ctx.v_pt)
        pool.discard(stamp.partition)

        budget = ctx.delta_hard - route.distance
        route_doors = frozenset(route.door_counts)

        for vj in sorted(pool):
            stats.expansions += 1
            # Pruning Rule 3 (lines 9-10).
            if config.use_distance_pruning and vj != ctx.v_pt:
                if not search.partition_admissible(vj):
                    continue
            # Distance check (line 11).
            if config.use_distance_pruning:
                if route.distance + ctx.lb_via_partition(tail, vj) > ctx.delta_hard:
                    stats.pruned_distance += 1
                    continue
            targets = set(ctx.space.p2d_enter(vj))
            # Doors already on the route cannot be re-entered through
            # (regularity), except the tail itself via the loop move,
            # which regular_continuations handles.
            targets -= route_doors - (
                frozenset({tail}) if tail_is_door else frozenset())
            if not targets:
                continue
            paths = search.regular_continuations(stamp, targets, budget)
            for dl, (doors, vias, dist) in paths.items():
                if not doors:
                    continue
                if vj not in ctx.space.d2p_enter(dl):
                    continue
                extended = ctx.extend_along_path(route, doors, vias, dist)
                if extended.distance > ctx.delta_hard:
                    stats.pruned_distance += 1
                    continue
                # Pruning Rule 1 (lines 15-16).
                if config.use_distance_pruning:
                    lower = extended.distance + ctx.lb_to_terminal(dl)
                    if lower > ctx.delta_hard:
                        stats.pruned_rule1 += 1
                        continue
                else:
                    lower = extended.distance
                # Pruning Rule 4 (lines 17-18).
                if config.use_kbound_pruning:
                    if ctx.upper_bound_score(lower) <= search.kbound:
                        stats.pruned_rule4 += 1
                        continue
                next_stamp = search.make_stamp(vj, extended)
                search.prime_update(next_stamp)
                found.append(next_stamp)
        return found


class MatrixContinuationProvider(ContinuationProvider):
    """Continuations served from a precomputed door matrix (KoE*).

    A cached route is usable only when its first segment traverses the
    required partition and no door of it is banned; otherwise the
    target falls back to the on-the-fly Dijkstra, and the paper's
    recomputation penalty is exactly this fallback.
    """

    def __init__(self, matrix: DoorMatrix) -> None:
        self.matrix = matrix

    def nonloop(self,
                search: IKRQSearch,
                tail,
                first_via: int,
                targets: Set[int],
                banned: FrozenSet[int],
                budget: float) -> Dict[int, Continuation]:
        if not isinstance(tail, int):
            return super().nonloop(
                search, tail, first_via, targets, banned, budget)
        stats = search.stats
        out: Dict[int, Continuation] = {}
        missing: Set[int] = set()
        for target in targets:
            cached = self.matrix.route(tail, target)
            if cached is None or cached[2] > budget:
                # Unreachable or over budget on the unconstrained
                # graph: no constrained route can do better.
                continue
            doors, vias, dist = cached
            usable = (bool(doors)
                      and vias[0] == first_via
                      and not any(d in banned for d in doors)
                      and tail not in doors)
            if usable:
                stats.precomputed_hits += 1
                out[target] = cached
            else:
                stats.precomputed_misses += 1
                missing.add(target)
        if missing:
            out.update(super().nonloop(
                search, tail, first_via, missing, banned, budget))
        return out


class KoEStar(KeywordOrientedExpansion):
    """KoE with precomputed all-pairs shortest door routes."""

    name = "KoE*"

    def __init__(self, matrix: Optional[DoorMatrix] = None) -> None:
        self.matrix = matrix
        self._evictions_at_prepare = 0

    def prepare(self, search: IKRQSearch) -> None:
        if self.matrix is None:
            self.matrix = DoorMatrix(search.ctx.graph, eager=True)
        search.provider = MatrixContinuationProvider(self.matrix)
        search.stats.aux_bytes += self.matrix.estimated_bytes()
        self._evictions_at_prepare = self.matrix.evictions

    def finish(self, search: IKRQSearch) -> None:
        # The matrix's eviction delta observed over this search.  With
        # a matrix shared by concurrent batched searches the counter is
        # approximate (other threads' evictions land in whichever
        # searches overlap them); it is exact in sequential use.
        search.stats.matrix_evictions = (
            self.matrix.evictions - self._evictions_at_prepare)

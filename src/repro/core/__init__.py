"""The paper's primary contribution: IKRQ query processing.

Public surface:

* :class:`IKRQ` — the query object of Problem 1,
* :class:`IKRQEngine` — evaluate queries over a space + keyword index,
* :class:`Route`, :class:`RouteResult`, :class:`QueryAnswer` — results,
* :data:`ALGORITHMS` — the paper's algorithm/variant names,
* lower-level building blocks (:class:`IKRQSearch`,
  :class:`SearchConfig`, the expansion strategies, the prime table)
  for users composing their own variants.
"""

from repro.core.directions import Step, directions, render_directions
from repro.core.engine import (
    ALGORITHMS,
    IKRQEngine,
    QueryAnswer,
    QueryService,
    ServiceStats,
    canonical_algorithm,
    config_for,
)
from repro.core.framework import (
    ContinuationProvider,
    ExpansionStrategy,
    IKRQSearch,
    SearchConfig,
)
from repro.core.koe import KeywordOrientedExpansion, KoEStar
from repro.core.naive import NaiveSearch
from repro.core.prime import PrimeTable
from repro.core.query import IKRQ, QueryContext
from repro.core.results import RouteResult, TopKResults
from repro.core.route import Route
from repro.core.stamp import Stamp
from repro.core.stats import SearchStats
from repro.core.toe import TopologyOrientedExpansion

__all__ = [
    "ALGORITHMS",
    "ContinuationProvider",
    "ExpansionStrategy",
    "IKRQ",
    "IKRQEngine",
    "IKRQSearch",
    "KeywordOrientedExpansion",
    "KoEStar",
    "NaiveSearch",
    "PrimeTable",
    "QueryAnswer",
    "QueryContext",
    "QueryService",
    "ServiceStats",
    "Route",
    "RouteResult",
    "SearchConfig",
    "SearchStats",
    "Stamp",
    "Step",
    "TopKResults",
    "TopologyOrientedExpansion",
    "canonical_algorithm",
    "config_for",
    "directions",
    "render_directions",
]

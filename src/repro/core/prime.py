"""The prime-route table ``Hprime`` (Algorithms 3 and 4).

Homogeneous routes share the hash key ``(R.tail, KP(R))`` — all
expanding routes share the head ``ps``, so tail plus key-partition
sequence identifies the homogeneity class.  The table records the
shortest distance seen per class; a route longer than its class record
is not (temporarily) prime and is pruned by Pruning Rule 5.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Hash key of a homogeneity class: (tail door id or -1 for a point
#: tail, key partition sequence).
PrimeKey = Tuple[int, Tuple[int, ...]]


class PrimeTable:
    """Shortest-distance-per-homogeneity-class hashtable.

    ``check`` implements Algorithm 3 and ``update`` Algorithm 4.  A
    route whose distance *equals* the recorded class distance passes
    the check: the record is normally the route's own earlier update
    (stamps are checked again when popped from the queue after having
    been recorded at creation).
    """

    def __init__(self) -> None:
        self._table: Dict[PrimeKey, float] = {}
        self.checks = 0
        self.rejections = 0

    @staticmethod
    def key(tail, kp: Tuple[int, ...]) -> PrimeKey:
        tail_id = tail if isinstance(tail, int) else -1
        return (tail_id, kp)

    def check(self, tail, kp: Tuple[int, ...], distance: float) -> bool:
        """Algorithm 3: is the route (temporarily) prime?"""
        self.checks += 1
        recorded = self._table.get(self.key(tail, kp))
        if recorded is None or recorded >= distance:
            return True
        self.rejections += 1
        return False

    def update(self, tail, kp: Tuple[int, ...], distance: float) -> bool:
        """Algorithm 4: record the route if it is the class's shortest.

        Returns whether the table changed.
        """
        key = self.key(tail, kp)
        recorded = self._table.get(key)
        if recorded is None or recorded > distance:
            self._table[key] = distance
            return True
        return False

    def best(self, tail, kp: Tuple[int, ...]) -> float:
        """The recorded class distance (``inf`` when absent)."""
        return self._table.get(self.key(tail, kp), float("inf"))

    def export_entries(self) -> list:
        """The table as sorted JSON-serialisable ``[tail, kp, dist]`` rows.

        Serve snapshots persist a table learned from traffic as an
        advisory artifact (diagnostics / offline analysis); live query
        evaluation always starts from an empty per-search table, so a
        snapshotted table never changes results.
        """
        return [[tail, list(kp), dist]
                for (tail, kp), dist in sorted(self._table.items())]

    @classmethod
    def from_entries(cls, entries: list) -> "PrimeTable":
        """Rebuild a table from :meth:`export_entries` rows."""
        table = cls()
        for tail, kp, dist in entries:
            table._table[(tail, tuple(kp))] = dist
        return table

    def __len__(self) -> int:
        return len(self._table)

    def estimated_bytes(self) -> int:
        """Rough footprint, counted towards the memory metric."""
        total = 0
        for (tail, kp) in self._table:
            total += 80 + 8 * len(kp)
        return total

"""The public IKRQ engine facade and the algorithm registry.

:class:`IKRQEngine` bundles an indoor space with its keyword index and
the shared routing oracles (door graph, skeleton index, distance
oracle), and evaluates :class:`~repro.core.query.IKRQ` queries with
any of the paper's algorithms:

===========  =====================================================
name          meaning
===========  =====================================================
``ToE``       topology-oriented expansion, all pruning rules
``KoE``       keyword-oriented expansion, all pruning rules
``ToE-D``     ToE without distance Pruning Rules 1–3 (paper ToE\\D)
``ToE-B``     ToE without kbound Pruning Rule 4 (ToE\\B)
``ToE-P``     ToE without prime Pruning Rule 5 (ToE\\P)
``KoE-D``     KoE without distance pruning (KoE\\D)
``KoE-B``     KoE without kbound pruning (KoE\\B)
``KoE*``      KoE with precomputed door-to-door routes
``naive``     exhaustive baseline (ground truth, small venues only)
===========  =====================================================

Paper-style spellings (``ToE\\D`` …) are accepted as aliases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.geometry import Point
from repro.keywords.mappings import KeywordIndex
from repro.space.distances import DistanceOracle
from repro.space.graph import DoorGraph, DoorMatrix
from repro.space.indoor_space import IndoorSpace
from repro.space.skeleton import SkeletonIndex
from repro.core.framework import IKRQSearch, SearchConfig
from repro.core.koe import KeywordOrientedExpansion, KoEStar
from repro.core.naive import NaiveSearch
from repro.core.query import IKRQ, QueryContext
from repro.core.results import RouteResult
from repro.core.stats import SearchStats
from repro.core.toe import TopologyOrientedExpansion

#: Canonical algorithm names, in the paper's Table III order.
ALGORITHMS: Tuple[str, ...] = (
    "ToE", "ToE-D", "ToE-B", "ToE-P",
    "KoE", "KoE-D", "KoE-B", "KoE*",
)

_ALIASES: Dict[str, str] = {
    "toe": "ToE", "koe": "KoE", "koe*": "KoE*", "koestar": "KoE*",
    "toe\\d": "ToE-D", "toe\\b": "ToE-B", "toe\\p": "ToE-P",
    "koe\\d": "KoE-D", "koe\\b": "KoE-B",
    "toe-d": "ToE-D", "toe-b": "ToE-B", "toe-p": "ToE-P",
    "koe-d": "KoE-D", "koe-b": "KoE-B",
    "naive": "naive", "baseline": "naive",
}


def canonical_algorithm(name: str) -> str:
    """Resolve an algorithm name or alias to its canonical form."""
    key = name.strip().lower()
    if key in _ALIASES:
        return _ALIASES[key]
    raise ValueError(
        f"unknown algorithm {name!r}; choose from {ALGORITHMS + ('naive',)}")


def config_for(name: str,
               max_expansions: Optional[int] = None,
               exhaustive: bool = False) -> SearchConfig:
    """The :class:`SearchConfig` of a canonical algorithm name.

    ``exhaustive=True`` disables Algorithm 5's stop-after-coverage
    heuristic so the result multiset matches the naive baseline.
    """
    canonical = canonical_algorithm(name)
    return SearchConfig(
        use_distance_pruning=not canonical.endswith("-D"),
        use_kbound_pruning=not canonical.endswith("-B"),
        use_prime_pruning=not canonical.endswith("-P"),
        expand_after_coverage=exhaustive,
        max_expansions=max_expansions,
    )


@dataclass
class QueryAnswer:
    """The outcome of one query evaluation."""

    query: IKRQ
    algorithm: str
    routes: List[RouteResult]
    stats: SearchStats

    @property
    def best(self) -> Optional[RouteResult]:
        return self.routes[0] if self.routes else None

    def scores(self) -> List[float]:
        return [r.score for r in self.routes]

    def distances(self) -> List[float]:
        return [r.distance for r in self.routes]


class IKRQEngine:
    """Evaluate IKRQ queries over an indoor space with keywords.

    The engine owns the per-space oracles and shares them across
    queries; the KoE* door matrix is built lazily on first use (its
    construction cost is part of what the paper measures against).

    Example::

        engine = IKRQEngine(space, kindex)
        answer = engine.query(ps, pt, delta=120.0,
                              keywords=["latte", "apple"], k=3)
        for r in answer.routes:
            print(r.score, r.route.describe(space))
    """

    def __init__(self,
                 space: IndoorSpace,
                 kindex: KeywordIndex,
                 popularity: Optional[Dict[int, float]] = None) -> None:
        self.space = space
        self.kindex = kindex
        #: Optional partition-popularity map for the γ-weighted ranking
        #: extension (values in [0, 1]; see IKRQ.gamma).
        self.popularity = popularity or {}
        self.oracle = DistanceOracle(space)
        self.graph = DoorGraph(space, self.oracle)
        self.skeleton = SkeletonIndex(space)
        self._matrix: Optional[DoorMatrix] = None

    # ------------------------------------------------------------------
    def context(self, query: IKRQ) -> QueryContext:
        """A fresh per-query context sharing the engine's oracles."""
        return QueryContext(
            space=self.space,
            kindex=self.kindex,
            query=query,
            graph=self.graph,
            skeleton=self.skeleton,
            oracle=self.oracle,
            popularity=self.popularity,
        )

    def door_matrix(self) -> DoorMatrix:
        """The (lazily built, eagerly filled) KoE* door matrix."""
        if self._matrix is None:
            self._matrix = DoorMatrix(self.graph, eager=True)
        return self._matrix

    # ------------------------------------------------------------------
    def search(self,
               query: IKRQ,
               algorithm: str = "ToE",
               max_expansions: Optional[int] = None,
               config: Optional["SearchConfig"] = None) -> QueryAnswer:
        """Evaluate ``query`` with the named algorithm.

        ``config`` overrides the name-derived :class:`SearchConfig`
        (the strategy — ToE vs. KoE — still follows the name).
        """
        canonical = canonical_algorithm(algorithm)
        ctx = self.context(query)
        if canonical == "naive":
            naive = NaiveSearch(ctx)
            routes = naive.run()
            return QueryAnswer(query, canonical, routes, naive.stats)
        if config is None:
            config = config_for(canonical, max_expansions=max_expansions)
        if canonical.startswith("ToE"):
            strategy = TopologyOrientedExpansion()
        elif canonical == "KoE*":
            strategy = KoEStar(self.door_matrix())
        else:
            strategy = KeywordOrientedExpansion()
        search = IKRQSearch(ctx, strategy, config)
        routes = search.run()
        return QueryAnswer(query, canonical, routes, search.stats)

    def query(self,
              ps: Point,
              pt: Point,
              delta: float,
              keywords: Sequence[str],
              k: int = 1,
              alpha: float = 0.5,
              tau: float = 0.2,
              algorithm: str = "ToE") -> QueryAnswer:
        """Convenience wrapper building the :class:`IKRQ` inline."""
        ikrq = IKRQ(ps=ps, pt=pt, delta=delta,
                    keywords=tuple(keywords), k=k, alpha=alpha, tau=tau)
        return self.search(ikrq, algorithm=algorithm)

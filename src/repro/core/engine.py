"""The public IKRQ engine facade, the algorithm registry, and the
batched :class:`QueryService` layer.

:class:`IKRQEngine` bundles an indoor space with its keyword index and
the shared routing oracles (door graph, skeleton index, distance
oracle), and evaluates :class:`~repro.core.query.IKRQ` queries with
any of the paper's algorithms.  :class:`QueryService` sits on top of
one engine and evaluates many queries over the shared immutable
oracles — thread-pool fan-out, per-thread Dijkstra workspaces, and
LRU caches for per-endpoint state that repeats across traffic.

The algorithms:

===========  =====================================================
name          meaning
===========  =====================================================
``ToE``       topology-oriented expansion, all pruning rules
``KoE``       keyword-oriented expansion, all pruning rules
``ToE-D``     ToE without distance Pruning Rules 1–3 (paper ToE\\D)
``ToE-B``     ToE without kbound Pruning Rule 4 (ToE\\B)
``ToE-P``     ToE without prime Pruning Rule 5 (ToE\\P)
``KoE-D``     KoE without distance pruning (KoE\\D)
``KoE-B``     KoE without kbound pruning (KoE\\B)
``KoE*``      KoE with precomputed door-to-door routes
``naive``     exhaustive baseline (ground truth, small venues only)
===========  =====================================================

Paper-style spellings (``ToE\\D`` …) are accepted as aliases.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.dynamic.overlay import ClosureOverlay, apply_closures
from repro.geometry import Point
from repro.keywords.matching import QueryKeywords
from repro.keywords.mappings import KeywordIndex
from repro.space.distances import DistanceOracle
from repro.space.graph import DijkstraWorkspace, DoorGraph, DoorMatrix
from repro.space.indoor_space import IndoorSpace
from repro.space.skeleton import SkeletonIndex
from repro.core.framework import IKRQSearch, SearchConfig
from repro.core.koe import KeywordOrientedExpansion, KoEStar
from repro.core.naive import NaiveSearch
from repro.core.query import IKRQ, QueryContext
from repro.core.results import RouteResult
from repro.core.stats import SearchStats
from repro.core.toe import TopologyOrientedExpansion

#: Canonical algorithm names, in the paper's Table III order.
ALGORITHMS: Tuple[str, ...] = (
    "ToE", "ToE-D", "ToE-B", "ToE-P",
    "KoE", "KoE-D", "KoE-B", "KoE*",
)

_ALIASES: Dict[str, str] = {
    "toe": "ToE", "koe": "KoE", "koe*": "KoE*", "koestar": "KoE*",
    "toe\\d": "ToE-D", "toe\\b": "ToE-B", "toe\\p": "ToE-P",
    "koe\\d": "KoE-D", "koe\\b": "KoE-B",
    "toe-d": "ToE-D", "toe-b": "ToE-B", "toe-p": "ToE-P",
    "koe-d": "KoE-D", "koe-b": "KoE-B",
    "naive": "naive", "baseline": "naive",
}


def canonical_algorithm(name: str) -> str:
    """Resolve an algorithm name or alias to its canonical form."""
    key = name.strip().lower()
    if key in _ALIASES:
        return _ALIASES[key]
    by_canonical: Dict[str, List[str]] = {}
    for alias, canonical in _ALIASES.items():
        if alias != canonical.lower():
            by_canonical.setdefault(canonical, []).append(alias)
    accepted = ", ".join(
        name + (" (aliases: " + ", ".join(sorted(by_canonical[name])) + ")"
                if by_canonical.get(name) else "")
        for name in ALGORITHMS + ("naive",))
    raise ValueError(
        f"unknown algorithm {name!r}; accepted names: {accepted}")


def config_for(name: str,
               max_expansions: Optional[int] = None,
               exhaustive: bool = False) -> SearchConfig:
    """The :class:`SearchConfig` of a canonical algorithm name.

    ``exhaustive=True`` disables Algorithm 5's stop-after-coverage
    heuristic so the result multiset matches the naive baseline.
    """
    canonical = canonical_algorithm(name)
    return SearchConfig(
        use_distance_pruning=not canonical.endswith("-D"),
        use_kbound_pruning=not canonical.endswith("-B"),
        use_prime_pruning=not canonical.endswith("-P"),
        expand_after_coverage=exhaustive,
        max_expansions=max_expansions,
    )


@dataclass
class QueryAnswer:
    """The outcome of one query evaluation."""

    query: IKRQ
    algorithm: str
    routes: List[RouteResult]
    stats: SearchStats

    @property
    def best(self) -> Optional[RouteResult]:
        return self.routes[0] if self.routes else None

    def scores(self) -> List[float]:
        return [r.score for r in self.routes]

    def distances(self) -> List[float]:
        return [r.distance for r in self.routes]


class OverlayState:
    """Per-overlay derived state held by the engine's overlay LRU.

    One instance exists per distinct :class:`ClosureOverlay` the engine
    has recently served.  It bundles everything whose value depends on
    the overlay's topology edits:

    ``view``
        the physically edited :class:`IndoorSpace` from
        :func:`apply_closures` — same partitions and doors (dense CSR
        indexing preserved), closed doors stripped of their
        enters/leaves, sealed partitions detached from every door.
    ``oracle``
        a fresh :class:`DistanceOracle` over the view.  The oracle's
        d2d/pt2d answers test partition membership, so it cannot be
        shared with the base space; construction is O(1) and its
        caches fill lazily.
    ``door_iwords`` / ``door_iword_masks``
        the per-door keyword caches, keyed by the *view's* p2d sets
        (a sealed partition stops contributing its i-word).
    ``matrix``
        the overlay-scoped KoE* door matrix, built lazily under
        ``matrix_lock``.  Its rows are Dijkstra trees over the *base*
        CSR graph with the overlay's banned sets — byte-identical to
        a matrix built on a rebuilt engine, because the edited space
        yields the same dense door indexing and edge order.
    """

    __slots__ = ("overlay", "view", "oracle", "door_iwords",
                 "door_iword_masks", "matrix", "matrix_lock")

    def __init__(self, overlay: ClosureOverlay, view: IndoorSpace) -> None:
        self.overlay = overlay
        self.view = view
        self.oracle = DistanceOracle(view)
        self.door_iwords: Dict[int, frozenset] = {}
        self.door_iword_masks: Dict[int, int] = {}
        self.matrix: Optional[DoorMatrix] = None
        self.matrix_lock = threading.Lock()


class IKRQEngine:
    """Evaluate IKRQ queries over an indoor space with keywords.

    The engine owns the per-space oracles and shares them across
    queries; the KoE* door matrix is built lazily on first use (its
    construction cost is part of what the paper measures against).

    Example::

        engine = IKRQEngine(space, kindex)
        answer = engine.query(ps, pt, delta=120.0,
                              keywords=["latte", "apple"], k=3)
        for r in answer.routes:
            print(r.score, r.route.describe(space))
    """

    #: Payload bytes backed by a shared ``mmap`` of the engine's
    #: snapshot file (set by ``load_snapshot(..., mmap=True)``); 0 for
    #: engines whose buffers live on the process heap.
    mapped_bytes: int = 0
    #: The mapping object keeping those buffers alive (internal).
    _snapshot_mmap = None

    def __init__(self,
                 space: IndoorSpace,
                 kindex: KeywordIndex,
                 popularity: Optional[Dict[int, float]] = None,
                 door_matrix_eager: bool = True,
                 door_matrix_max_rows: Optional[int] = None,
                 door_matrix_spill_path: Optional[str] = None,
                 *,
                 oracle: Optional[DistanceOracle] = None,
                 graph: Optional[DoorGraph] = None,
                 skeleton: Optional[SkeletonIndex] = None,
                 door_matrix: Optional[DoorMatrix] = None,
                 kernel: Optional[str] = None) -> None:
        self.space = space
        self.kindex = kindex
        #: Optional partition-popularity map for the γ-weighted ranking
        #: extension (values in [0, 1]; see IKRQ.gamma).
        self.popularity = popularity or {}
        # Prebuilt oracles may be injected (the serve snapshot loader
        # passes deserialised indexes so workers skip every build); by
        # default each engine builds its own.
        if graph is not None and oracle is None:
            oracle = graph.oracle
        self.oracle = oracle or DistanceOracle(space)
        self.graph = graph or DoorGraph(space, self.oracle)
        self.skeleton = skeleton or SkeletonIndex(space)
        # Kernel tier selection: ``None`` consults ``REPRO_KERNEL`` and
        # defaults to the interpreted core; ``auto`` walks
        # native > numpy > python and degrades cleanly.  Every backend
        # is bit-identical, so this is purely a speed knob.  The
        # hasattr guards keep injected reference oracles (the dict
        # cores kept for gating) working without kernel hooks.
        from repro.space.kernels import get_suite
        suite = get_suite(kernel)
        self.kernel_requested = kernel
        self.kernel_backend = suite.name
        if hasattr(self.graph, "set_kernel"):
            self.graph.set_kernel(suite)
        else:
            self.kernel_backend = "python"
        if hasattr(self.skeleton, "set_kernel"):
            self.skeleton.set_kernel(suite)
        #: Whether the KoE* door matrix is filled eagerly when first
        #: requested.  The matrix itself defaults to lazy rows (the
        #: mode the paper measures against); the engine defaults to
        #: eager because it amortises one matrix over many queries —
        #: this flag makes that an explicit, documented engine choice.
        self.door_matrix_eager = door_matrix_eager
        #: Optional memory budget: maximum resident matrix rows (LRU).
        self.door_matrix_max_rows = door_matrix_max_rows
        #: Optional disk spill tier under that budget: evicted rows go
        #: to this per-engine row-cache file and fault back on demand.
        self.door_matrix_spill_path = door_matrix_spill_path
        self._matrix: Optional[DoorMatrix] = door_matrix
        self._matrix_lock = threading.Lock()
        #: Engine-wide door -> i-words cache, shared into every query
        #: context.  The values are pure in (space, keyword index) —
        #: exactly what each context would derive itself — so sharing
        #: changes no answer; it only stops sequential traffic from
        #: re-deriving the same frozensets query after query.
        self._door_iwords: Dict[int, frozenset] = {}
        #: Its interned-bitmask mirror (door -> mask, -1 for a door
        #: whose words cannot all be interned) — pure in the same
        #: inputs, backing the route-word masks carried on routes.
        self._door_iword_masks: Dict[int, int] = {}
        #: Engine-wide per-endpoint skeleton lower-bound maps (the
        #: ``|ps, d|L`` / ``|d, pt|L`` caches of Pruning Rules 1–4),
        #: LRU-bounded by endpoint.  The maps are pure in the space and
        #: the endpoint — the batched ``QueryService`` has always
        #: shared them per ``(ps, pt)`` pair; holding them here extends
        #: the same exact reuse to bare sequential ``search`` traffic,
        #: which in practice repeats endpoints (kiosks, app sessions).
        self.endpoint_lb_capacity = 256
        self._lb_from_cache: "OrderedDict[Point, dict]" = OrderedDict()
        self._lb_to_cache: "OrderedDict[Point, dict]" = OrderedDict()
        self._lb_lock = threading.Lock()
        #: Per-overlay derived state (edited topology view, oracle,
        #: keyword caches, KoE* matrix), LRU-keyed by the overlay's
        #: canonical identity.  Everything topology-dependent lives
        #: here so no cache can serve one overlay's values to another;
        #: the CSR graph, skeleton and endpoint lower-bound LRUs are
        #: shared — they are pure geometry over door positions, which
        #: closures never move.
        self.overlay_cache_capacity = 8
        self._overlay_states: "OrderedDict[tuple, OverlayState]" = OrderedDict()
        self._overlay_lock = threading.Lock()

    def _endpoint_lb(self,
                     table: "OrderedDict[Point, dict]",
                     endpoint: Point) -> dict:
        with self._lb_lock:
            cached = table.get(endpoint)
            if cached is None:
                cached = table[endpoint] = {}
            table.move_to_end(endpoint)
            while len(table) > self.endpoint_lb_capacity:
                table.popitem(last=False)
            return cached

    # ------------------------------------------------------------------
    def overlay_state(self, overlay: ClosureOverlay) -> OverlayState:
        """The cached :class:`OverlayState` for ``overlay`` (LRU).

        The edited view is built outside the lock (``apply_closures``
        walks every door once); insertion races resolve to whichever
        state landed first, so concurrent queries under the same
        overlay share one oracle, keyword cache and KoE* matrix.
        """
        key = overlay.key()
        with self._overlay_lock:
            state = self._overlay_states.get(key)
            if state is not None:
                self._overlay_states.move_to_end(key)
                return state
        view = apply_closures(self.space, overlay)
        with self._overlay_lock:
            state = self._overlay_states.get(key)
            if state is None:
                state = self._overlay_states[key] = OverlayState(
                    overlay, view)
            self._overlay_states.move_to_end(key)
            while len(self._overlay_states) > self.overlay_cache_capacity:
                self._overlay_states.popitem(last=False)
            return state

    def _overlay_matrix(self, state: OverlayState) -> DoorMatrix:
        """The overlay-scoped KoE* matrix, built lazily per state.

        Always lazy-row and never spilled: spilled rows carry no
        banned-set identity (the :class:`DoorMatrix` constructor
        rejects that combination), and eager fill would recompute the
        whole matrix for what is typically a short-lived overlay.
        Row values are identical to a rebuilt engine's eager matrix —
        eagerness only changes *when* rows are computed.
        """
        with state.matrix_lock:
            if state.matrix is None:
                state.matrix = DoorMatrix(
                    self.graph,
                    max_rows=self.door_matrix_max_rows,
                    banned=state.overlay.closed_doors,
                    banned_partitions=(state.overlay.sealed_partitions
                                       or None))
            return state.matrix

    def context(self,
                query: IKRQ,
                workspace: Optional[DijkstraWorkspace] = None,
                qk: Optional[QueryKeywords] = None,
                endpoint_caches: bool = True,
                overlay: Optional[ClosureOverlay] = None) -> QueryContext:
        """A fresh per-query context sharing the engine's oracles.

        ``endpoint_caches=False`` skips attaching the engine-level
        per-endpoint lower-bound LRU — the batched ``QueryService``
        passes its own per-``(ps, pt)`` maps instead and must not
        churn (or pollute) the engine's LRU on its hot path.

        A non-empty ``overlay`` swaps in the overlay state's edited
        space view and oracle, carries the closure sets on the context
        (the route expansion unions them into every Dijkstra call),
        and shares the overlay-scoped keyword caches instead of the
        engine-wide ones.  The CSR graph, skeleton and endpoint
        lower-bound maps stay shared: they are pure geometry over door
        positions, which closures never move.
        """
        if overlay is not None and overlay.is_empty:
            overlay = None
        if overlay is None:
            ctx = QueryContext(
                space=self.space,
                kindex=self.kindex,
                query=query,
                graph=self.graph,
                skeleton=self.skeleton,
                oracle=self.oracle,
                popularity=self.popularity,
                workspace=workspace,
                qk=qk,
            )
            ctx.share_caches(door_iwords=self._door_iwords,
                             door_iword_masks=self._door_iword_masks)
        else:
            state = self.overlay_state(overlay)
            ctx = QueryContext(
                space=state.view,
                kindex=self.kindex,
                query=query,
                graph=self.graph,
                skeleton=self.skeleton,
                oracle=state.oracle,
                popularity=self.popularity,
                workspace=workspace,
                qk=qk,
                closed_doors=overlay.closed_doors,
                sealed_partitions=overlay.sealed_partitions,
            )
            ctx.share_caches(door_iwords=state.door_iwords,
                             door_iword_masks=state.door_iword_masks)
        if endpoint_caches:
            ctx.share_caches(
                lb_from_ps=self._endpoint_lb(self._lb_from_cache, query.ps),
                lb_to_pt=self._endpoint_lb(self._lb_to_cache, query.pt))
        return ctx

    def kernel_info(self) -> Dict[str, object]:
        """Operator-facing kernel state: requested, active, available."""
        from repro.space.kernels import kernel_info
        info = kernel_info(self.kernel_requested)
        info["active"] = self.kernel_backend
        return info

    def door_matrix(self) -> DoorMatrix:
        """The lazily constructed KoE* door matrix.

        Whether its rows are prebuilt (and how many stay resident) is
        the engine choice configured by ``door_matrix_eager`` /
        ``door_matrix_max_rows``.  Thread-safe: concurrent batched
        queries build the matrix exactly once.
        """
        with self._matrix_lock:
            if self._matrix is None:
                self._matrix = DoorMatrix(
                    self.graph, eager=self.door_matrix_eager,
                    max_rows=self.door_matrix_max_rows,
                    spill_path=self.door_matrix_spill_path)
            return self._matrix

    def keyword_sibling(self, kindex: KeywordIndex) -> "IKRQEngine":
        """An engine over the same topology with a different keyword
        index — the shard workers' keyword-delta variants.

        The heavy immutable indexes (CSR graph, skeleton, distance
        oracle, any already-built KoE* matrix, the mapped snapshot
        buffers) are shared by reference; everything keyword-dependent
        (door i-word caches, overlay states, endpoint LRUs) starts
        fresh.  The spill path deliberately does not carry over: the
        base engine owns that file, and a not-yet-built matrix simply
        builds heap-resident in the sibling.
        """
        sibling = IKRQEngine(
            self.space, kindex, popularity=self.popularity,
            door_matrix_eager=self.door_matrix_eager,
            door_matrix_max_rows=self.door_matrix_max_rows,
            oracle=self.oracle, graph=self.graph, skeleton=self.skeleton,
            door_matrix=self._matrix, kernel=self.kernel_requested)
        sibling.kernel_backend = self.kernel_backend
        sibling.mapped_bytes = self.mapped_bytes
        sibling._snapshot_mmap = self._snapshot_mmap
        return sibling

    def memory_breakdown(self) -> Dict[str, int]:
        """Where this engine's index bytes live: heap, mapped, or disk.

        ``heap_bytes`` counts the typed index buffers resident on the
        process heap (CSR graph arrays, the flat δs2s table, heap
        matrix rows); ``mapped_bytes`` counts buffers that are
        ``memoryview`` slices of a shared snapshot mapping — page-cache
        pages every co-hosted process reuses, not per-process memory.
        ``spilled_bytes``/``spilled_rows`` report the matrix's disk
        tier.  Python-object state (the venue model, door-index dicts,
        caches) is deliberately out of scope: it is small next to the
        buffers and identical across load modes.
        """
        from repro.space.graph import buffer_nbytes
        graph = self.graph
        heap = mapped = 0
        buffers = [getattr(graph, name, None)
                   for name in ("_door_ids", "_indptr", "_nbr",
                                "_via", "_wt")]
        buffers.append(getattr(self.skeleton, "_s2s", None))
        for buf in buffers:
            if buf is None:  # dict reference core: no flat buffers
                continue
            if isinstance(buf, memoryview):
                mapped += buffer_nbytes(buf)
            else:
                heap += buffer_nbytes(buf)
        breakdown = {
            "heap_bytes": heap,
            "mapped_bytes": mapped,
            "spilled_bytes": 0,
            "spilled_rows": 0,
            "matrix_resident_rows": 0,
        }
        matrix = self._matrix
        if matrix is not None:
            counters = matrix.memory_counters()
            breakdown["heap_bytes"] += counters["resident_heap_bytes"]
            breakdown["mapped_bytes"] += counters["resident_mapped_bytes"]
            breakdown["spilled_bytes"] = counters["spilled_bytes"]
            breakdown["spilled_rows"] = counters["spilled_rows"]
            breakdown["matrix_resident_rows"] = counters["resident_rows"]
        return breakdown

    # ------------------------------------------------------------------
    def search(self,
               query: IKRQ,
               algorithm: str = "ToE",
               max_expansions: Optional[int] = None,
               config: Optional["SearchConfig"] = None,
               context: Optional[QueryContext] = None,
               overlay=None) -> QueryAnswer:
        """Evaluate ``query`` with the named algorithm.

        ``config`` overrides the name-derived :class:`SearchConfig`
        (the strategy — ToE vs. KoE — still follows the name).
        ``context`` supplies a prebuilt :class:`QueryContext` (the
        batched :class:`QueryService` passes one carrying a per-thread
        workspace and shared caches); it must wrap the same ``query``
        and, when an ``overlay`` is also given, have been built for
        that same overlay.

        ``overlay`` applies a :class:`ClosureOverlay` (or its wire
        ``dict`` form) for this evaluation only: answers are exactly
        those of an engine rebuilt on the physically edited venue
        (``tests/test_dynamic.py`` pins that byte-for-byte).
        """
        canonical = canonical_algorithm(algorithm)
        overlay = ClosureOverlay.from_wire(overlay)
        if overlay is not None and overlay.is_empty:
            overlay = None
        if overlay is not None:
            overlay.validate(self.space)
        ctx = (context if context is not None
               else self.context(query, overlay=overlay))
        if canonical == "naive":
            naive = NaiveSearch(ctx)
            routes = naive.run()
            return QueryAnswer(query, canonical, routes, naive.stats)
        if config is None:
            config = config_for(canonical, max_expansions=max_expansions)
        if canonical.startswith("ToE"):
            strategy = TopologyOrientedExpansion()
        elif canonical == "KoE*":
            if overlay is not None:
                strategy = KoEStar(
                    self._overlay_matrix(self.overlay_state(overlay)))
            else:
                strategy = KoEStar(self.door_matrix())
        else:
            strategy = KeywordOrientedExpansion()
        search = IKRQSearch(ctx, strategy, config)
        routes = search.run()
        return QueryAnswer(query, canonical, routes, search.stats)

    def query(self,
              ps: Point,
              pt: Point,
              delta: float,
              keywords: Sequence[str],
              k: int = 1,
              alpha: float = 0.5,
              tau: float = 0.2,
              algorithm: str = "ToE") -> QueryAnswer:
        """Convenience wrapper building the :class:`IKRQ` inline."""
        ikrq = IKRQ(ps=ps, pt=pt, delta=delta,
                    keywords=tuple(keywords), k=k, alpha=alpha, tau=tau)
        return self.search(ikrq, algorithm=algorithm)


class ServiceStats:
    """Aggregate counters of one :class:`QueryService` instance.

    Counters mutate through :meth:`add` and are read through
    :meth:`snapshot` / :meth:`as_dict`, all under one internal lock, so
    a shard worker reporting stats mid-traffic never observes torn
    state (e.g. cache hits and misses that sum to more than the
    queries served).  Plain attribute reads stay available for
    single-threaded callers and tests.

    ``door_matrix_evictions`` — like the spill-tier trio
    ``door_matrix_spills`` (rows written to the disk tier),
    ``door_matrix_spill_hits`` (rows faulted back instead of
    recomputed) and ``door_matrix_spill_misses`` (misses with no
    spilled copy) — is a gauge, not a counter: it mirrors the
    engine-held KoE* matrix's lifetime count and is filled in by
    :meth:`QueryService.stats_snapshot` (per shard, in the sharded
    server).
    """

    FIELDS: Tuple[str, ...] = (
        "queries_served", "batches",
        "point_map_hits", "point_map_misses",
        "keyword_cache_hits", "keyword_cache_misses",
        "answer_hits", "answer_misses",
        "door_matrix_evictions",
        "door_matrix_spills",
        "door_matrix_spill_hits",
        "door_matrix_spill_misses",
    )

    def __init__(self, **values: int) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, int(values.pop(name, 0)))
        if values:
            raise TypeError(f"unknown stats fields: {sorted(values)}")

    def add(self, **deltas: int) -> None:
        """Atomically apply counter increments."""
        with self._lock:
            for name, delta in deltas.items():
                if name not in self.FIELDS:
                    raise TypeError(f"unknown stats field {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> "ServiceStats":
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return ServiceStats(
                **{name: getattr(self, name) for name in self.FIELDS})

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class QueryService:
    """Batched IKRQ evaluation over one engine's shared oracles.

    The service is the traffic-facing layer: it answers exactly like
    ``engine.search`` (results are bit-identical — every shared cache
    holds values the per-query evaluation would recompute itself) but
    amortises per-endpoint and per-keyword work across a query stream:

    * ``search_batch`` fans a batch out over a thread pool; the engine
      oracles (graph, skeleton, distance oracle, door matrix) are
      immutable and shared, while each worker thread owns one reusable
      epoch-versioned Dijkstra workspace,
    * an LRU keyed on ``(ps, pt)`` caches per-endpoint state — the
      unbounded start-point attachment tree (serving every
      first-expansion continuation without a Dijkstra run), the
      terminal-side attachment map of ``pt`` used by the connect
      step's completion pre-check, and the skeleton lower-bound maps
      of Pruning Rules 1–4,
    * an LRU keyed on ``(QW, τ)`` reuses converted query keywords, and
      one shared door-i-word cache is populated once per space,
    * an answer LRU serves repeated identical ``(query, algorithm)``
      requests without re-searching — sound because the engine is
      deterministic, so the cached answer *is* what a fresh evaluation
      would return (``answer_cache_capacity=0`` disables it; cached
      hits share the original's ``stats`` object).

    Example::

        service = QueryService(engine, workers=4)
        answers = service.search_batch(queries, algorithm="ToE")
    """

    def __init__(self,
                 engine: IKRQEngine,
                 workers: int = 4,
                 point_map_capacity: int = 128,
                 keyword_cache_capacity: int = 512,
                 answer_cache_capacity: int = 1024) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if point_map_capacity < 1 or keyword_cache_capacity < 1:
            raise ValueError("cache capacities must be at least 1")
        if answer_cache_capacity < 0:
            raise ValueError("answer_cache_capacity must be non-negative")
        self.engine = engine
        self.workers = workers
        #: The engine's resolved kernel backend, surfaced for shard
        #: ready messages and ``/metrics``.
        self.kernel_backend = getattr(engine, "kernel_backend", "python")
        self.point_map_capacity = point_map_capacity
        self.keyword_cache_capacity = keyword_cache_capacity
        self.answer_cache_capacity = answer_cache_capacity
        self.stats = ServiceStats()
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: (ps, pt) -> {"start_map": (host, dist, pred),
        #:              "terminal_attach": {door: |door, pt|E},
        #:              "lb_from_ps": {...}, "lb_to_pt": {...}}
        self._point_maps: "OrderedDict[Tuple[Point, Point], dict]" = OrderedDict()
        self._keyword_cache: "OrderedDict[Tuple[Tuple[str, ...], float], QueryKeywords]" = OrderedDict()
        self._answer_cache: "OrderedDict[tuple, QueryAnswer]" = OrderedDict()
        # One door -> i-words table per process: the engine already
        # owns the canonical copy (pure in space + keyword index).
        self._door_iwords: dict = engine._door_iwords
        #: Service-lifetime sums of the per-answer ``SearchStats``
        #: counters, accumulated on actual evaluations only (an
        #: answer-cache hit did no search work).  Read by
        #: :meth:`search_counters` for the per-venue ``/metrics``
        #: counters.
        self._search_totals: Dict[str, int] = {
            name: 0 for name in self.SEARCH_COUNTERS}

    #: The ``SearchStats`` picks exported per venue on ``/metrics``.
    SEARCH_COUNTERS: Tuple[str, ...] = (
        "expansions", "connects", "dijkstra_calls",
        "point_cache_hits", "precomputed_hits", "precomputed_misses",
        "matrix_evictions", "pruned_total",
    )

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    def _workspace(self) -> DijkstraWorkspace:
        ws = getattr(self._tls, "workspace", None)
        if ws is None:
            ws = self.engine.graph.new_workspace()
            self._tls.workspace = ws
        return ws

    def _endpoint_entry(self, ps: Point, pt: Point,
                        overlay: Optional[ClosureOverlay] = None) -> dict:
        # The entry key carries the overlay's canonical identity: the
        # start-point attachment tree and the terminal attachment map
        # both depend on which doors are traversable, so a closure must
        # never be answered from a pre-closure cached entry
        # (tests/test_dynamic.py pins the regression).
        key = ((ps, pt) if overlay is None
               else (ps, pt, overlay.key()))
        with self._lock:
            entry = self._point_maps.get(key)
            if entry is not None:
                self._point_maps.move_to_end(key)
                self.stats.add(point_map_hits=1)
                return entry
            self.stats.add(point_map_misses=1)
        # Compute outside the lock (a concurrent miss on the same key
        # computes the same values; last write wins harmlessly).
        if overlay is None:
            space = self.engine.space
            start_map = self.engine.graph.point_attachment_map(
                ps, workspace=self._workspace())
        else:
            space = self.engine.overlay_state(overlay).view
            start_map = self.engine.graph.point_attachment_map(
                ps, workspace=self._workspace(),
                banned=overlay.closed_doors,
                banned_partitions=overlay.sealed_partitions or None)
        v_pt = space.host_partition(pt).pid
        terminal_attach = {door: space.door(door).position.distance_to(pt)
                           for door in space.p2d_enter(v_pt)}
        entry = {"start_map": start_map, "terminal_attach": terminal_attach,
                 "lb_from_ps": {}, "lb_to_pt": {}}
        with self._lock:
            entry = self._point_maps.setdefault(key, entry)
            self._point_maps.move_to_end(key)
            while len(self._point_maps) > self.point_map_capacity:
                self._point_maps.popitem(last=False)
        return entry

    def _query_keywords(self, query: IKRQ) -> QueryKeywords:
        key = (query.keywords, query.tau)
        with self._lock:
            qk = self._keyword_cache.get(key)
            if qk is not None:
                self._keyword_cache.move_to_end(key)
                self.stats.add(keyword_cache_hits=1)
                return qk
            self.stats.add(keyword_cache_misses=1)
        qk = QueryKeywords(self.engine.kindex, query.keywords, tau=query.tau)
        with self._lock:
            qk = self._keyword_cache.setdefault(key, qk)
            self._keyword_cache.move_to_end(key)
            while len(self._keyword_cache) > self.keyword_cache_capacity:
                self._keyword_cache.popitem(last=False)
        return qk

    def stats_snapshot(self) -> ServiceStats:
        """An atomic copy of the counters, matrix gauge included.

        This is what a shard worker reports: every counter is copied
        under one lock (no torn reads across fields) and the
        ``door_matrix_evictions`` gauge reflects the engine-held KoE*
        matrix at snapshot time (0 when the matrix was never built).
        """
        snap = self.stats.snapshot()
        matrix = self.engine._matrix
        if matrix is not None:
            snap.door_matrix_evictions = matrix.evictions
            snap.door_matrix_spills = matrix.spills
            snap.door_matrix_spill_hits = matrix.spill_hits
            snap.door_matrix_spill_misses = matrix.spill_misses
        return snap

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def search(self,
               query: IKRQ,
               algorithm: str = "ToE",
               max_expansions: Optional[int] = None,
               config: Optional[SearchConfig] = None,
               *,
               overlay=None,
               trace=None) -> QueryAnswer:
        """Evaluate one query through the service's shared caches.

        ``overlay`` applies a :class:`ClosureOverlay` (or its wire
        ``dict`` form) for this evaluation: the answer cache and the
        per-endpoint entry are keyed by the overlay's canonical
        identity, so overlaid and plain traffic interleave freely
        without either ever seeing the other's cached state.

        ``trace`` is an optional :class:`repro.obs.EngineTrace`: the
        evaluation annotates it with the answer-cache outcome and the
        ``SearchStats`` cache/pruning picks, and — when ``trace.fine``
        — attaches the context's stage probe so the engine span splits
        into relaxation / lower-bound / merge.  Tracing only observes:
        the evaluation path and its answers are identical with or
        without it.
        """
        overlay = ClosureOverlay.from_wire(overlay)
        if overlay is not None and overlay.is_empty:
            overlay = None
        if overlay is not None:
            overlay.validate(self.engine.space)
        cache_key = None
        if self.answer_cache_capacity:
            cache_key = (query, canonical_algorithm(algorithm),
                         max_expansions, config,
                         None if overlay is None else overlay.key())
            with self._lock:
                cached = self._answer_cache.get(cache_key)
                if cached is not None:
                    self._answer_cache.move_to_end(cache_key)
                    self.stats.add(answer_hits=1, queries_served=1)
                    if trace is not None:
                        trace.annotate(answer_cache="hit")
                    return cached
                self.stats.add(answer_misses=1)
        ctx = self.engine.context(
            query, workspace=self._workspace(),
            qk=self._query_keywords(query), endpoint_caches=False,
            overlay=overlay)
        entry = self._endpoint_entry(query.ps, query.pt, overlay)
        ctx.share_caches(
            lb_from_ps=entry["lb_from_ps"],
            lb_to_pt=entry["lb_to_pt"],
            start_map=entry["start_map"],
            terminal_attach=entry["terminal_attach"])
        if overlay is None:
            # Under an overlay the context already shares the overlay
            # state's door-word caches; the engine-wide table belongs
            # to the base topology only.
            ctx.share_caches(door_iwords=self._door_iwords)
        if trace is not None and trace.fine:
            ctx.attach_stage_probe(trace.stages)
        answer = self.engine.search(
            query, algorithm, max_expansions=max_expansions,
            config=config, context=ctx, overlay=overlay)
        self.stats.add(queries_served=1)
        counters = self._stats_picks(answer.stats)
        with self._lock:
            totals = self._search_totals
            for name, value in counters.items():
                totals[name] += value
            if cache_key is not None:
                self._answer_cache[cache_key] = answer
                self._answer_cache.move_to_end(cache_key)
                while len(self._answer_cache) > self.answer_cache_capacity:
                    self._answer_cache.popitem(last=False)
        if trace is not None:
            trace.annotate(
                answer_cache="miss" if cache_key is not None else "off",
                **counters)
        return answer

    @classmethod
    def _stats_picks(cls, stats: SearchStats) -> Dict[str, int]:
        """The exported counter picks of one answer's ``SearchStats``."""
        return {name: (stats.total_pruned if name == "pruned_total"
                       else getattr(stats, name))
                for name in cls.SEARCH_COUNTERS}

    def search_counters(self) -> Dict[str, int]:
        """Service-lifetime ``SearchStats`` sums (per-venue counters
        on ``/metrics``)."""
        with self._lock:
            return dict(self._search_totals)

    def search_batch(self,
                     queries: Iterable[IKRQ],
                     algorithm: str = "ToE",
                     workers: Optional[int] = None,
                     max_expansions: Optional[int] = None,
                     config: Optional[SearchConfig] = None,
                     timings: Optional[List[float]] = None,
                     overlay=None,
                     ) -> List[QueryAnswer]:
        """Evaluate many queries, preserving input order.

        ``workers`` overrides the service default; with one worker (or
        a single query) the batch runs inline on the calling thread,
        still benefiting from the shared caches.  ``timings``, when
        given, receives one per-query wall-clock duration (seconds)
        per evaluation, in completion order — the benches derive their
        latency percentiles from it.  ``overlay`` applies one
        :class:`ClosureOverlay` to every query in the batch.
        """
        batch = list(queries)
        pool_size = self.workers if workers is None else workers
        if pool_size < 1:
            raise ValueError("workers must be at least 1")
        self.stats.add(batches=1)
        if timings is None:
            evaluate = lambda q: self.search(  # noqa: E731
                q, algorithm, max_expansions, config, overlay=overlay)
        else:
            def evaluate(q: IKRQ) -> QueryAnswer:
                started = time.perf_counter()
                answer = self.search(q, algorithm, max_expansions, config,
                                     overlay=overlay)
                timings.append(time.perf_counter() - started)
                return answer
        if pool_size == 1 or len(batch) <= 1:
            return [evaluate(q) for q in batch]
        with ThreadPoolExecutor(max_workers=pool_size,
                                thread_name_prefix="ikrq") as pool:
            return list(pool.map(evaluate, batch))

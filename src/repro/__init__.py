"""repro — Indoor Top-k Keyword-aware Routing Queries (IKRQ).

A from-scratch Python implementation of Feng, Liu, Li, Lu, Shou, Xu:
*Indoor Top-k Keyword-aware Routing Query*, ICDE 2020 — the query
model, keyword organisation, prime-route diversification, pruning
rules, the ToE/KoE search algorithms and their ablation variants —
plus every substrate the paper builds on (indoor space model, skeleton
distances, door-graph routing, RAKE/TF-IDF keyword extraction) and a
benchmark harness regenerating every figure of its evaluation.

Quickstart::

    from repro import IKRQEngine, paper_fig1

    fixture = paper_fig1()
    engine = IKRQEngine(fixture.space, fixture.kindex)
    answer = engine.query(fixture.ps, fixture.pt, delta=60.0,
                          keywords=["latte", "apple"], k=3)
    for route in answer.routes:
        print(route.score, route.route.describe(fixture.space))
"""

from repro.core import (
    ALGORITHMS,
    IKRQ,
    IKRQEngine,
    QueryAnswer,
    Route,
    RouteResult,
    SearchConfig,
)
from repro.datasets import paper_fig1
from repro.geometry import Point, Rect
from repro.keywords import KeywordIndex, Vocabulary
from repro.space import IndoorSpace, IndoorSpaceBuilder

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "IKRQ",
    "IKRQEngine",
    "IndoorSpace",
    "IndoorSpaceBuilder",
    "KeywordIndex",
    "Point",
    "QueryAnswer",
    "Rect",
    "Route",
    "RouteResult",
    "SearchConfig",
    "Vocabulary",
    "paper_fig1",
    "__version__",
]

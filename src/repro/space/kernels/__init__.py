"""Pluggable kernel tier for the two innermost hot loops.

The array-native core (PR 3) left two interpreted inner loops on the
per-query hot path: the CSR Dijkstra relaxation in
:mod:`repro.space.graph` and the Rule 1-4 δs2s lower-bound double loop
in :mod:`repro.space.skeleton`.  This package provides drop-in
replacements for both behind the exact interfaces the interpreted
core already exposes:

``python``
    The interpreted array core itself (no kernel attached).  Always
    available; the reference every other backend is gated against.
``numpy``
    Vectorized kernels: bucketed batch edge relaxation over the CSR
    buffers and a fully vectorized lower-bound sweep over the flat
    row-major δs2s table.  Available whenever numpy imports.
``native``
    A small C library (``_kernels.c``) compiled best-effort with the
    system C compiler and loaded through ``ctypes`` — the classic
    heap Dijkstra, executed over the same flat buffers.  Lower-bound
    sweeps and tree freezing delegate to the numpy kernels, so the
    backend requires numpy too.  Unavailable (without error) when no
    compiler is present or the build fails.

Every backend is bit-identical to the interpreted core: identical
``dist``/``pred`` state including tie-breaking, identical visit
(``touched``) order, identical float arithmetic (the proofs live with
each backend).  Selection is by name — ``auto`` walks the preference
order ``native > numpy > python`` and degrades python-ward cleanly
when a faster tier is unavailable.  The ``REPRO_KERNEL`` environment
variable overrides the default for engines that do not pass an
explicit ``kernel=``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Tuple

#: Backend names in preference order (fastest first).  ``auto``
#: resolves to the first available entry.
BACKENDS: Tuple[str, ...] = ("native", "numpy", "python")


class KernelUnavailable(RuntimeError):
    """Raised by a backend module when it cannot provide its kernels."""


class KernelSuite:
    """The callables one backend contributes.

    Any hook may be ``None``, in which case the interpreted code path
    runs for that operation.  ``sssp`` replaces
    ``DoorGraph._run_dijkstra`` wholesale (same workspace side
    effects); ``sweep_from`` / ``sweep_to`` compute the endpoint ->
    every-door lower-bound table; ``freeze`` accelerates
    ``FlatTree.from_workspace``.
    """

    __slots__ = ("name", "sssp", "sweep_from", "sweep_to", "freeze")

    def __init__(self, name, sssp=None, sweep_from=None, sweep_to=None,
                 freeze=None) -> None:
        self.name = name
        self.sssp = sssp
        self.sweep_from = sweep_from
        self.sweep_to = sweep_to
        self.freeze = freeze

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelSuite({self.name!r})"


_PYTHON_SUITE = KernelSuite("python")
_suites: Dict[str, KernelSuite] = {"python": _PYTHON_SUITE}
_unavailable: Dict[str, str] = {}


def _load_suite(name: str) -> KernelSuite:
    """Import and instantiate one backend's suite (may raise)."""
    if name == "numpy":
        from repro.space.kernels import numpy_backend
        return numpy_backend.suite()
    if name == "native":
        from repro.space.kernels import native_backend
        return native_backend.suite()
    raise ValueError(f"unknown kernel backend {name!r}")


def _try_suite(name: str) -> Optional[KernelSuite]:
    """The backend's suite, or ``None`` (with the reason recorded)."""
    suite = _suites.get(name)
    if suite is not None:
        return suite
    if name in _unavailable:
        return None
    try:
        suite = _load_suite(name)
    except Exception as exc:  # ImportError, KernelUnavailable, ...
        _unavailable[name] = f"{type(exc).__name__}: {exc}"
        return None
    _suites[name] = suite
    return suite


def available_backends() -> Dict[str, Optional[str]]:
    """``backend -> None`` when usable, else the unavailability reason."""
    out: Dict[str, Optional[str]] = {}
    for name in BACKENDS:
        out[name] = None if _try_suite(name) is not None \
            else _unavailable.get(name)
    return out


def _candidates(requested: Optional[str]) -> Tuple[str, Tuple[str, ...]]:
    """``(normalised request, fallback chain)`` for a selection."""
    req = (requested if requested is not None
           else os.environ.get("REPRO_KERNEL") or "python")
    req = req.strip().lower()
    if req == "auto":
        return req, BACKENDS
    if req not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {req!r}; "
            f"expected one of {('auto',) + BACKENDS}")
    # A named backend degrades python-ward through the preference
    # order below it: native -> numpy -> python, numpy -> python.
    start = BACKENDS.index(req)
    return req, BACKENDS[start:]


def resolve_backend(requested: Optional[str] = None) -> str:
    """The concrete backend a request resolves to.

    ``requested=None`` consults ``REPRO_KERNEL`` and defaults to
    ``python`` (engines opt into the fast tier explicitly; the serve
    fleet passes ``auto``).  Unavailable tiers degrade python-ward —
    asking for ``native`` on a box without a C compiler yields
    ``numpy``, and ``numpy`` without numpy yields ``python``.
    """
    _, chain = _candidates(requested)
    for name in chain:
        if _try_suite(name) is not None:
            return name
    return "python"


def get_suite(requested: Optional[str] = None) -> KernelSuite:
    """The resolved :class:`KernelSuite` for a selection request."""
    return _suites[resolve_backend(requested)]


def kernel_info(requested: Optional[str] = None) -> Dict[str, object]:
    """Operator-facing summary of the kernel selection state."""
    req = (requested if requested is not None
           else os.environ.get("REPRO_KERNEL") or "python")
    return {
        "requested": req,
        "active": resolve_backend(requested),
        "available": available_backends(),
    }


def begin_run(graph, ws, banned: Iterable[int],
              targets: Optional[Iterable[int]]) -> Tuple[int, int]:
    """The shared Dijkstra run prologue every backend executes.

    Bumps the workspace epoch, marks banned door ids and counts the
    early-exit target set exactly as the interpreted loop does.
    Returns ``(epoch, remaining)`` where ``remaining`` is -1 without a
    target set and 0 when every target was already deduplicated away
    (the run must then not explore at all).
    """
    epoch = ws.begin()
    door_index = graph._door_index
    banned_mark = ws.banned
    for did in banned:
        idx = door_index.get(did)
        if idx is not None:
            banned_mark[idx] = epoch
    remaining = -1
    if targets is not None:
        remaining = 0
        target_mark = ws.target
        for idx in targets:
            if target_mark[idx] != epoch:
                target_mark[idx] = epoch
                remaining += 1
    return epoch, remaining

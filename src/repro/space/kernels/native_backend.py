"""The C kernel backend: best-effort build, ctypes dispatch.

``_kernels.c`` is compiled on first use with the system C compiler
(``$CC`` or ``cc``) into a content-addressed shared object under a
cache directory (``$REPRO_KERNEL_CACHE`` or
``<tmp>/repro-kernels``), so the build runs once per source revision
per machine — no build system, no install-time hook, no new
dependency.  When no compiler is present (or the build fails) the
backend reports itself unavailable and selection degrades python-ward;
nothing in the serving or query path hard-requires it.

The C loop is a transcription of the interpreted Dijkstra (see the
comment in ``_kernels.c`` for the bit-identity argument).  Lower-bound
sweeps and tree freezing delegate to the numpy kernels — they are
already memory-bound vectorized code — which is why this backend
requires numpy as well (numpy also provides the pointer marshalling
for ``mmap``-backed read-only snapshot buffers, which ``ctypes``
cannot address directly).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from array import array

from repro.space.kernels import KernelUnavailable

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "_kernels.c")

_lib = None


def _cache_dir() -> str:
    path = os.environ.get("REPRO_KERNEL_CACHE")
    if not path:
        path = os.path.join(tempfile.gettempdir(), "repro-kernels")
    os.makedirs(path, exist_ok=True)
    return path


def _build() -> ctypes.CDLL:
    with open(_SOURCE, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha256(source).hexdigest()[:16]
    so_path = os.path.join(_cache_dir(), f"repro_kernels_{digest}.so")
    if not os.path.exists(so_path):
        cc = shutil.which(os.environ.get("CC") or "cc")
        if cc is None:
            raise KernelUnavailable("no C compiler (cc) on PATH")
        tmp_path = f"{so_path}.{os.getpid()}.tmp"
        # Plain -O2, deliberately without -ffast-math: the doubles
        # must round exactly like CPython's.
        cmd = [cc, "-O2", "-fPIC", "-shared", "-o", tmp_path, _SOURCE]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise KernelUnavailable(
                f"C kernel build failed: {proc.stderr.strip()[:500]}")
        os.replace(tmp_path, so_path)
    lib = ctypes.CDLL(so_path)
    lib.repro_dijkstra.restype = ctypes.c_int64
    lib.repro_dijkstra.argtypes = [ctypes.c_void_p] * 5 + [
        ctypes.c_void_p] * 7 + [ctypes.c_int64] + [
        ctypes.c_void_p] * 4 + [ctypes.c_int64, ctypes.c_int64,
        ctypes.c_double, ctypes.c_int64, ctypes.c_void_p,
        ctypes.c_int64, ctypes.c_void_p]
    return lib


def _library() -> ctypes.CDLL:
    global _lib
    if _lib is None:
        _lib = _build()
    return _lib


def _addr(buf) -> int:
    """The base address of a typed buffer (array or memoryview)."""
    if isinstance(buf, array):
        return buf.buffer_info()[0]
    # Read-only memoryviews (mmap-backed snapshot sections) have no
    # ctypes path; numpy addresses them without copying.
    import numpy as np
    return np.frombuffer(buf, dtype=np.uint8).ctypes.data


def _scratch(ws, graph):
    """Reusable heap/touched scratch sized for this graph."""
    scratch = ws.kernel_scratch
    if scratch is None:
        scratch = ws.kernel_scratch = {}
    n = len(graph._door_ids)
    cap = len(graph._nbr) + n + 16
    native = scratch.get("native")
    if native is None or native[0] < cap:
        heap_buf = ctypes.create_string_buffer(16 * cap)
        touched_buf = array("q", bytes(8 * n))
        native = (cap, heap_buf, touched_buf)
        scratch["native"] = native
    return native


def sssp(graph, ws, seeds, banned, banned_partitions, targets, bound,
         forbid) -> None:
    from repro.space.kernels import begin_run
    lib = _library()
    epoch, remaining = begin_run(graph, ws, banned, targets)
    if remaining == 0:
        return
    bp = banned_partitions if banned_partitions else None
    seed_w = array("d")
    seed_node = array("q")
    seed_pred = array("q")
    seed_via = array("q")
    for weight, node, prev, via in seeds:
        if bp is not None and via in bp:
            continue
        seed_w.append(weight)
        seed_node.append(node)
        seed_pred.append(prev)
        seed_via.append(via)
    edge_skip_ref = None
    edge_skip_ptr = 0
    if bp is not None:
        from repro.space.kernels.numpy_backend import edge_skip_mask
        edge_skip_ref = edge_skip_mask(graph, bp)
        edge_skip_ptr = edge_skip_ref.ctypes.data
    cap, heap_buf, touched_buf = _scratch(ws, graph)
    count = lib.repro_dijkstra(
        _addr(graph._indptr), _addr(graph._nbr), _addr(graph._via),
        _addr(graph._wt), edge_skip_ptr,
        _addr(ws.dist), _addr(ws.pred), _addr(ws.pred_via),
        _addr(ws.visit), _addr(ws.settled), _addr(ws.banned),
        _addr(ws.target), epoch,
        _addr(seed_w), _addr(seed_node), _addr(seed_pred),
        _addr(seed_via), len(seed_w), remaining,
        float(bound), forbid,
        ctypes.addressof(heap_buf), cap, _addr(touched_buf))
    del edge_skip_ref
    if count < 0:  # pragma: no cover - capacity is provably sufficient
        raise RuntimeError("native kernel heap overflow")
    ws.touched.extend(touched_buf[:count])


def suite():
    from repro.space.kernels import KernelSuite
    from repro.space.kernels import numpy_backend
    _library()  # raises KernelUnavailable when the build is impossible
    np_suite = numpy_backend.suite()
    return KernelSuite("native", sssp=sssp,
                       sweep_from=np_suite.sweep_from,
                       sweep_to=np_suite.sweep_to,
                       freeze=np_suite.freeze)

/* Native CSR Dijkstra kernel for the repro kernel tier.
 *
 * A statement-for-statement transcription of the interpreted loop in
 * repro/space/graph.py: the same epoch-versioned workspace arrays,
 * the same strict-improvement relaxation, the same (d, u) heap order.
 * A binary heap pops the minimum of its contents under the total
 * order (d, u), and the interpreted algorithm depends only on the
 * popped *values* (never on heap internals), so any correct heap —
 * including this one — yields the identical settle sequence, and
 * `nd = d + wt[k]` is the identical IEEE double addition.  Build with
 * plain -O2 (no -ffast-math): x86-64 / AArch64 double arithmetic then
 * matches CPython's bit for bit.
 */

#include <stdint.h>

typedef struct {
    double d;
    int64_t u;
} entry;

static int entry_lt(const entry a, const entry b)
{
    return a.d < b.d || (a.d == b.d && a.u < b.u);
}

static void heap_push(entry *heap, int64_t *size, entry e)
{
    int64_t i = (*size)++;
    heap[i] = e;
    while (i > 0) {
        int64_t parent = (i - 1) >> 1;
        if (!entry_lt(heap[i], heap[parent]))
            break;
        entry tmp = heap[parent];
        heap[parent] = heap[i];
        heap[i] = tmp;
        i = parent;
    }
}

static entry heap_pop(entry *heap, int64_t *size)
{
    entry top = heap[0];
    entry last = heap[--(*size)];
    int64_t n = *size;
    int64_t i = 0;
    for (;;) {
        int64_t left = 2 * i + 1;
        int64_t right = left + 1;
        int64_t smallest = i;
        heap[i] = last;
        if (left < n && entry_lt(heap[left], heap[smallest]))
            smallest = left;
        if (right < n && entry_lt(heap[right], heap[smallest]))
            smallest = right;
        if (smallest == i)
            break;
        heap[i] = heap[smallest];
        i = smallest;
    }
    return top;
}

/* Runs one parameterised Dijkstra over the CSR arrays.  All scratch
 * state (dist/pred/... and the heap/touched buffers) is caller-owned;
 * the caller has already marked banned doors and counted targets into
 * the epoch-versioned banned/target arrays.  `edge_skip`, when
 * non-NULL, masks edges through banned partitions.  Returns the
 * number of touched (visited) nodes, or -1 if the heap scratch
 * overflowed (cannot happen when its capacity is >= seeds + edges).
 */
int64_t repro_dijkstra(
    const int64_t *indptr,
    const int64_t *nbr,
    const int64_t *via,
    const double *wt,
    const unsigned char *edge_skip,
    double *dist,
    int64_t *pred,
    int64_t *pred_via,
    int64_t *visit,
    int64_t *settled,
    const int64_t *banned_mark,
    const int64_t *target_mark,
    int64_t epoch,
    const double *seed_w,
    const int64_t *seed_node,
    const int64_t *seed_pred,
    const int64_t *seed_via,
    int64_t n_seeds,
    int64_t remaining,
    double bound,
    int64_t forbid,
    entry *heap,
    int64_t heap_cap,
    int64_t *touched)
{
    int64_t heap_size = 0;
    int64_t n_touched = 0;

    for (int64_t s = 0; s < n_seeds; s++) {
        double w = seed_w[s];
        int64_t node = seed_node[s];
        if (w > bound || banned_mark[node] == epoch || node == forbid)
            continue;
        if (visit[node] != epoch) {
            visit[node] = epoch;
            touched[n_touched++] = node;
        } else if (w >= dist[node]) {
            continue;
        }
        dist[node] = w;
        pred[node] = seed_pred[s];
        pred_via[node] = seed_via[s];
        if (heap_size >= heap_cap)
            return -1;
        heap_push(heap, &heap_size, (entry){w, node});
    }

    while (heap_size > 0) {
        entry top = heap_pop(heap, &heap_size);
        double d = top.d;
        int64_t u = top.u;
        if (settled[u] == epoch)
            continue;
        settled[u] = epoch;
        if (remaining >= 0 && target_mark[u] == epoch) {
            if (--remaining == 0)
                break;
        }
        int64_t end = indptr[u + 1];
        for (int64_t k = indptr[u]; k < end; k++) {
            int64_t v = nbr[k];
            if (banned_mark[v] == epoch || settled[v] == epoch
                    || v == forbid)
                continue;
            if (edge_skip && edge_skip[k])
                continue;
            double nd = d + wt[k];
            if (nd > bound)
                continue;
            if (visit[v] != epoch) {
                visit[v] = epoch;
                touched[n_touched++] = v;
            } else if (nd >= dist[v]) {
                continue;
            }
            dist[v] = nd;
            pred[v] = u;
            pred_via[v] = via[k];
            if (heap_size >= heap_cap)
                return -1;
            heap_push(heap, &heap_size, (entry){nd, v});
        }
    }
    return n_touched;
}

"""Numpy-vectorized kernels: batch Dijkstra relaxation and δs2s sweeps.

Both kernels are **bit-identical** to the interpreted array core —
not merely equal within tolerance.  The arguments:

Batch relaxation (``sssp``)
    With ``w_min`` the global minimum edge weight, every frontier
    entry with ``d < d_min + w_min`` (strictly) can be settled
    together: any relaxation produced by the batch costs at least
    ``d_min + w_min``, so no new heap entry can sort before — or tie
    and interleave with — a batch member, and the interpreted loop
    would pop exactly these entries first, in ``(d, u)`` order, before
    any entry pushed by them.  (Entries *at* the threshold are left
    for the next round, where they sort against the new pushes by
    ``(d, u)`` exactly as the heap would; with a zero-weight edge in
    the graph the batch degenerates to one entry per round, which is
    plain Dijkstra.)  Within a batch the members relax their edges in
    CSR order; the winning relaxation of a node ``v`` is the
    lexicographic minimum of ``(nd, member order, k)`` over its
    candidate edges, which ``numpy.lexsort`` reproduces exactly, and
    ``nd = d_u + wt[k]`` is the same single IEEE double addition
    either way.  First-touch (``touched``) order equals the first
    candidate occurrence in member-then-edge order
    (``numpy.unique(..., return_index=True)``), and early exit
    truncates the batch at the member that zeroes the target count,
    exactly where the interpreted loop breaks.

Lower-bound sweep (``sweep_from`` / ``sweep_to``)
    The interpreted double loop computes
    ``(head + s2s[ia, ib]) + tail`` left-associated and takes the
    minimum; a minimum over IEEE doubles is order-independent, so the
    broadcast evaluates the identical expression per pair and
    ``min()`` returns the identical bits.  For the start-side sweep
    the per-column partial ``c[ib] = min_ia(head[ia] + s2s[ia, ib])``
    may be hoisted: adding the (door-side) tail last is monotone, so
    ``min_ib(c[ib] + tail[ib])`` equals the full double minimum
    exactly.  The terminal-side sweep adds the door-side *head* first,
    which does not factor, so it evaluates the full 3-D broadcast.
    Euclidean heads use the same ``dx*dx + dy*dy + dz*dz`` grouping as
    ``Point.distance_to`` and ``numpy.sqrt`` is correctly rounded like
    ``math.sqrt``.
"""

from __future__ import annotations

import math
from array import array

import numpy as np

from repro.geometry.point import FLOOR_HEIGHT

INF = math.inf

_ROOT = -1
_POINT = -2


# ----------------------------------------------------------------------
# Cached flat views
# ----------------------------------------------------------------------
def _graph_arrays(graph):
    """Zero-copy numpy views of the graph's CSR buffers (cached)."""
    cache = graph.__dict__.get("_np_csr")
    if cache is None:
        indptr = np.frombuffer(graph._indptr, dtype=np.int64)
        nbr = np.frombuffer(graph._nbr, dtype=np.int64)
        via = np.frombuffer(graph._via, dtype=np.int64)
        wt = np.frombuffer(graph._wt, dtype=np.float64)
        w_min = float(wt.min()) if wt.size else 0.0
        cache = graph._np_csr = (indptr, nbr, via, wt, w_min)
    return cache


def _ws_arrays(ws):
    """Writable numpy views over one workspace's flat scratch arrays."""
    scratch = ws.kernel_scratch
    if scratch is None:
        scratch = ws.kernel_scratch = {}
    views = scratch.get("np_views")
    if views is None:
        views = (
            np.frombuffer(ws.dist, dtype=np.float64),
            np.frombuffer(ws.pred, dtype=np.int64),
            np.frombuffer(ws.pred_via, dtype=np.int64),
            np.frombuffer(ws.visit, dtype=np.int64),
            np.frombuffer(ws.settled, dtype=np.int64),
            np.frombuffer(ws.banned, dtype=np.int64),
            np.frombuffer(ws.target, dtype=np.int64),
        )
        for view in views:
            view.flags.writeable = True
        scratch["np_views"] = views
    return views


def edge_skip_mask(graph, banned_partitions) -> np.ndarray:
    """Per-edge skip mask for a banned-partition set (uint8)."""
    _, _, via, _, _ = _graph_arrays(graph)
    pids = np.fromiter(banned_partitions, dtype=np.int64,
                       count=len(banned_partitions))
    return np.isin(via, pids).astype(np.uint8)


# ----------------------------------------------------------------------
# Batched Dijkstra
# ----------------------------------------------------------------------
def sssp(graph, ws, seeds, banned, banned_partitions, targets, bound,
         forbid) -> None:
    from repro.space.kernels import begin_run
    epoch, remaining = begin_run(graph, ws, banned, targets)
    if remaining == 0:
        return
    indptr, nbr, via, wt, w_min = _graph_arrays(graph)
    dist, pred, pred_via, visit, settled, banned_mark, target_mark = \
        _ws_arrays(ws)
    touched = ws.touched
    bp = banned_partitions if banned_partitions else None
    edge_ok = None
    if bp is not None:
        edge_ok = ~edge_skip_mask(graph, bp).view(bool)

    # Seed phase: few entries, processed in order with the exact
    # first-touch / strict-improvement semantics of the interpreted
    # loop (dominated duplicate pushes included — they are harmless
    # and keeping them mirrors the heap's contents one to one).
    seed_d = []
    seed_u = []
    for weight, node, prev, seed_via in seeds:
        if weight > bound or banned_mark[node] == epoch or node == forbid:
            continue
        if bp is not None and seed_via in bp:
            continue
        if visit[node] != epoch:
            visit[node] = epoch
            touched.append(node)
        elif weight >= dist[node]:
            continue
        dist[node] = weight
        pred[node] = prev
        pred_via[node] = seed_via
        seed_d.append(weight)
        seed_u.append(node)
    frontier_d = np.array(seed_d, dtype=np.float64)
    frontier_u = np.array(seed_u, dtype=np.int64)

    while frontier_d.size:
        d_min = frontier_d.min()
        if w_min > 0.0:
            sel = frontier_d < d_min + w_min
        else:
            # Zero-weight edges: no safe batch width — settle exactly
            # the heap's next pop, the lexicographically minimal entry.
            sel = np.zeros(frontier_d.size, dtype=bool)
            sel[np.lexsort((frontier_u, frontier_d))[0]] = True
        sel_d = frontier_d[sel]
        sel_u = frontier_u[sel]
        frontier_d = frontier_d[~sel]
        frontier_u = frontier_u[~sel]
        # Batch members: per node the minimal (d, u) entry, ordered by
        # (d, u) — the exact heap settle order — minus stale entries.
        order = np.lexsort((sel_u, sel_d))
        sel_d = sel_d[order]
        sel_u = sel_u[order]
        uniq_u, first = np.unique(sel_u, return_index=True)
        mem_d = sel_d[first]
        mem_u = uniq_u
        morder = np.lexsort((mem_u, mem_d))
        mem_d = mem_d[morder]
        mem_u = mem_u[morder]
        alive = settled[mem_u] != epoch
        if not alive.all():
            mem_d = mem_d[alive]
            mem_u = mem_u[alive]
        if mem_u.size == 0:
            continue
        cut = mem_u.size
        settle_to = mem_u.size
        done = False
        if remaining >= 0:
            hits = target_mark[mem_u] == epoch
            total_hits = int(hits.sum())
            if total_hits >= remaining:
                # The member that zeroes the count settles but — like
                # the interpreted break — relaxes nothing; later
                # members stay unsettled in the (discarded) frontier.
                cum = np.cumsum(hits)
                pos = int(np.searchsorted(cum, remaining))
                settle_to = pos + 1
                cut = pos
                remaining = 0
                done = True
            else:
                remaining -= total_hits
        settled[mem_u[:settle_to]] = epoch
        relax_u = mem_u[:cut]
        relax_d = mem_d[:cut]
        if relax_u.size:
            starts = indptr[relax_u]
            counts = indptr[relax_u + 1] - starts
            total = int(counts.sum())
            if total:
                member_of = np.repeat(
                    np.arange(relax_u.size, dtype=np.int64), counts)
                cum_counts = np.cumsum(counts)
                kk = (np.repeat(starts, counts)
                      + np.arange(total, dtype=np.int64)
                      - np.repeat(cum_counts - counts, counts))
                v = nbr[kk]
                nd = relax_d[member_of] + wt[kk]
                ok = ((banned_mark[v] != epoch)
                      & (settled[v] != epoch)
                      & (nd <= bound))
                if forbid >= 0:
                    ok &= v != forbid
                if edge_ok is not None:
                    ok &= edge_ok[kk]
                v = v[ok]
                if v.size:
                    nd = nd[ok]
                    kk = kk[ok]
                    member_of = member_of[ok]
                    # Winner per node: lexmin of (nd, member order, k),
                    # i.e. (nd, candidate position); first candidate
                    # occurrence drives the touched order.
                    cand_pos = np.arange(v.size, dtype=np.int64)
                    ordc = np.lexsort((cand_pos, nd, v))
                    uniq_v, first_occ = np.unique(v, return_index=True)
                    win_pos = np.searchsorted(v[ordc], uniq_v)
                    win = ordc[win_pos]
                    wnd = nd[win]
                    new = visit[uniq_v] != epoch
                    improve = new | (wnd < dist[uniq_v])
                    if improve.any():
                        av = uniq_v[improve]
                        a_nd = wnd[improve]
                        a_kk = kk[win][improve]
                        a_member = member_of[win][improve]
                        a_new = new[improve]
                        a_first = first_occ[improve]
                        if a_new.any():
                            newv = av[a_new]
                            norder = np.argsort(a_first[a_new],
                                                kind="stable")
                            touched.extend(newv[norder].tolist())
                            visit[newv] = epoch
                        dist[av] = a_nd
                        pred[av] = relax_u[a_member]
                        pred_via[av] = via[a_kk]
                        frontier_d = np.concatenate((frontier_d, a_nd))
                        frontier_u = np.concatenate((frontier_u, av))
        if done:
            return


# ----------------------------------------------------------------------
# Tree freezing
# ----------------------------------------------------------------------
def freeze(graph, ws):
    """Vectorized :meth:`FlatTree.from_workspace` (identical buffers)."""
    from repro.space.graph import FlatTree
    n = len(graph._door_ids)
    touched = np.fromiter(ws.touched, dtype=np.int64,
                          count=len(ws.touched))
    ws_dist = np.frombuffer(ws.dist, dtype=np.float64)
    ws_pred = np.frombuffer(ws.pred, dtype=np.int64)
    ws_via = np.frombuffer(ws.pred_via, dtype=np.int64)
    dist = np.full(n, INF, dtype=np.float64)
    pred = np.full(n, _ROOT, dtype=np.int64)
    pred_via = np.full(n, -1, dtype=np.int64)
    dist[touched] = ws_dist[touched]
    pred[touched] = ws_pred[touched]
    pred_via[touched] = ws_via[touched]
    dist_a = array("d")
    dist_a.frombytes(dist.tobytes())
    pred_a = array("q")
    pred_a.frombytes(pred.tobytes())
    via_a = array("q")
    via_a.frombytes(pred_via.tobytes())
    touched_a = array("q")
    touched_a.frombytes(touched.tobytes())
    return FlatTree(graph._door_ids, graph._door_index,
                    dist_a, pred_a, via_a, touched_a)


# ----------------------------------------------------------------------
# Lower-bound sweeps
# ----------------------------------------------------------------------
def _skeleton_arrays(skeleton):
    """Whole-venue door arrays + padded stair-head matrix (cached).

    One flat layout instead of per-floor groups: every door carries
    its floor's stair-door rows and head distances padded to the
    widest floor with ``+inf`` heads (and row index 0, never selected
    because ``inf + anything = inf``).  ``min`` over the padding is
    exact — the padded entries can only lose — so a single vectorized
    reduction over the padded matrix is bit-identical to the per-floor
    minima, and a whole sweep becomes a handful of array ops with no
    Python-level group loop.  Doors on a stairless floor get an
    all-``inf`` row, reproducing the interpreted empty-pairs ``INF``.
    ``floor_slices`` maps each floor to its contiguous ``[start, end)``
    slice of the door order (ids ascend within a floor; dict equality
    with the interpreted sweep does not care about iteration order).
    """
    cache = skeleton._kernel_cache.get("np")
    if cache is None:
        n = len(skeleton._stair_doors)
        if n:
            s2s = np.frombuffer(skeleton._s2s,
                                dtype=np.float64).reshape(n, n)
        else:
            s2s = np.zeros((0, 0), dtype=np.float64)
        px = np.frombuffer(skeleton._px, dtype=np.float64)
        py = np.frombuffer(skeleton._py, dtype=np.float64)
        pz = np.frombuffer(skeleton._pz, dtype=np.float64)
        space = skeleton._space
        by_floor = {}
        for did in sorted(space.doors):
            pos = space.door(did).position
            by_floor.setdefault(pos.floor, []).append((did, pos))
        ids = []
        xs, ys, levels = [], [], []
        floor_slices = {}
        floor_rows = []
        for floor, entries in sorted(by_floor.items()):
            floor_slices[floor] = (len(ids), len(ids) + len(entries))
            rows = np.array(skeleton._stair_doors_for_floor(floor),
                            dtype=np.int64)
            floor_rows.extend([rows] * len(entries))
            for did, pos in entries:
                ids.append(did)
                xs.append(pos.x)
                ys.append(pos.y)
                levels.append(pos.level)
        x = np.array(xs, dtype=np.float64)
        y = np.array(ys, dtype=np.float64)
        level = np.array(levels, dtype=np.float64)
        z = level * FLOOR_HEIGHT
        width = max((rows.size for rows in floor_rows), default=0)
        count = len(ids)
        rows_pad = np.zeros((count, width), dtype=np.int64)
        heads_pad = np.full((count, width), INF, dtype=np.float64)
        for i, rows in enumerate(floor_rows):
            if rows.size:
                rows_pad[i, :rows.size] = rows
                dx = x[i] - px[rows]
                dy = y[i] - py[rows]
                dz = z[i] - pz[rows]
                heads_pad[i, :rows.size] = np.sqrt(
                    (dx * dx + dy * dy) + dz * dz)
        flat = (ids, x, y, z, level, floor_slices, rows_pad, heads_pad)
        cache = (n, s2s, flat)
        skeleton._kernel_cache["np"] = cache
    return cache


def _attachment_arrays(attachment):
    pairs = attachment[3]
    rows = np.fromiter((r for r, _ in pairs), dtype=np.int64,
                       count=len(pairs))
    heads = np.fromiter((h for _, h in pairs), dtype=np.float64,
                        count=len(pairs))
    return rows, heads


def _touch_mask(flat, floor_a, level_a):
    ids, _, _, _, level, floor_slices, _, _ = flat
    touch = np.abs(level_a - level) <= 0.5
    span = floor_slices.get(floor_a)
    if span is not None:
        touch[span[0]:span[1]] = True
    return touch


def sweep_from(skeleton, ha):
    """``{door id: lower_bound_heads(ha, heads(door))}`` for all doors."""
    n, s2s, flat = _skeleton_arrays(skeleton)
    ids, x, y, z, level, _, rows_pad, heads_pad = flat
    pos_a, floor_a, level_a, pairs_a, _ = ha
    az = level_a * FLOOR_HEIGHT
    if pairs_a and n and heads_pad.shape[1]:
        rows_a, heads_a = _attachment_arrays(ha)
        # c[ib] = min_ia (head[ia] + s2s[ia, ib]); adding the door
        # tail afterwards is monotone, so the hoist is exact.
        c = (heads_a[:, None] + s2s[rows_a, :]).min(axis=0)
        vals = (c[rows_pad] + heads_pad).min(axis=1)
    else:
        vals = np.full(len(ids), INF)
    dx = pos_a.x - x
    dy = pos_a.y - y
    dz = az - z
    euclid = np.sqrt((dx * dx + dy * dy) + dz * dz)
    res = np.where(_touch_mask(flat, floor_a, level_a), euclid, vals)
    return dict(zip(ids, res.tolist()))


def _sweep_to_tables(skeleton, flat, r_b):
    """Read-only gather tables for a terminal side of ``r_b`` pairs.

    Column order is ``(stair slot i, terminal pair j) -> i * r_b + j``
    over the padded width: ``idx`` maps each cell to its entry in the
    flattened ``s2s[:, rows_b]`` block and ``heads_rep`` repeats each
    door-side head across the terminal pairs.  Both depend only on
    the venue layout and ``r_b``, never on the endpoint itself, so
    they are cached per skeleton (and, being read-only, safely shared
    across concurrent sweeps; the per-call outputs are fresh arrays).
    """
    cache = skeleton._kernel_cache.setdefault("np_to", {})
    entry = cache.get(r_b)
    if entry is None:
        rows_pad, heads_pad = flat[6], flat[7]
        count, width = rows_pad.shape
        idx = (rows_pad[:, :, None] * r_b
               + np.arange(r_b, dtype=np.int64)[None, None, :]
               ).reshape(count, width * r_b)
        heads_rep = np.repeat(heads_pad, r_b, axis=1)
        entry = (idx, heads_rep)
        cache[r_b] = entry
    return entry


def sweep_to(skeleton, hb):
    """``{door id: lower_bound_heads(heads(door), hb)}`` for all doors."""
    n, s2s, flat = _skeleton_arrays(skeleton)
    ids, x, y, z, level, _, rows_pad, heads_pad = flat
    pos_b, floor_b, level_b, pairs_b, _ = hb
    bz = level_b * FLOOR_HEIGHT
    width = heads_pad.shape[1]
    if pairs_b and n and width:
        rows_b, heads_b = _attachment_arrays(hb)
        # The door-side head is added *first*, which does not factor
        # out of the minimum exactly — evaluate every
        # (door, stair slot, terminal pair) sum.  Flat 2-D layout:
        # contiguous gather + adds beat the equivalent 3-D broadcast
        # by several times at these shapes.
        idx, heads_rep = _sweep_to_tables(skeleton, flat, rows_b.size)
        totals = s2s[:, rows_b].ravel()[idx]
        np.add(heads_rep, totals, out=totals)
        totals += np.tile(heads_b, width)
        vals = totals.min(axis=1)
    else:
        vals = np.full(len(ids), INF)
    dx = x - pos_b.x
    dy = y - pos_b.y
    dz = z - bz
    euclid = np.sqrt((dx * dx + dy * dy) + dz * dz)
    res = np.where(_touch_mask(flat, floor_b, level_b), euclid, vals)
    return dict(zip(ids, res.tolist()))


def suite():
    from repro.space.kernels import KernelSuite
    return KernelSuite("numpy", sssp=sssp, sweep_from=sweep_from,
                       sweep_to=sweep_to, freeze=freeze)

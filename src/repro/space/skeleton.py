"""Skeleton lower-bound indoor distances (Xie et al., ICDE 2013).

The pruning rules of the paper need a cheap *lower bound* ``|xi, xj|L``
on the true indoor walking distance between two items:

* same floor — the straight-line Euclidean distance,
* different floors — any path must thread through staircase doors, so
  the bound is the minimum over pairs of staircase doors ``(sdi, sdj)``
  of ``|xi, sdi|E + δs2s(sdi, sdj) + |sdj, xj|E``, where ``δs2s`` is
  the skeleton distance between staircase doors.

``δs2s`` is precomputed once per space by running all-pairs shortest
paths over the (small) staircase-door graph whose edge weights are
Euclidean distances — themselves lower bounds of real walks — so the
composite value never exceeds the true indoor distance.

The all-pairs table is stored as one flat ``array('d')`` of ``n * n``
doubles (row-major) rather than a list of lists, and the staircase
door coordinates are hoisted into parallel flat coordinate arrays, so
the double loop of :meth:`SkeletonIndex.lower_bound` — which runs
under Pruning Rules 1–4 on every expansion — indexes typed buffers
instead of chasing nested Python objects.  The arithmetic matches
:meth:`~repro.geometry.Point.distance_to` operation for operation, so
bounds are bit-identical to the nested-list implementation.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Dict, List, Tuple, Union

from repro.geometry import Point
from repro.geometry.point import FLOOR_HEIGHT
from repro.space.indoor_space import IndoorSpace

INF = math.inf

#: A skeleton query item: a door id or a free point.
Item = Union[int, Point]

#: A precomputed attachment over the staircase doors of the item's
#: floor: ``(position, floor, level, [(row, head), ...],
#: [(row * n, head), ...])``.  Floor and level ride along so the
#: same-floor check costs tuple loads instead of property calls; the
#: second pair list carries the premultiplied δs2s row base for the
#: outer loop of :meth:`SkeletonIndex.lower_bound_heads`.
Attachment = Tuple[Point, int, float,
                   List[Tuple[int, float]], List[Tuple[int, float]]]

_sqrt = math.sqrt


def _levels_touch(level_a: float, level_b: float) -> bool:
    """Whether two levels are close enough for plain Euclid to bound.

    A stair door at level ``f + 0.5`` touches both floor ``f`` and
    floor ``f + 1``.  Single source of the 0.5 invariant — the flat
    fast paths, the item entry point and the dict reference core all
    route through it.
    """
    return abs(level_a - level_b) <= 0.5


class SkeletonIndex:
    """Lower-bound distance oracle over an :class:`IndoorSpace`.

    The index is tiny (staircase doors only) and query time is
    ``O(|SD(floor_a)| * |SD(floor_b)|)``, typically a few dozen
    multiply-adds.
    """

    #: Process-wide count of δs2s all-pairs constructions; snapshot
    #: loads bypass the build and must leave this untouched.
    s2s_builds = 0

    #: Whether callers may use the precomputed-attachment fast path
    #: (:meth:`heads` / :meth:`lower_bound_heads`).  The dict-based
    #: reference index switches this off so the retained legacy code
    #: path stays measurable.
    supports_heads = True

    def __init__(self, space: IndoorSpace) -> None:
        self._space = space
        self._stair_doors: List[int] = sorted(
            did for did, door in space.doors.items() if door.is_staircase_door)
        self._finish_init()
        self._build_s2s()

    def _finish_init(self) -> None:
        """Derived flat state shared by every constructor."""
        space = self._space
        self._index: Dict[int, int] = {
            did: i for i, did in enumerate(self._stair_doors)}
        self._positions: List[Point] = [
            space.door(did).position for did in self._stair_doors]
        # Parallel coordinate buffers of the staircase doors; ``_pz``
        # pre-applies the floor height exactly as ``Point.z`` does.
        self._px = array("d", (p.x for p in self._positions))
        self._py = array("d", (p.y for p in self._positions))
        self._pz = array("d", (p.level * FLOOR_HEIGHT
                               for p in self._positions))
        self._floor_rows: Dict[int, List[int]] = {}
        # Lazily filled per-door attachment table: door id ->
        # (position, [(stair row, |door, sd|E), ...] for its floor).
        # Pure in the space, so one table serves every query; door
        # items then enter the lower-bound double loop with *no*
        # per-call sqrt at all.
        self._door_heads: Dict[int, "Attachment"] = {}
        #: Attached kernel suite (``None`` -> interpreted loops) and
        #: its per-index cache of vectorized views of the δs2s table
        #: and the per-floor door coordinate groups.
        self._kernel = None
        self._kernel_cache: Dict[str, object] = {}

    @classmethod
    def from_precomputed(cls,
                         space: IndoorSpace,
                         stair_doors: List[int],
                         s2s: List[List[float]]) -> "SkeletonIndex":
        """Rebuild an index from exported ``(stair_doors, s2s)`` data.

        Mirrors :meth:`DoorGraph.from_csr`: no all-pairs computation
        runs, so snapshot-loaded workers skip the build entirely.
        """
        flat = array("d", (INF if v is None else v
                           for row in s2s for v in row))
        return cls.from_precomputed_flat(space, stair_doors, flat)

    @classmethod
    def from_precomputed_flat(cls,
                              space: IndoorSpace,
                              stair_doors: List[int],
                              s2s_flat: array) -> "SkeletonIndex":
        """Adopt a flat row-major δs2s buffer (binary snapshot v2).

        ``s2s_flat`` must hold ``len(stair_doors) ** 2`` doubles; no
        conversion or all-pairs computation runs.  Typed buffers
        (``array`` objects, or read-only ``memoryview`` slices of an
        ``mmap``-ed snapshot payload) are adopted without copying —
        the index never mutates its table.  (The boxed-float hot
        mirror ``_s2s_hot`` is still built per process: it is a list
        of Python objects, inherently heap state — and tiny, since the
        table only spans staircase doors.)
        """
        n = len(stair_doors)
        if len(s2s_flat) != n * n:
            raise ValueError(
                f"flat s2s table must hold {n * n} entries, "
                f"got {len(s2s_flat)}")
        index = cls.__new__(cls)
        index._space = space
        index._stair_doors = list(stair_doors)
        index._finish_init()
        index._set_s2s(s2s_flat if isinstance(s2s_flat, (array, memoryview))
                       else array("d", s2s_flat))
        return index

    def _set_s2s(self, s2s: array) -> None:
        self._s2s = s2s
        # List mirror for the query loop: list indexing hands out the
        # already-boxed floats, where ``array('d')`` would box a fresh
        # float object per access.  The array remains the canonical
        # (exported, snapshot-packed) representation.
        self._s2s_hot = list(s2s)

    def set_kernel(self, suite) -> None:
        """Attach a :class:`repro.space.kernels.KernelSuite`.

        ``None`` or the pure-python suite detaches the kernel; the
        interpreted double loop then serves every bound.  Attaching
        resets the kernel cache so stale vectorized views of a
        previous table can never leak across hot-swaps.
        """
        if suite is not None and suite.name == "python":
            suite = None
        self._kernel = suite
        self._kernel_cache = {}

    @property
    def kernel_name(self) -> str:
        """The active kernel backend name (``python`` when detached)."""
        return self._kernel.name if self._kernel is not None else "python"

    def export(self) -> Dict[str, list]:
        """JSON-serialisable ``(stair_doors, s2s)`` snapshot payload.

        Unreachable pairs (``inf``) are encoded as ``None`` — JSON has
        no infinity.  (The binary snapshot v2 packs
        :meth:`export_flat` instead, where ``inf`` survives natively.)
        """
        n = len(self._stair_doors)
        s2s = self._s2s
        return {
            "stair_doors": list(self._stair_doors),
            "s2s": [[None if s2s[i * n + j] == INF else s2s[i * n + j]
                     for j in range(n)]
                    for i in range(n)],
        }

    def export_flat(self) -> Tuple[List[int], array]:
        """``(stair_doors, flat row-major δs2s buffer)`` for snapshot v2."""
        return list(self._stair_doors), self._s2s

    @property
    def staircase_doors(self) -> List[int]:
        return list(self._stair_doors)

    def _build_s2s(self) -> None:
        """All-pairs skeleton distances between staircase doors.

        Staircase doors are connected to each other by straight-line
        segments whenever they serve overlapping floors (one can walk
        from one to the other without passing a third floor level in
        between); Dijkstra over that graph gives the skeleton metric.
        """
        SkeletonIndex.s2s_builds += 1
        n = len(self._stair_doors)
        positions = self._positions
        adj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if abs(positions[i].level - positions[j].level) <= 1.0:
                    w = positions[i].distance_to(positions[j])
                    adj[i].append((j, w))
                    adj[j].append((i, w))
        s2s = array("d", [INF]) * (n * n)
        for src in range(n):
            base = src * n
            s2s[base + src] = 0.0
            heap: List[Tuple[float, int]] = [(0.0, src)]
            visited = [False] * n
            while heap:
                d, u = heapq.heappop(heap)
                if visited[u]:
                    continue
                visited[u] = True
                for v, w in adj[u]:
                    nd = d + w
                    if nd < s2s[base + v]:
                        s2s[base + v] = nd
                        heapq.heappush(heap, (nd, v))
        self._set_s2s(s2s)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _position(self, x: Item) -> Point:
        if isinstance(x, int):
            return self._space.door(x).position
        return x

    def _stair_doors_for_floor(self, floor: int) -> List[int]:
        rows = self._floor_rows.get(floor)
        if rows is None:
            rows = [self._index[did]
                    for did in self._space.staircase_doors_on_floor(floor)]
            self._floor_rows[floor] = rows
        return rows

    def _heads(self, x: Item) -> Attachment:
        """``(position, [(stair row, |x, sd|E), ...])`` of an item.

        For doors the attachment is cached on the index (pure in the
        space); free points compute theirs (two per query: ``ps`` /
        ``pt``) on the fly.  The distances use the exact arithmetic of
        :meth:`~repro.geometry.Point.distance_to`, so cached heads
        change no bound by even an ulp.
        """
        if isinstance(x, int):
            cached = self._door_heads.get(x)
            if cached is not None:
                return cached
            pos = self._space.door(x).position
        else:
            pos = x
        rows = self._stair_doors_for_floor(pos.floor)
        px = self._px
        py = self._py
        pz = self._pz
        ax = pos.x
        ay = pos.y
        az = pos.level * FLOOR_HEIGHT
        pairs: List[Tuple[int, float]] = []
        for ia in rows:
            dx = ax - px[ia]
            dy = ay - py[ia]
            dz = az - pz[ia]
            pairs.append((ia, _sqrt(dx * dx + dy * dy + dz * dz)))
        # Ascending by head distance: once a head reaches the best
        # bound, every later pair is dominated (δs2s and tails are
        # non-negative) and the outer loop may stop — an exact
        # short-circuit, not an approximation.
        pairs.sort(key=lambda pair: pair[1])
        n = len(self._stair_doors)
        based = [(ia * n, head) for ia, head in pairs]
        attachment = (pos, pos.floor, pos.level, pairs, based)
        if isinstance(x, int):
            self._door_heads[x] = attachment
        return attachment

    def heads(self, x: Item) -> Attachment:
        """Public access to the attachment of an item.

        Query contexts hold the attachments of their fixed endpoints
        (``ps`` / ``pt``) and call :meth:`lower_bound_heads` directly,
        so the per-call attachment cost disappears from the pruning
        hot path entirely.
        """
        return self._heads(x)

    def lower_bound(self, xi: Item, xj: Item) -> float:
        """The skeleton lower-bound distance ``|xi, xj|L``."""
        a = self._position(xi)
        b = self._position(xj)
        # Same floor (or a touching stair door): plain Euclid, no
        # attachment arrays needed.
        if a.floor == b.floor or _levels_touch(a.level, b.level):
            return a.distance_to(b)
        return self.lower_bound_heads(self._heads(xi), self._heads(xj))

    def lower_bound_heads(self, ha: Attachment, hb: Attachment) -> float:
        """``|a, b|L`` from two precomputed attachments."""
        a, floor_a, level_a, _, based_a = ha
        b, floor_b, level_b, pairs_b, _ = hb
        if floor_a == floor_b or _levels_touch(level_a, level_b):
            return a.distance_to(b)
        if not based_a or not pairs_b:
            return INF
        s2s = self._s2s_hot
        best = INF
        for base, head in based_a:
            if head >= best:
                break  # pairs are head-ascending; the rest is dominated
            for ib, tail in pairs_b:
                total = head + s2s[base + ib] + tail
                if total < best:
                    best = total
        return best

    def lower_bound_sweep_from(self, ha: Attachment) -> Dict[int, float]:
        """``door id -> |a, door|L`` for every door in the space.

        The batched form of :meth:`lower_bound_heads` with ``ha`` as
        the left endpoint.  A query context that will probe many doors
        (the Rule 1-4 pruning loop visits most candidate partitions'
        doors) amortises one vectorized sweep across all of them; each
        value is bit-identical to the per-door call.
        """
        kernel = self._kernel
        if kernel is not None and kernel.sweep_from is not None:
            return kernel.sweep_from(self, ha)
        lbh = self.lower_bound_heads
        heads = self._heads
        return {did: lbh(ha, heads(did))
                for did in sorted(self._space.doors)}

    def lower_bound_sweep_to(self, hb: Attachment) -> Dict[int, float]:
        """``door id -> |door, b|L`` for every door in the space."""
        kernel = self._kernel
        if kernel is not None and kernel.sweep_to is not None:
            return kernel.sweep_to(self, hb)
        lbh = self.lower_bound_heads
        heads = self._heads
        return {did: lbh(heads(did), hb)
                for did in sorted(self._space.doors)}

    @staticmethod
    def _touching_levels(a: Point, b: Point) -> bool:
        """Whether one item is a stair door adjacent to the other's floor.

        Plain Euclidean distance is already a valid lower bound in
        that case; see :func:`_levels_touch`.
        """
        return _levels_touch(a.level, b.level)

    def lower_bound_via_partition(self,
                                  xs: Item,
                                  pid: int,
                                  xt: Item) -> float:
        """Pruning Rule 3's ``δLB(xs, vi, xt)``.

        The minimum over enterable doors ``di`` and leaveable doors
        ``dj`` of partition ``pid`` of ``|xs, di|L + δd2d(di, dj) +
        |dj, xt|L``; the middle term is the intra-partition Euclidean
        distance (zero when ``di == dj``).
        """
        return self.lower_bound_via_partition_heads(
            self._heads(xs), pid, self._heads(xt))

    def lower_bound_via_partition_heads(
            self,
            hs: Attachment,
            pid: int,
            ht: Attachment,
            space=None) -> float:
        """Pruning Rule 3 from precomputed endpoint triples.

        The endpoint attachment arrays are computed once per query;
        only the (cached) door triples of the candidate partition vary
        inside the loop.

        ``space`` overrides the topology the ``p2d`` sets are read
        from — queries under a closure overlay pass their edited view
        so the bound only considers doors that are actually open.  The
        head attachments and the δs2s skeleton itself are pure
        geometry over door positions (closures keep every door), so
        the same index serves every overlay.
        """
        if space is None:
            space = self._space
        heads = self._heads
        lbh = self.lower_bound_heads
        best = INF
        for di in space.p2d_enter(pid):
            head = lbh(hs, heads(di))
            if head >= best:
                continue
            pos_i = space.door(di).position
            for dj in space.p2d_leave(pid):
                mid = 0.0 if di == dj else pos_i.distance_to(
                    space.door(dj).position)
                total = head + mid + lbh(heads(dj), ht)
                if total < best:
                    best = total
        return best

"""Skeleton lower-bound indoor distances (Xie et al., ICDE 2013).

The pruning rules of the paper need a cheap *lower bound* ``|xi, xj|L``
on the true indoor walking distance between two items:

* same floor — the straight-line Euclidean distance,
* different floors — any path must thread through staircase doors, so
  the bound is the minimum over pairs of staircase doors ``(sdi, sdj)``
  of ``|xi, sdi|E + δs2s(sdi, sdj) + |sdj, xj|E``, where ``δs2s`` is
  the skeleton distance between staircase doors.

``δs2s`` is precomputed once per space by running all-pairs shortest
paths over the (small) staircase-door graph whose edge weights are
Euclidean distances — themselves lower bounds of real walks — so the
composite value never exceeds the true indoor distance.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple, Union

from repro.geometry import Point
from repro.space.indoor_space import IndoorSpace

INF = math.inf

#: A skeleton query item: a door id or a free point.
Item = Union[int, Point]


class SkeletonIndex:
    """Lower-bound distance oracle over an :class:`IndoorSpace`.

    The index is tiny (staircase doors only) and query time is
    ``O(|SD(floor_a)| * |SD(floor_b)|)``, typically a few dozen
    multiply-adds.
    """

    #: Process-wide count of δs2s all-pairs constructions; snapshot
    #: loads bypass the build and must leave this untouched.
    s2s_builds = 0

    def __init__(self, space: IndoorSpace) -> None:
        self._space = space
        self._stair_doors: List[int] = sorted(
            did for did, door in space.doors.items() if door.is_staircase_door)
        self._index: Dict[int, int] = {
            did: i for i, did in enumerate(self._stair_doors)}
        self._positions: List[Point] = [
            space.door(did).position for did in self._stair_doors]
        self._s2s: List[List[float]] = []
        self._build_s2s()

    @classmethod
    def from_precomputed(cls,
                         space: IndoorSpace,
                         stair_doors: List[int],
                         s2s: List[List[float]]) -> "SkeletonIndex":
        """Rebuild an index from exported ``(stair_doors, s2s)`` data.

        Mirrors :meth:`DoorGraph.from_csr`: no all-pairs computation
        runs, so snapshot-loaded workers skip the build entirely.
        """
        index = cls.__new__(cls)
        index._space = space
        index._stair_doors = list(stair_doors)
        index._index = {did: i for i, did in enumerate(index._stair_doors)}
        index._positions = [space.door(did).position
                            for did in index._stair_doors]
        index._s2s = [[INF if v is None else v for v in row] for row in s2s]
        return index

    def export(self) -> Dict[str, list]:
        """JSON-serialisable ``(stair_doors, s2s)`` snapshot payload.

        Unreachable pairs (``inf``) are encoded as ``None`` — JSON has
        no infinity.
        """
        return {
            "stair_doors": list(self._stair_doors),
            "s2s": [[None if v == INF else v for v in row]
                    for row in self._s2s],
        }

    @property
    def staircase_doors(self) -> List[int]:
        return list(self._stair_doors)

    def _build_s2s(self) -> None:
        """All-pairs skeleton distances between staircase doors.

        Staircase doors are connected to each other by straight-line
        segments whenever they serve overlapping floors (one can walk
        from one to the other without passing a third floor level in
        between); Dijkstra over that graph gives the skeleton metric.
        """
        SkeletonIndex.s2s_builds += 1
        space = self._space
        n = len(self._stair_doors)
        positions = [space.door(did).position for did in self._stair_doors]
        adj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if abs(positions[i].level - positions[j].level) <= 1.0:
                    w = positions[i].distance_to(positions[j])
                    adj[i].append((j, w))
                    adj[j].append((i, w))
        self._s2s = [[INF] * n for _ in range(n)]
        for src in range(n):
            row = self._s2s[src]
            row[src] = 0.0
            heap: List[Tuple[float, int]] = [(0.0, src)]
            visited = [False] * n
            while heap:
                d, u = heapq.heappop(heap)
                if visited[u]:
                    continue
                visited[u] = True
                for v, w in adj[u]:
                    nd = d + w
                    if nd < row[v]:
                        row[v] = nd
                        heapq.heappush(heap, (nd, v))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _position(self, x: Item) -> Point:
        if isinstance(x, int):
            return self._space.door(x).position
        return x

    def _stair_doors_for_floor(self, floor: int) -> List[int]:
        return [self._index[did]
                for did in self._space.staircase_doors_on_floor(floor)]

    def lower_bound(self, xi: Item, xj: Item) -> float:
        """The skeleton lower-bound distance ``|xi, xj|L``."""
        a = self._position(xi)
        b = self._position(xj)
        if a.floor == b.floor or self._touching_levels(a, b):
            return a.distance_to(b)
        rows_a = self._stair_doors_for_floor(a.floor)
        rows_b = self._stair_doors_for_floor(b.floor)
        if not rows_a or not rows_b:
            return INF
        positions = self._positions
        best = INF
        for ia in rows_a:
            head = a.distance_to(positions[ia])
            if head >= best:
                continue
            row = self._s2s[ia]
            for ib in rows_b:
                total = head + row[ib] + positions[ib].distance_to(b)
                if total < best:
                    best = total
        return best

    @staticmethod
    def _touching_levels(a: Point, b: Point) -> bool:
        """Whether one item is a stair door adjacent to the other's floor.

        A stair door at level ``f + 0.5`` touches both floor ``f`` and
        floor ``f + 1``; plain Euclidean distance is already a valid
        lower bound in that case.
        """
        return abs(a.level - b.level) <= 0.5

    def lower_bound_via_partition(self,
                                  xs: Item,
                                  pid: int,
                                  xt: Item) -> float:
        """Pruning Rule 3's ``δLB(xs, vi, xt)``.

        The minimum over enterable doors ``di`` and leaveable doors
        ``dj`` of partition ``pid`` of ``|xs, di|L + δd2d(di, dj) +
        |dj, xt|L``; the middle term is the intra-partition Euclidean
        distance (zero when ``di == dj``).
        """
        space = self._space
        best = INF
        for di in space.p2d_enter(pid):
            head = self.lower_bound(xs, di)
            if head >= best:
                continue
            pos_i = space.door(di).position
            for dj in space.p2d_leave(pid):
                mid = 0.0 if di == dj else pos_i.distance_to(
                    space.door(dj).position)
                total = head + mid + self.lower_bound(dj, xt)
                if total < best:
                    best = total
        return best

"""Partitions and doors: the basic entities of the indoor space model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.geometry import Point, Rect


class PartitionKind(enum.Enum):
    """Functional category of a partition.

    Only :attr:`STAIRCASE` changes behaviour (it participates in the
    skeleton lower-bound index); the rest are informational and used by
    data generators and examples.
    """

    ROOM = "room"
    HALLWAY = "hallway"
    STAIRCASE = "staircase"
    #: Elevator shafts behave like staircases topologically (vertical
    #: connectors whose inter-floor doors sit at half levels); the
    #: separate kind lets venues and routing policies distinguish them
    #: (paper §VII names lifts as future work).
    ELEVATOR = "elevator"


@dataclass(frozen=True)
class Partition:
    """A basic indoor region with clear boundaries (room, hallway cell,
    staircase or booth).

    Attributes:
        pid: Unique partition identifier.
        footprint: Rectangular footprint on its floor.  Staircase
            partitions span levels; their footprint records the lower
            floor.
        kind: Functional category.
        name: Optional human-readable name (e.g. ``"v3"``).
    """

    pid: int
    footprint: Rect
    kind: PartitionKind = PartitionKind.ROOM
    name: Optional[str] = None

    @property
    def level(self) -> float:
        return self.footprint.level

    @property
    def floor(self) -> int:
        return int(self.footprint.level)

    def contains(self, p: Point) -> bool:
        return self.footprint.contains(p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"v{self.pid}"
        return f"Partition({label}, floor={self.floor}, kind={self.kind.value})"


@dataclass(frozen=True)
class Door:
    """A door connecting indoor partitions, possibly one-way.

    Directionality follows the paper's model: ``enters`` is the set of
    partition ids one can *enter* through this door (``D2P-enter``),
    and ``leaves`` is the set of partition ids one can *leave* through
    it (``D2P-leave``).  A normal two-way door between partitions
    ``a`` and ``b`` has ``enters == leaves == {a, b}``; a one-way door
    from ``a`` into ``b`` has ``enters == {b}`` and ``leaves == {a}``.

    Staircase doors (connecting the staircase partitions of two
    adjacent floors) sit at a half level, which makes all intra-
    partition distances around them come out of plain 3-D Euclidean
    geometry (see :mod:`repro.geometry.point`).
    """

    did: int
    position: Point
    enters: FrozenSet[int] = field(default_factory=frozenset)
    leaves: FrozenSet[int] = field(default_factory=frozenset)
    name: Optional[str] = None

    @property
    def level(self) -> float:
        return self.position.level

    @property
    def floor(self) -> int:
        return self.position.floor

    @property
    def is_staircase_door(self) -> bool:
        """True when the door sits between two floors (half level)."""
        return self.position.level != int(self.position.level)

    def partitions(self) -> FrozenSet[int]:
        """All partitions adjacent to this door (either direction)."""
        return self.enters | self.leaves

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"d{self.did}"
        return f"Door({label}, level={self.level})"

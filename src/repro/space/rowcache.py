"""On-disk spill tier for evicted :class:`~repro.space.graph.DoorMatrix` rows.

A memory-budgeted door matrix evicts its least-recently-used rows;
without a spill tier every eviction throws away a full Dijkstra run
that a later query may need again.  :class:`RowCacheFile` keeps those
rows on disk instead: an append-only per-engine cache file holding each
evicted :class:`~repro.space.graph.FlatTree` in the **binary snapshot
v2 row encoding** (the same three flat little-endian buffers —
``dist`` doubles, ``pred`` / ``pred_via`` signed 64-bit — over dense
door indices), so a spilled row faults back with three ``frombytes``
memcpys and zero recomputation, byte-identical to the evicted object.

File layout (little-endian, like snapshot v2)::

    record := s64 source door id
              s64 n (dense door count — sanity-checked on fault)
              dist      n * f64
              pred      n * s64
              pred_via  n * s64
    file   := record*     (append order; superseded records are never
                           rewritten — rows are pure in the graph, so
                           one source is written at most once)

The file is per-engine scratch, not an exchange format: it is created
truncated, indexed only by the in-memory ``source -> offset`` table,
and deleted on :meth:`close`.  Rows are immutable, so a source is
stored at most once and every fault returns exactly the bytes the
eviction wrote.

Thread safety: one internal lock serialises seeks against reads and
appends, matching the matrix's own locking discipline.
"""

from __future__ import annotations

import os
import struct
import sys
import threading
from array import array
from typing import Dict, List, Optional, Union

from repro.space.graph import FlatTree

_HEADER = struct.Struct("<qq")


def _little_endian_bytes(buf) -> bytes:
    """``buf`` (array or memoryview) as little-endian raw bytes."""
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        swapped = array(getattr(buf, "typecode", None) or buf.format, buf)
        swapped.byteswap()
        return swapped.tobytes()
    return buf.tobytes()


def _array_from_little_endian(typecode: str, payload: bytes) -> array:
    arr = array(typecode)
    arr.frombytes(payload)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        arr.byteswap()
    return arr


class RowCacheFile:
    """Append-only disk cache of evicted door-matrix rows.

    Counters are mutated by the owning :class:`DoorMatrix` under its
    lock; this class only guards its own file and offset table.
    """

    def __init__(self, graph, path: Union[str, os.PathLike]) -> None:
        self._graph = graph
        self.path = str(path)
        self._lock = threading.Lock()
        #: source door id -> record offset in the file.
        self._offsets: Dict[int, int] = {}
        self._fh = open(self.path, "w+b")
        self._nbytes = 0
        self._closed = False

    # ------------------------------------------------------------------
    def store(self, source: int, tree: FlatTree) -> bool:
        """Append ``tree`` as ``source``'s spilled row.

        Returns ``False`` (and writes nothing) when the source is
        already on disk — rows are pure in the graph, so the existing
        record is already byte-identical to ``tree``.
        """
        n = len(tree.dist)
        dist = _little_endian_bytes(tree.dist)
        pred = _little_endian_bytes(tree.pred)
        pred_via = _little_endian_bytes(tree.pred_via)
        with self._lock:
            if self._closed or source in self._offsets:
                return False
            offset = self._fh.seek(0, os.SEEK_END)
            self._fh.write(_HEADER.pack(source, n))
            self._fh.write(dist)
            self._fh.write(pred)
            self._fh.write(pred_via)
            self._offsets[source] = offset
            self._nbytes = self._fh.tell()
            return True

    def load(self, source: int) -> Optional[FlatTree]:
        """Fault ``source``'s spilled row back, or ``None`` if absent.

        The returned tree's buffers hold exactly the evicted bytes;
        ``touched`` is re-derived lazily (nothing order-sensitive
        consumes it — see :class:`FlatTree`).
        """
        graph = self._graph
        with self._lock:
            offset = self._offsets.get(source)
            if offset is None or self._closed:
                return None
            self._fh.seek(offset)
            header = self._fh.read(_HEADER.size)
            stored, n = _HEADER.unpack(header)
            if stored != source:
                raise ValueError(
                    f"row cache corrupt: expected source {source} at "
                    f"offset {offset}, found {stored}")
            dist_raw = self._fh.read(n * 8)
            pred_raw = self._fh.read(n * 8)
            via_raw = self._fh.read(n * 8)
        if len(via_raw) != n * 8:
            raise ValueError(f"row cache truncated at source {source}")
        return FlatTree(
            graph._door_ids, graph._door_index,
            _array_from_little_endian("d", dist_raw),
            _array_from_little_endian("q", pred_raw),
            _array_from_little_endian("q", via_raw))

    # ------------------------------------------------------------------
    def __contains__(self, source: int) -> bool:
        with self._lock:
            return source in self._offsets

    def __len__(self) -> int:
        with self._lock:
            return len(self._offsets)

    @property
    def nbytes(self) -> int:
        """Bytes written to the cache file so far."""
        with self._lock:
            return self._nbytes

    def sources(self) -> List[int]:
        with self._lock:
            return sorted(self._offsets)

    def close(self, delete: bool = True) -> None:
        """Close (and by default unlink) the scratch file."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.close()
            finally:
                if delete:
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass

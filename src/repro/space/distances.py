"""Intra-partition distance functions (paper Section II-A).

The oracle implements:

* ``d2d(di, dj)``   — intra-partition door-to-door distance ``δd2d``,
  including the special same-door re-entry cost,
* ``pt2d(p, d)``    — point-to-door distance ``δpt2d``,
* ``d2pt(d, p)``    — door-to-point distance ``δd2pt``,
* ``item_distance`` — the generic ``δ*`` dispatch over doors/points.

All distances are ``math.inf`` when topology forbids the move, exactly
as in the paper's definitions.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple, Union

from repro.geometry import Point
from repro.space.indoor_space import IndoorSpace

#: A route item is either a door id (int) or a free indoor point.
Item = Union[int, Point]

INF = math.inf


class DistanceOracle:
    """Intra-partition distances over an :class:`IndoorSpace`.

    Same-door re-entry costs (``δd2d(d, d)``) are cached per
    ``(door, partition)`` pair because they require scanning the
    partition footprint.
    """

    def __init__(self, space: IndoorSpace) -> None:
        self._space = space
        self._reentry_cache: Dict[Tuple[int, int], float] = {}
        # Memo of non-loop d2d results keyed (di, dj, via): the set
        # intersections and position lookups are pure in the space, and
        # route extension asks for the same hops over and over.
        self._d2d_cache: Dict[Tuple[int, int, Optional[int]], float] = {}

    @property
    def space(self) -> IndoorSpace:
        return self._space

    # ------------------------------------------------------------------
    # Core distances
    # ------------------------------------------------------------------
    def d2d(self, di: int, dj: int, via: Optional[int] = None) -> float:
        """Intra-partition door-to-door distance ``δd2d(di, dj)``.

        When ``di == dj`` the move means entering a partition and
        leaving through the same door; the cost is double the longest
        non-loop distance reachable inside the partition from that
        door.  ``via`` names the partition being re-entered (required
        to disambiguate when the door touches several partitions; when
        omitted, the cheapest adjacent partition is assumed).
        """
        if di == dj:
            return self._reentry_cost(di, via)
        key = (di, dj, via)
        cached = self._d2d_cache.get(key)
        if cached is not None:
            return cached
        space = self._space
        common = space.d2p_enter(di) & space.d2p_leave(dj)
        if via is not None:
            common = common & {via}
        if not common:
            cost = INF
        else:
            cost = space.door(di).position.distance_to(
                space.door(dj).position)
        self._d2d_cache[key] = cost
        return cost

    def pt2d(self, p: Point, dk: int) -> float:
        """Point-to-door distance ``δpt2d``: leave ``p``'s partition via ``dk``."""
        host = self._space.host_partition(p)
        if dk not in self._space.p2d_leave(host.pid):
            return INF
        return p.distance_to(self._space.door(dk).position)

    def d2pt(self, dk: int, p: Point) -> float:
        """Door-to-point distance ``δd2pt``: enter ``p``'s partition via ``dk``."""
        host = self._space.host_partition(p)
        if dk not in self._space.p2d_enter(host.pid):
            return INF
        return self._space.door(dk).position.distance_to(p)

    def item_distance(self, xi: Item, xj: Item, via: Optional[int] = None) -> float:
        """Generic ``δ*`` dispatch over doors (ids) and points."""
        xi_is_door = isinstance(xi, int)
        xj_is_door = isinstance(xj, int)
        if xi_is_door and xj_is_door:
            return self.d2d(xi, xj, via=via)
        if xi_is_door:
            return self.d2pt(xi, xj)
        if xj_is_door:
            return self.pt2d(xi, xj)
        # point-to-point within one partition (used when s and t share
        # a partition and the route is the trivial (ps, pt)).
        host_i = self._space.host_partition(xi)
        host_j = self._space.host_partition(xj)
        if host_i.pid != host_j.pid:
            return INF
        return xi.distance_to(xj)

    # ------------------------------------------------------------------
    # Same-door re-entry
    # ------------------------------------------------------------------
    def _reentry_cost(self, did: int, via: Optional[int]) -> float:
        """Cost of entering a partition through ``did`` and leaving by it.

        Double the longest non-loop distance reachable inside the
        partition from the door (paper Section II-A).  For rectangular
        partitions that is twice the distance to the farthest corner.
        """
        space = self._space
        door = space.door(did)
        candidates = door.enters & door.leaves
        if via is not None:
            candidates = candidates & {via}
        if not candidates:
            return INF
        best = INF
        for pid in candidates:
            key = (did, pid)
            if key not in self._reentry_cache:
                footprint = space.partition(pid).footprint
                self._reentry_cache[key] = (
                    2.0 * footprint.farthest_corner_distance(door.position))
            best = min(best, self._reentry_cache[key])
        return best

    def reentry_cost(self, did: int, pid: int) -> float:
        """Public same-door re-entry cost for door ``did`` into ``pid``."""
        return self._reentry_cost(did, pid)

    # ------------------------------------------------------------------
    # Helpers used by routing
    # ------------------------------------------------------------------
    def item_position(self, x: Item) -> Point:
        """Physical position of a route item."""
        if isinstance(x, int):
            return self._space.door(x).position
        return x

    def connecting_partition(self, di: int, dj: int) -> Optional[int]:
        """The partition traversed when moving from door ``di`` to ``dj``.

        ``None`` when the move is not possible.  For the same-door
        loop this is ambiguous and the caller must decide (the search
        algorithms always know which partition a loop visits).
        """
        common = self._space.d2p_enter(di) & self._space.d2p_leave(dj)
        if not common:
            return None
        if len(common) == 1:
            return next(iter(common))
        return min(common)

"""Fluent builder for :class:`~repro.space.indoor_space.IndoorSpace`."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.geometry import Point, Rect
from repro.space.entities import Door, Partition, PartitionKind
from repro.space.indoor_space import IndoorSpace

PartitionRef = Union[int, str]


class IndoorSpaceBuilder:
    """Assembles partitions and doors, then produces an IndoorSpace.

    Partitions may be referenced by id or by name when adding doors,
    which keeps hand-written fixtures (like the paper's Fig. 1 floor
    plan) readable::

        b = IndoorSpaceBuilder()
        b.add_partition("v1", Rect(0, 0, 10, 10))
        b.add_partition("v2", Rect(10, 0, 20, 10))
        b.add_door("d1", Point(10, 5), between=("v1", "v2"))
        space = b.build()
    """

    def __init__(self) -> None:
        self._partitions: List[Partition] = []
        self._doors: List[Door] = []
        self._name_to_pid: Dict[str, int] = {}
        self._name_to_did: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def add_partition(self,
                      name: Optional[str],
                      footprint: Rect,
                      kind: PartitionKind = PartitionKind.ROOM) -> int:
        """Register a partition; returns its assigned id."""
        pid = len(self._partitions)
        if name is not None:
            if name in self._name_to_pid:
                raise ValueError(f"duplicate partition name {name!r}")
            self._name_to_pid[name] = pid
        self._partitions.append(Partition(pid, footprint, kind, name))
        return pid

    def _resolve(self, ref: PartitionRef) -> int:
        if isinstance(ref, str):
            try:
                return self._name_to_pid[ref]
            except KeyError:
                raise KeyError(f"unknown partition name {ref!r}") from None
        return ref

    def add_door(self,
                 name: Optional[str],
                 position: Point,
                 between: Optional[Iterable[PartitionRef]] = None,
                 enters: Optional[Iterable[PartitionRef]] = None,
                 leaves: Optional[Iterable[PartitionRef]] = None) -> int:
        """Register a door; returns its assigned id.

        Either pass ``between`` for an ordinary two-way door, or the
        explicit ``enters`` / ``leaves`` sets for one-way doors.
        """
        if between is not None:
            if enters is not None or leaves is not None:
                raise ValueError("pass either 'between' or enters/leaves")
            pids = frozenset(self._resolve(r) for r in between)
            enter_set = leave_set = pids
        else:
            enter_set = frozenset(self._resolve(r) for r in (enters or ()))
            leave_set = frozenset(self._resolve(r) for r in (leaves or ()))
            if not enter_set and not leave_set:
                raise ValueError("door connects no partitions")
        did = len(self._doors)
        if name is not None:
            if name in self._name_to_did:
                raise ValueError(f"duplicate door name {name!r}")
            self._name_to_did[name] = did
        self._doors.append(Door(did, position, enter_set, leave_set, name))
        return did

    # ------------------------------------------------------------------
    def pid(self, name: str) -> int:
        """Id of a previously added named partition."""
        return self._name_to_pid[name]

    def did(self, name: str) -> int:
        """Id of a previously added named door."""
        return self._name_to_did[name]

    def build(self) -> IndoorSpace:
        return IndoorSpace(self._partitions, self._doors)

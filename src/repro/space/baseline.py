"""The retained dict-of-dict reference core (pre-array-native).

Every structure under the IKRQ search loop now runs on flat typed
arrays and bitmasks: CSR Dijkstra with epoch-versioned workspaces and
:class:`~repro.space.graph.FlatTree` results, a flat δs2s skeleton
table, and interned-bitmask keyword matching.  This module *retains*
the dict-based implementations those replaced — dict-adjacency
Dijkstra materialising fresh ``dist``/``pred`` dicts per call, a
nested-list skeleton table, dict door-matrix rows and frozenset
keyword algebra — wired into the same engine interfaces.

It exists for two reasons, both exercised by ``repro.bench scale``:

* **equivalence** — the array-native core must answer byte-identically
  to the dict core on every workload (the tests and the scale bench
  assert full result-signature equality), and
* **measurement** — the scale bench times both cores on the same
  query stream in the same process, so the speedup of the array-native
  layout is measured against a live baseline rather than a historical
  number.

The dict core is *not* a serving configuration; nothing outside the
benches and tests should construct it.
"""

from __future__ import annotations

import heapq
import math
from typing import (Dict, FrozenSet, Iterable, List, Optional, Set, Tuple)

from repro.geometry import Point
from repro.keywords.matching import CandidateEntry, QueryKeywords
from repro.keywords.mappings import KeywordIndex
from repro.keywords.vocabulary import normalize_word
from repro.space.distances import DistanceOracle
from repro.space.graph import DoorGraph, DoorMatrix, reconstruct_route
from repro.space.indoor_space import IndoorSpace
from repro.space.skeleton import SkeletonIndex

INF = math.inf


# ----------------------------------------------------------------------
# Keywords: frozenset algebra
# ----------------------------------------------------------------------
def set_candidate_iword_set(index: KeywordIndex,
                            word: str,
                            tau: float = 0.2) -> List[CandidateEntry]:
    """``κ(wQ)`` by frozenset feature algebra (reference semantics).

    The bitmask implementation in :mod:`repro.keywords.matching` must
    return exactly this list for every input.
    """
    w = normalize_word(word)
    vocab = index.vocabulary
    if vocab.is_iword(w):
        return [CandidateEntry(w, 1.0, True)]
    if not vocab.is_tword(w):
        return []
    direct = index.t2i(w)
    if not direct:
        return []
    union_features: Set[str] = set()
    for wi in direct:
        union_features |= index.i2t(wi)
    entries = [CandidateEntry(wi, 1.0, True) for wi in sorted(direct)]
    for wi in sorted(index.iwords):
        if wi in direct:
            continue
        features = index.i2t(wi)
        if not features:
            continue
        inter = len(features & union_features)
        if inter == 0:
            continue
        union = len(features | union_features)
        score = inter / union
        if score > tau:
            entries.append(CandidateEntry(wi, score, False))
    entries.sort(key=lambda e: (-e.similarity, not e.direct, e.iword))
    return entries


class DictQueryKeywords(QueryKeywords):
    """``QueryKeywords`` evaluated entirely through set algebra.

    ``use_route_masks = False`` keeps contexts built over this class
    on the frozenset word-merge path, so the scale bench measures the
    pre-mask route algebra it retains.
    """

    _candidates = staticmethod(set_candidate_iword_set)
    use_route_masks = False

    def relevance_of_iword_set(self, iwords: Iterable[str]) -> float:
        sims = [0.0] * len(self.words)
        for wi in iwords:
            for qi, s in self.hits_for_iword(wi):
                if s > sims[qi]:
                    sims[qi] = s
        return self.relevance_from_sims(sims)


# ----------------------------------------------------------------------
# Skeleton: nested-list δs2s table
# ----------------------------------------------------------------------
class DictSkeletonIndex(SkeletonIndex):
    """Skeleton oracle over a nested list-of-lists δs2s table.

    Construction delegates to the flat build (identical arithmetic),
    then mirrors the table into nested rows; queries run the original
    object-chasing loop, including the per-call floor-list rebuild and
    endpoint re-attachment the flat index now caches.
    """

    supports_heads = False

    def __init__(self, space: IndoorSpace) -> None:
        super().__init__(space)
        n = len(self._stair_doors)
        flat = self._s2s
        self._rows: List[List[float]] = [
            [flat[i * n + j] for j in range(n)] for i in range(n)]

    def _stair_doors_for_floor(self, floor: int) -> List[int]:
        return [self._index[did]
                for did in self._space.staircase_doors_on_floor(floor)]

    def lower_bound(self, xi, xj) -> float:
        a = self._position(xi)
        b = self._position(xj)
        if a.floor == b.floor or self._touching_levels(a, b):
            return a.distance_to(b)
        rows_a = self._stair_doors_for_floor(a.floor)
        rows_b = self._stair_doors_for_floor(b.floor)
        if not rows_a or not rows_b:
            return INF
        positions = self._positions
        best = INF
        for ia in rows_a:
            head = a.distance_to(positions[ia])
            if head >= best:
                continue
            row = self._rows[ia]
            for ib in rows_b:
                total = head + row[ib] + positions[ib].distance_to(b)
                if total < best:
                    best = total
        return best

    def lower_bound_via_partition(self, xs, pid, xt) -> float:
        space = self._space
        best = INF
        for di in space.p2d_enter(pid):
            head = self.lower_bound(xs, di)
            if head >= best:
                continue
            pos_i = space.door(di).position
            for dj in space.p2d_leave(pid):
                mid = 0.0 if di == dj else pos_i.distance_to(
                    space.door(dj).position)
                total = head + mid + self.lower_bound(dj, xt)
                if total < best:
                    best = total
        return best


# ----------------------------------------------------------------------
# Routing: dict-adjacency Dijkstra
# ----------------------------------------------------------------------
class DictDoorGraph(DoorGraph):
    """Door graph whose shortest-path queries run on dict structures.

    The adjacency is a ``door id -> [(neighbour, via, weight)]`` dict
    (rows copied from the CSR build, preserving edge order so
    equal-distance tie-breaking matches), and every query materialises
    fresh ``dist`` / ``pred`` dicts with a ``(distance, door id)``
    heap — the allocation pattern of the pre-workspace implementation.
    """

    def __init__(self, space: IndoorSpace,
                 oracle: Optional[DistanceOracle] = None) -> None:
        super().__init__(space, oracle)
        self._adj: Dict[int, List[Tuple[int, int, float]]] = {
            did: self.neighbours(did) for did in self._door_ids}

    # -- the dict inner loop -------------------------------------------
    def _dict_run(self,
                  dist: Dict[int, float],
                  pred: Dict[int, Tuple[Optional[int], int]],
                  heap: List[Tuple[float, int]],
                  banned: Set[int],
                  targets: Optional[Set[int]],
                  bound: float,
                  forbid: Optional[int],
                  banned_partitions=None) -> None:
        adj = self._adj
        settled: Set[int] = set()
        remaining = set(targets) if targets is not None else None
        push = heapq.heappush
        pop = heapq.heappop
        bp = banned_partitions
        while heap:
            d, u = pop(heap)
            if u in settled:
                continue
            settled.add(u)
            if remaining is not None and u in remaining:
                remaining.discard(u)
                if not remaining:
                    break
            for v, via, w in adj[u]:
                if v in banned or v in settled or v == forbid:
                    continue
                if bp is not None and via in bp:
                    continue
                nd = d + w
                if nd > bound:
                    continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    pred[v] = (u, via)
                    push(heap, (nd, v))

    def _dict_seed(self,
                   dist: Dict[int, float],
                   pred: Dict[int, Tuple[Optional[int], int]],
                   heap: List[Tuple[float, int]],
                   seeds: Iterable[Tuple[float, int, Optional[int], int]],
                   banned: Set[int],
                   bound: float,
                   forbid: Optional[int],
                   banned_partitions=None) -> None:
        bp = banned_partitions
        for w, node, prev, via in seeds:
            if w > bound or node in banned or node == forbid:
                continue
            if bp is not None and via in bp:
                continue
            if w < dist.get(node, INF):
                dist[node] = w
                pred[node] = (prev, via)
                heapq.heappush(heap, (w, node))

    def _dict_routes(self,
                     dist: Dict[int, float],
                     pred: Dict[int, Tuple[Optional[int], int]],
                     source: Optional[int],
                     targets: Iterable[int],
                     bound: float) -> Dict[int, Tuple[List[int], List[int], float]]:
        routes: Dict[int, Tuple[List[int], List[int], float]] = {}
        for target in targets:
            d = dist.get(target)
            if d is None or d > bound:
                continue
            doors, vias = reconstruct_route(pred, source, target)
            routes[target] = (doors, vias, d)
        return routes

    # -- public queries -------------------------------------------------
    def dijkstra(self, source, banned=None, targets=None, bound=INF,
                 workspace=None):
        if targets is not None:
            tset = {t for t in targets if t in self._door_index}
            tset.discard(source)
            if not tset:
                return {source: 0.0}, {}
        else:
            tset = None
        banned_set: Set[int] = set()
        if banned:
            banned_set = {d for d in banned if d != source}
        dist: Dict[int, float] = {source: 0.0}
        pred: Dict[int, Tuple[Optional[int], int]] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        self._dict_run(dist, pred, heap, banned_set, tset, bound, None)
        return dist, pred

    def dijkstra_tree(self, source, bound=INF, workspace=None,
                      banned=None, banned_partitions=None):
        raise NotImplementedError(
            "the dict reference core has no flat-tree results; "
            "use DictDoorMatrix")

    def shortest_route(self, source, target, banned=None, bound=INF,
                       first_hop_via=None, workspace=None):
        if first_hop_via is not None:
            return self.multi_target_routes(
                source, first_hop_via, {target}, banned=banned,
                bound=bound).get(target)
        if source == target:
            return [], [], 0.0
        dist, pred = self.dijkstra(source, banned=banned,
                                   targets={target}, bound=bound)
        routes = self._dict_routes(dist, pred, source, (target,), bound)
        return routes.get(target)

    def multi_target_routes(self, source, first_via, targets, banned=None,
                            bound=INF, workspace=None,
                            banned_partitions=None):
        space = self._space
        index = self._door_index
        tset = {t for t in targets if t in index}
        tset.discard(source)
        src_pos = space.door(source).position
        seeds = [(src_pos.distance_to(space.door(dj).position),
                  dj, source, first_via)
                 for dj in space.p2d_leave(first_via)]
        dist: Dict[int, float] = {}
        pred: Dict[int, Tuple[Optional[int], int]] = {}
        heap: List[Tuple[float, int]] = []
        banned_set = set(banned or ())
        self._dict_seed(dist, pred, heap, seeds, banned_set, bound, source,
                        banned_partitions)
        self._dict_run(dist, pred, heap, banned_set, tset, bound, source,
                       banned_partitions)
        return self._dict_routes(dist, pred, source, targets, bound)

    def _point_run(self, p: Point, host_pid: int,
                   banned: Set[int],
                   targets: Optional[Set[int]],
                   bound: float,
                   banned_partitions=None):
        space = self._space
        seeds = [(p.distance_to(space.door(dj).position),
                  dj, None, host_pid)
                 for dj in space.p2d_leave(host_pid)]
        dist: Dict[int, float] = {}
        pred: Dict[int, Tuple[Optional[int], int]] = {}
        heap: List[Tuple[float, int]] = []
        self._dict_seed(dist, pred, heap, seeds, banned, bound, None,
                        banned_partitions)
        self._dict_run(dist, pred, heap, banned, targets, bound, None,
                       banned_partitions)
        return dist, pred

    def routes_from_point(self, p, host_pid, targets, banned=None,
                          bound=INF, workspace=None,
                          banned_partitions=None):
        index = self._door_index
        tset = {t for t in targets if t in index}
        dist, pred = self._point_run(p, host_pid, set(banned or ()),
                                     tset, bound, banned_partitions)
        return self._dict_routes(dist, pred, None, targets, bound)

    def distances_from_point(self, p, bound=INF, workspace=None):
        host = self._space.host_partition(p)
        dist, _ = self._point_run(p, host.pid, set(), None, bound)
        return dist

    def point_attachment_map(self, p, workspace=None,
                             banned=None, banned_partitions=None):
        host = self._space.host_partition(p)
        dist, pred = self._point_run(p, host.pid, set(banned or ()),
                                     None, INF, banned_partitions)
        return host.pid, dist, pred

    def point_to_point_distance(self, ps, pt, bound=INF, workspace=None):
        space = self._space
        host_s = space.host_partition(ps)
        host_t = space.host_partition(pt)
        best = INF
        if host_s.pid == host_t.pid:
            best = ps.distance_to(pt)
        door_dist = self.distances_from_point(ps, bound=min(bound, best))
        for dk in space.p2d_enter(host_t.pid):
            if dk not in door_dist:
                continue
            total = door_dist[dk] + space.door(dk).position.distance_to(pt)
            if total < best:
                best = total
        return best


class DictDoorMatrix(DoorMatrix):
    """All-pairs matrix whose rows are ``(dist dict, pred dict)`` pairs."""

    def _row(self, source):
        with self._lock:
            row = self._rows.get(source)
            if row is not None:
                if self.max_rows is not None:
                    self._rows.move_to_end(source)
                return row
        row = self._graph.dijkstra(source)
        with self._lock:
            row = self._rows.setdefault(source, row)
            if self.max_rows is not None:
                self._rows.move_to_end(source)
                while len(self._rows) > self.max_rows:
                    self._rows.popitem(last=False)
                    self.evictions += 1
            return row

    def distance(self, di, dj):
        dist, _ = self._row(di)
        return dist.get(dj, INF)

    def route(self, di, dj):
        dist, pred = self._row(di)
        if dj not in dist:
            return None
        doors, vias = reconstruct_route(pred, di, dj)
        return doors, vias, dist[dj]

    def warm_trees(self, limit=None):
        raise NotImplementedError("the dict reference matrix is bench-only")

    def warm_rows(self, limit=None):
        raise NotImplementedError("the dict reference matrix is bench-only")

    def preload_trees(self, trees):
        raise NotImplementedError("the dict reference matrix is bench-only")

    def preload_rows(self, rows):
        raise NotImplementedError("the dict reference matrix is bench-only")

    def estimated_bytes(self):
        total = 0
        with self._lock:
            for dist, pred in self._rows.values():
                total += 64 * len(dist) + 96 * len(pred)
        return total


# ----------------------------------------------------------------------
# Engine assembly
# ----------------------------------------------------------------------
def build_reference_engine(space: IndoorSpace,
                           kindex: KeywordIndex,
                           popularity: Optional[Dict[int, float]] = None,
                           door_matrix_max_rows: Optional[int] = None):
    """An ``IKRQEngine`` running entirely on the dict reference core.

    The KoE* matrix is injected lazily (dict rows); pair queries with
    :func:`reference_context` so keyword conversion also uses the
    set-algebra path.
    """
    from repro.core.engine import IKRQEngine

    oracle = DistanceOracle(space)
    graph = DictDoorGraph(space, oracle)
    skeleton = DictSkeletonIndex(space)
    matrix = DictDoorMatrix(graph, eager=False,
                            max_rows=door_matrix_max_rows)
    engine = IKRQEngine(space, kindex, popularity=popularity,
                        door_matrix_eager=False,
                        door_matrix_max_rows=door_matrix_max_rows,
                        oracle=oracle, graph=graph, skeleton=skeleton,
                        door_matrix=matrix)
    # Pre-array engines kept no per-endpoint lower-bound state outside
    # the batched service: capacity 0 hands every query a fresh map.
    engine.endpoint_lb_capacity = 0
    return engine


def reference_context(engine, query):
    """A query context whose keyword conversion uses the set algebra."""
    return engine.context(
        query, qk=DictQueryKeywords(engine.kindex, query.keywords,
                                    tau=query.tau))

"""Elevator shafts: the paper's §VII "special entities like lifts".

An elevator is modelled as a stack of shaft partitions (one per floor,
:attr:`PartitionKind.ELEVATOR`) linked by doors at half levels —
exactly the staircase topology, so the skeleton lower-bound index and
all pruning rules handle lifts without modification.  What
distinguishes a lift in this distance-based model is *placement*:
venues add shafts where stairs are far, improving vertical
connectivity (waiting/ride time is outside the paper's distance
metric and is documented as out of scope).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.geometry import Point, Rect
from repro.space.builder import IndoorSpaceBuilder, PartitionRef
from repro.space.entities import PartitionKind

#: Shaft footprint side (metres).
SHAFT_SIDE = 2.5


def add_elevator_shaft(builder: IndoorSpaceBuilder,
                       x: float,
                       y: float,
                       lobbies: Sequence[PartitionRef],
                       name: str = "lift") -> List[int]:
    """Add an elevator shaft serving ``len(lobbies)`` stacked floors.

    Args:
        builder: The venue under construction.
        x, y: Planar position of the shaft.
        lobbies: One partition per floor (bottom to top) that the
            shaft opens onto; floor ``f`` is the lobby's level.
        name: Name prefix for the shaft partitions and doors.

    Returns:
        The shaft partition ids, bottom to top.
    """
    if len(lobbies) < 2:
        raise ValueError("an elevator must serve at least two floors")
    shaft_pids: List[int] = []
    for floor, lobby in enumerate(lobbies):
        pid = builder.add_partition(
            f"{name}-shaft{floor}",
            Rect(x, y, x + SHAFT_SIDE, y + SHAFT_SIDE, float(floor)),
            PartitionKind.ELEVATOR)
        shaft_pids.append(pid)
        builder.add_door(
            f"{name}-door{floor}",
            Point(x, y + SHAFT_SIDE / 2.0, float(floor)),
            between=(lobby, pid))
        if floor > 0:
            builder.add_door(
                f"{name}-ride{floor - 1}",
                Point(x + SHAFT_SIDE / 2.0, y + SHAFT_SIDE / 2.0,
                      floor - 0.5),
                between=(shaft_pids[floor - 1], pid))
    return shaft_pids

"""The :class:`IndoorSpace` container with topology mappings.

This is the substrate model from Lu et al. (ICDE 2012) that the paper
relies on.  It stores partitions and doors and exposes the four
topology mappings used throughout the paper:

* ``d2p_enter(d)``  — partitions one can enter through door ``d``
  (written ``D2P-enter`` / ``D2PA`` in the paper),
* ``d2p_leave(d)``  — partitions one can leave through door ``d``
  (``D2P-leave`` / ``D2P@``),
* ``p2d_enter(v)``  — enterable doors of partition ``v`` (``P2DA``),
* ``p2d_leave(v)``  — leaveable doors of partition ``v`` (``P2D@``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.geometry import Point
from repro.space.entities import Door, Partition, PartitionKind


class IndoorSpace:
    """An indoor venue: partitions, doors, and their topology.

    Instances are immutable once constructed (use
    :class:`repro.space.builder.IndoorSpaceBuilder` to assemble one);
    derived indexes are computed eagerly so queries are cheap.
    """

    def __init__(self, partitions: Iterable[Partition], doors: Iterable[Door]) -> None:
        self._partitions: Dict[int, Partition] = {p.pid: p for p in partitions}
        self._doors: Dict[int, Door] = {d.did: d for d in doors}
        self._validate()

        self._p2d_enter: Dict[int, FrozenSet[int]] = {}
        self._p2d_leave: Dict[int, FrozenSet[int]] = {}
        self._build_p2d()

        self._staircase_doors_by_floor: Dict[int, List[int]] = {}
        self._build_staircase_index()

        self._host_cache: Dict[Point, Partition] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for door in self._doors.values():
            for pid in door.partitions():
                if pid not in self._partitions:
                    raise ValueError(
                        f"door {door.did} references unknown partition {pid}")

    def _build_p2d(self) -> None:
        enter: Dict[int, set] = {pid: set() for pid in self._partitions}
        leave: Dict[int, set] = {pid: set() for pid in self._partitions}
        for door in self._doors.values():
            for pid in door.enters:
                enter[pid].add(door.did)
            for pid in door.leaves:
                leave[pid].add(door.did)
        self._p2d_enter = {pid: frozenset(ds) for pid, ds in enter.items()}
        self._p2d_leave = {pid: frozenset(ds) for pid, ds in leave.items()}

    def _build_staircase_index(self) -> None:
        by_floor: Dict[int, List[int]] = {}
        for door in self._doors.values():
            if not door.is_staircase_door:
                continue
            lower = int(door.level)  # door at f + 0.5 serves floors f and f+1
            by_floor.setdefault(lower, []).append(door.did)
            by_floor.setdefault(lower + 1, []).append(door.did)
        self._staircase_doors_by_floor = {
            floor: sorted(dids) for floor, dids in by_floor.items()
        }

    # ------------------------------------------------------------------
    # Entity access
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> Dict[int, Partition]:
        return self._partitions

    @property
    def doors(self) -> Dict[int, Door]:
        return self._doors

    def partition(self, pid: int) -> Partition:
        return self._partitions[pid]

    def door(self, did: int) -> Door:
        return self._doors[did]

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    @property
    def num_doors(self) -> int:
        return len(self._doors)

    @property
    def num_floors(self) -> int:
        if not self._partitions:
            return 0
        return 1 + max(p.floor for p in self._partitions.values())

    # ------------------------------------------------------------------
    # Topology mappings (paper Section II-A)
    # ------------------------------------------------------------------
    def d2p_enter(self, did: int) -> FrozenSet[int]:
        """Partitions one can enter through door ``did`` (``D2PA``)."""
        return self._doors[did].enters

    def d2p_leave(self, did: int) -> FrozenSet[int]:
        """Partitions one can leave through door ``did`` (``D2P@``)."""
        return self._doors[did].leaves

    def p2d_enter(self, pid: int) -> FrozenSet[int]:
        """Enterable doors of partition ``pid`` (``P2DA``)."""
        return self._p2d_enter[pid]

    def p2d_leave(self, pid: int) -> FrozenSet[int]:
        """Leaveable doors of partition ``pid`` (``P2D@``)."""
        return self._p2d_leave[pid]

    # ------------------------------------------------------------------
    # Point location
    # ------------------------------------------------------------------
    def host_partition(self, p: Point) -> Partition:
        """The partition containing point ``p`` (``v(p)`` in the paper).

        Raises :class:`ValueError` if no partition contains the point.
        Containment is resolved by footprint; when footprints touch,
        the partition with the smallest area wins (rooms beat the
        hallway cells they abut).
        """
        cached = self._host_cache.get(p)
        if cached is not None:
            return cached
        hits = [part for part in self._partitions.values() if part.contains(p)]
        if not hits:
            raise ValueError(f"point {p} is not inside any partition")
        best = min(hits, key=lambda part: (part.footprint.area, part.pid))
        if len(self._host_cache) < 65536:
            self._host_cache[p] = best
        return best

    def staircase_doors_on_floor(self, floor: int) -> List[int]:
        """Staircase doors serving ``floor`` (``SD(x)`` in the paper)."""
        return self._staircase_doors_by_floor.get(floor, [])

    def staircase_partitions(self) -> List[Partition]:
        return [p for p in self._partitions.values()
                if p.kind is PartitionKind.STAIRCASE]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndoorSpace({self.num_partitions} partitions, "
                f"{self.num_doors} doors, {self.num_floors} floors)")

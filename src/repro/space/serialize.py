"""JSON (de)serialisation of indoor spaces and keyword indexes.

Venues and their keyword mappings are expensive to regenerate and
natural to ship as data files; this module provides a stable,
versioned JSON format::

    {
      "format": "repro-indoor-space",
      "version": 1,
      "partitions": [{"pid", "name", "kind", "rect": [x0,y0,x1,y1,level]}],
      "doors": [{"did", "name", "position": [x,y,level],
                 "enters": [...], "leaves": [...]}],
      "keywords": {"iwords": {pid: word}, "twords": {word: [t, ...]}}
    }

Round-tripping preserves ids, names, directionality and the full
keyword mappings.

This document describes the *raw model* only — loading one still pays
every index build (CSR door graph, skeleton δs2s, door matrix).  The
serving layer extends it into a versioned **snapshot** bundle
(``repro-ikrq-snapshot``, :mod:`repro.serve.snapshot`) that embeds this
venue document under a ``venue`` key alongside the serialised built
indexes, so serve workers cold-start by loading instead of rebuilding::

    {"format": "repro-ikrq-snapshot", "version": 1,
     "venue": {...this document...},
     "graph": {CSR buffers}, "skeleton": {stair doors + δs2s},
     "door_matrix": {warm rows}, "prime": {advisory entries},
     "engine": {matrix eagerness/budget, popularity}}

Snapshots additionally come in a **binary version-2 encoding** (magic
``IKRQSNP2``; see :mod:`repro.serve.snapshot`) that keeps this venue
document as JSON inside the header but packs every built index as raw
typed-array bytes — the fastest cold-start on big venues.  Version-1
JSON snapshots remain fully readable.

Floats survive all formats exactly (JSON emits the shortest
round-tripping ``repr``; the binary encoding stores IEEE bits), which
is what lets a snapshot-loaded engine answer byte-identically to the
engine it was taken from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.geometry import Point, Rect
from repro.keywords.mappings import KeywordIndex
from repro.space.entities import Door, Partition, PartitionKind
from repro.space.indoor_space import IndoorSpace

FORMAT_NAME = "repro-indoor-space"
FORMAT_VERSION = 1


def space_to_dict(space: IndoorSpace,
                  kindex: Optional[KeywordIndex] = None) -> Dict:
    """Serialise a space (and optionally its keyword index) to a dict."""
    doc: Dict = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "partitions": [
            {
                "pid": p.pid,
                "name": p.name,
                "kind": p.kind.value,
                "rect": [p.footprint.x_min, p.footprint.y_min,
                         p.footprint.x_max, p.footprint.y_max,
                         p.footprint.level],
            }
            for p in sorted(space.partitions.values(), key=lambda p: p.pid)
        ],
        "doors": [
            {
                "did": d.did,
                "name": d.name,
                "position": [d.position.x, d.position.y, d.position.level],
                "enters": sorted(d.enters),
                "leaves": sorted(d.leaves),
            }
            for d in sorted(space.doors.values(), key=lambda d: d.did)
        ],
    }
    if kindex is not None:
        iwords = {str(pid): kindex.p2i(pid)
                  for pid in sorted(kindex.labelled_partitions())}
        twords = {wi: sorted(kindex.i2t(wi))
                  for wi in sorted(kindex.iwords)}
        doc["keywords"] = {"iwords": iwords, "twords": twords}
    return doc


def space_from_dict(doc: Dict) -> Tuple[IndoorSpace, Optional[KeywordIndex]]:
    """Rebuild a space (and keyword index, when present) from a dict."""
    if doc.get("format") != FORMAT_NAME:
        raise ValueError(f"not a {FORMAT_NAME} document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {doc.get('version')!r}")
    partitions = []
    for entry in doc["partitions"]:
        x0, y0, x1, y1, level = entry["rect"]
        partitions.append(Partition(
            pid=entry["pid"],
            footprint=Rect(x0, y0, x1, y1, level),
            kind=PartitionKind(entry["kind"]),
            name=entry.get("name"),
        ))
    doors = []
    for entry in doc["doors"]:
        x, y, level = entry["position"]
        doors.append(Door(
            did=entry["did"],
            position=Point(x, y, level),
            enters=frozenset(entry["enters"]),
            leaves=frozenset(entry["leaves"]),
            name=entry.get("name"),
        ))
    space = IndoorSpace(partitions, doors)

    kindex: Optional[KeywordIndex] = None
    if "keywords" in doc:
        kindex = KeywordIndex()
        for pid_str, iword in doc["keywords"]["iwords"].items():
            kindex.assign_iword(int(pid_str), iword)
        for iword, twords in doc["keywords"]["twords"].items():
            kindex.add_twords(iword, twords)
    return space, kindex


def save_space(path: Union[str, Path],
               space: IndoorSpace,
               kindex: Optional[KeywordIndex] = None) -> None:
    """Write a venue to a JSON file."""
    doc = space_to_dict(space, kindex)
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))


def load_space(path: Union[str, Path],
               ) -> Tuple[IndoorSpace, Optional[KeywordIndex]]:
    """Read a venue from a JSON file."""
    doc = json.loads(Path(path).read_text())
    return space_from_dict(doc)

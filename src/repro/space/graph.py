"""Door-to-door routing graph with shortest (regular) route search.

The door graph is the standard routing substrate over the indoor-space
model: nodes are doors, and there is a directed edge ``di -> dj``
whenever one can enter a partition through ``di`` and leave it through
``dj`` (paper Section II-A).  Edge weights are the intra-partition
Euclidean door-to-door distances.

The adjacency is stored in CSR form — parallel flat buffers of
neighbour indices, via-partition ids and weights over interned
(densely renumbered) door ids — and every shortest-path entry point is
a thin parameterisation of **one** Dijkstra inner loop
(:meth:`DoorGraph._run_dijkstra`), differing only in its seed edges:

* single source (ordinary Dijkstra with optional *banned door* sets,
  which is how the search algorithms obtain shortest **regular**
  continuations),
* first-hop restricted (the first move must leave a given partition,
  used by the keyword-oriented expansion),
* point-attached (``ps`` / ``pt`` virtual nodes seeded through the
  leaveable doors of the host partition).

Scratch state lives in a reusable, epoch-versioned
:class:`DijkstraWorkspace`, so repeated calls — within one query and
across a whole query batch — allocate nothing in the inner loop.
Route reconstruction is one shared predecessor walk
(:func:`reconstruct_route`) used by every caller, including
:class:`DoorMatrix`.
"""

from __future__ import annotations

import heapq
import math
import threading
from array import array
from collections import OrderedDict
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.geometry import Point
from repro.space.distances import DistanceOracle
from repro.space.indoor_space import IndoorSpace

INF = math.inf

#: An adjacency entry: (neighbour door id, via partition id, weight).
Edge = Tuple[int, int, float]

#: Predecessor sentinel (dense index space): the tree root.
_ROOT = -1
#: Predecessor sentinel: a point-attachment seed (``prev`` is ``None``).
_POINT = -2


def reconstruct_route(pred: Mapping[int, Tuple[Optional[int], int]],
                      source: Optional[int],
                      target: int) -> Tuple[List[int], List[int]]:
    """Walk a predecessor mapping back from ``target`` to ``source``.

    ``pred[d]`` is ``(previous door, via partition)``; the walk stops
    when the previous door equals ``source`` (``None`` for
    point-attached trees, whose first entry carries ``prev=None``).
    Returns ``(doors, vias)`` where ``doors`` starts with the first
    door *after* ``source`` and ends with ``target`` and ``vias[i]``
    is the partition traversed to reach ``doors[i]``.
    """
    doors: List[int] = []
    vias: List[int] = []
    node: Optional[int] = target
    while node != source:
        prev, via = pred[node]
        doors.append(node)
        vias.append(via)
        node = prev
    doors.reverse()
    vias.reverse()
    return doors, vias


class DijkstraWorkspace:
    """Reusable scratch state for one CSR Dijkstra run at a time.

    All per-node state is epoch-versioned: ``begin`` bumps the epoch
    instead of clearing the flat arrays, so a workspace can be reused
    for an unbounded number of runs with zero per-run allocation.  A
    workspace belongs to exactly one thread at a time — concurrent
    query evaluation uses one workspace per worker thread (see
    ``QueryService``).
    """

    __slots__ = ("dist", "pred", "pred_via", "visit", "settled", "banned",
                 "target", "epoch", "heap", "touched")

    def __init__(self, num_nodes: int) -> None:
        self.dist = array("d", [0.0] * num_nodes)
        self.pred = array("q", [_ROOT] * num_nodes)
        self.pred_via = array("q", [-1] * num_nodes)
        self.visit = array("q", [0] * num_nodes)
        self.settled = array("q", [0] * num_nodes)
        self.banned = array("q", [0] * num_nodes)
        self.target = array("q", [0] * num_nodes)
        self.epoch = 0
        self.heap: List[Tuple[float, int]] = []
        self.touched: List[int] = []

    def begin(self) -> int:
        """Start a new run: bump the epoch and reset the hot lists."""
        self.epoch += 1
        self.heap.clear()
        self.touched.clear()
        return self.epoch


class _PredView(Mapping):
    """Read-only mapping view of a workspace's predecessor arrays.

    Adapts the flat dense-index arrays to the door-id mapping interface
    that :func:`reconstruct_route` (and dict-based callers such as
    :class:`DoorMatrix`) consume, so the predecessor walk exists once.
    """

    __slots__ = ("_ws", "_graph")

    def __init__(self, ws: DijkstraWorkspace, graph: "DoorGraph") -> None:
        self._ws = ws
        self._graph = graph

    def __getitem__(self, did: int) -> Tuple[Optional[int], int]:
        ws = self._ws
        idx = self._graph._door_index[did]
        if ws.visit[idx] != ws.epoch:
            raise KeyError(did)
        prev = ws.pred[idx]
        if prev == _ROOT:
            raise KeyError(did)
        if prev == _POINT:
            return None, ws.pred_via[idx]
        return self._graph._door_ids[prev], ws.pred_via[idx]

    def __iter__(self):  # pragma: no cover - Mapping protocol filler
        ws = self._ws
        for idx in ws.touched:
            if ws.pred[idx] != _ROOT:
                yield self._graph._door_ids[idx]

    def __len__(self) -> int:  # pragma: no cover - Mapping protocol filler
        return sum(1 for _ in self)


class DoorGraph:
    """Directed door-to-door graph over an :class:`IndoorSpace`.

    The CSR adjacency is materialised once at construction; all
    shortest-path queries run over it.  Self-loop edges (the ``(d, d)``
    re-entry move) are *not* part of the graph — they are an explicit
    search move handled by the IKRQ algorithms, never useful on a pure
    shortest path.
    """

    #: Process-wide count of CSR constructions (adjacency scans).  A
    #: worker that loads a serve snapshot must *not* bump this — the
    #: serve tests assert cold-start skips the rebuild.
    csr_builds = 0

    def __init__(self, space: IndoorSpace, oracle: Optional[DistanceOracle] = None) -> None:
        self._space = space
        self._oracle = oracle or DistanceOracle(space)
        #: Door-id interning: dense index -> door id, ascending by door
        #: id so heap ordering (and therefore equal-distance
        #: tie-breaking) matches the id order of the dict-based
        #: predecessor trees this structure replaced.
        self._door_ids = array("q", sorted(space.doors))
        self._door_index: Dict[int, int] = {
            did: idx for idx, did in enumerate(self._door_ids)}
        self._build_csr()
        self._workspace_tls = threading.local()

    @classmethod
    def from_csr(cls,
                 space: IndoorSpace,
                 door_ids: Sequence[int],
                 indptr: Sequence[int],
                 nbr: Sequence[int],
                 via: Sequence[int],
                 wt: Sequence[float],
                 oracle: Optional[DistanceOracle] = None) -> "DoorGraph":
        """Rebuild a graph from previously exported CSR buffers.

        The buffers must come from :meth:`csr_arrays` of a graph over
        an identical space; no adjacency scan runs (``csr_builds`` is
        not incremented), which is what makes snapshot-loaded serve
        workers cold-start without paying the build again.
        """
        graph = cls.__new__(cls)
        graph._space = space
        graph._oracle = oracle or DistanceOracle(space)
        graph._door_ids = array("q", door_ids)
        graph._door_index = {did: idx
                             for idx, did in enumerate(graph._door_ids)}
        graph._indptr = array("q", indptr)
        graph._nbr = array("q", nbr)
        graph._via = array("q", via)
        graph._wt = array("d", wt)
        graph._workspace_tls = threading.local()
        return graph

    def csr_arrays(self) -> Dict[str, list]:
        """The interned CSR buffers as JSON-serialisable lists."""
        return {
            "door_ids": list(self._door_ids),
            "indptr": list(self._indptr),
            "nbr": list(self._nbr),
            "via": list(self._via),
            "wt": list(self._wt),
        }

    def _build_csr(self) -> None:
        DoorGraph.csr_builds += 1
        space = self._space
        index = self._door_index
        per_node: List[List[Tuple[int, int, float]]] = [
            [] for _ in self._door_ids]
        for pid in space.partitions:
            enterable = space.p2d_enter(pid)
            leaveable = space.p2d_leave(pid)
            for di in enterable:
                pos_i = space.door(di).position
                row = per_node[index[di]]
                for dj in leaveable:
                    if di == dj:
                        continue
                    row.append((index[dj], pid,
                                pos_i.distance_to(space.door(dj).position)))
        indptr = array("q", [0] * (len(per_node) + 1))
        nbr = array("q")
        via = array("q")
        wt = array("d")
        for idx, row in enumerate(per_node):
            for j, pid, weight in row:
                nbr.append(j)
                via.append(pid)
                wt.append(weight)
            indptr[idx + 1] = len(nbr)
        self._indptr = indptr
        self._nbr = nbr
        self._via = via
        self._wt = wt

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def oracle(self) -> DistanceOracle:
        return self._oracle

    @property
    def num_nodes(self) -> int:
        return len(self._door_ids)

    def neighbours(self, did: int) -> Sequence[Edge]:
        """Outgoing edges of door ``did`` as ``(door, via, weight)``."""
        idx = self._door_index[did]
        ids = self._door_ids
        return [(ids[self._nbr[k]], self._via[k], self._wt[k])
                for k in range(self._indptr[idx], self._indptr[idx + 1])]

    def num_edges(self) -> int:
        return len(self._nbr)

    # ------------------------------------------------------------------
    # Workspaces
    # ------------------------------------------------------------------
    def new_workspace(self) -> DijkstraWorkspace:
        """A fresh workspace sized for this graph (one per thread)."""
        return DijkstraWorkspace(len(self._door_ids))

    @property
    def workspace(self) -> DijkstraWorkspace:
        """The graph-owned default workspace of the calling thread.

        Thread-local so that bare concurrent ``engine.search`` calls
        (without a ``QueryService``) never share scratch state.
        """
        ws = getattr(self._workspace_tls, "workspace", None)
        if ws is None:
            ws = self.new_workspace()
            self._workspace_tls.workspace = ws
        return ws

    # ------------------------------------------------------------------
    # The unified Dijkstra core
    # ------------------------------------------------------------------
    def _run_dijkstra(self,
                      ws: DijkstraWorkspace,
                      seeds: Iterable[Tuple[float, int, int, int]],
                      banned: Iterable[int],
                      targets: Optional[Iterable[int]],
                      bound: float,
                      forbid: int = -1) -> None:
        """The one Dijkstra inner loop, parameterised by seed edges.

        Args:
            ws: Workspace receiving the run's distance/predecessor
                state (valid until its next ``begin``).
            seeds: ``(weight, node, pred, via)`` seed relaxations in
                dense-index space; ``pred`` is :data:`_ROOT` for the
                tree root and :data:`_POINT` for point attachments.
            banned: Door *ids* that may not be visited.
            targets: Dense indices to settle before stopping early
                (``None`` searches exhaustively within ``bound``).
            bound: Distances beyond this value are not explored.
            forbid: Dense index never to relax (the first-hop-restricted
                searches must not return to their source), ``-1`` none.
        """
        epoch = ws.begin()
        dist = ws.dist
        pred = ws.pred
        pred_via = ws.pred_via
        visit = ws.visit
        settled = ws.settled
        banned_mark = ws.banned
        target_mark = ws.target
        door_index = self._door_index
        for did in banned:
            idx = door_index.get(did)
            if idx is not None:
                banned_mark[idx] = epoch
        remaining = -1
        if targets is not None:
            remaining = 0
            for idx in targets:
                if target_mark[idx] != epoch:
                    target_mark[idx] = epoch
                    remaining += 1
            if remaining == 0:
                return
        heap = ws.heap
        touched = ws.touched
        push = heapq.heappush
        for weight, node, prev, via in seeds:
            if weight > bound or banned_mark[node] == epoch or node == forbid:
                continue
            if visit[node] != epoch:
                visit[node] = epoch
                touched.append(node)
            elif weight >= dist[node]:
                continue
            dist[node] = weight
            pred[node] = prev
            pred_via[node] = via
            push(heap, (weight, node))
        indptr = self._indptr
        nbr = self._nbr
        vias = self._via
        wts = self._wt
        pop = heapq.heappop
        while heap:
            d, u = pop(heap)
            if settled[u] == epoch:
                continue
            settled[u] = epoch
            if remaining >= 0 and target_mark[u] == epoch:
                remaining -= 1
                if remaining == 0:
                    break
            for k in range(indptr[u], indptr[u + 1]):
                v = nbr[k]
                if banned_mark[v] == epoch or settled[v] == epoch or v == forbid:
                    continue
                nd = d + wts[k]
                if nd > bound:
                    continue
                if visit[v] != epoch:
                    visit[v] = epoch
                    touched.append(v)
                elif nd >= dist[v]:
                    continue
                dist[v] = nd
                pred[v] = u
                pred_via[v] = vias[k]
                push(heap, (nd, v))

    # ------------------------------------------------------------------
    # Seed builders
    # ------------------------------------------------------------------
    def _first_hop_seeds(self,
                         source: int,
                         first_via: int) -> List[Tuple[float, int, int, int]]:
        """Seed edges leaving ``first_via`` from door ``source``."""
        space = self._space
        index = self._door_index
        src_idx = index[source]
        src_pos = space.door(source).position
        return [(src_pos.distance_to(space.door(dj).position),
                 index[dj], src_idx, first_via)
                for dj in space.p2d_leave(first_via)]

    def _point_seeds(self,
                     p: Point,
                     host_pid: int) -> List[Tuple[float, int, int, int]]:
        """Seed edges attaching point ``p`` through its host partition."""
        space = self._space
        index = self._door_index
        return [(p.distance_to(space.door(dj).position),
                 index[dj], _POINT, host_pid)
                for dj in space.p2d_leave(host_pid)]

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------
    def _dist_dict(self, ws: DijkstraWorkspace) -> Dict[int, float]:
        ids = self._door_ids
        dist = ws.dist
        return {ids[idx]: dist[idx] for idx in ws.touched}

    def _pred_dict(self, ws: DijkstraWorkspace) -> Dict[int, Tuple[Optional[int], int]]:
        ids = self._door_ids
        pred = ws.pred
        pred_via = ws.pred_via
        out: Dict[int, Tuple[Optional[int], int]] = {}
        for idx in ws.touched:
            prev = pred[idx]
            if prev == _ROOT:
                continue
            out[ids[idx]] = ((None, pred_via[idx]) if prev == _POINT
                             else (ids[prev], pred_via[idx]))
        return out

    def _routes_to(self,
                   ws: DijkstraWorkspace,
                   source: Optional[int],
                   targets: Iterable[int],
                   bound: float) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Reconstructed routes to every reachable target (door ids)."""
        index = self._door_index
        view = _PredView(ws, self)
        routes: Dict[int, Tuple[List[int], List[int], float]] = {}
        for target in targets:
            idx = index.get(target)
            if idx is None or ws.visit[idx] != ws.epoch:
                continue
            d = ws.dist[idx]
            if d > bound:
                continue
            doors, vias = reconstruct_route(view, source, target)
            routes[target] = (doors, vias, d)
        return routes

    # ------------------------------------------------------------------
    # Single-source shortest paths
    # ------------------------------------------------------------------
    def dijkstra(self,
                 source: int,
                 banned: Optional[FrozenSet[int]] = None,
                 targets: Optional[Set[int]] = None,
                 bound: float = INF,
                 workspace: Optional[DijkstraWorkspace] = None,
                 ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Shortest distances from door ``source`` to every door.

        Args:
            source: Source door id.
            banned: Doors that may not be visited (the source itself is
                always allowed).  Used for regular-route extensions.
            targets: Early-exit set — the search stops once every
                target has been settled, and does not start at all when
                every target is already settled at entry (e.g.
                ``targets == {source}``).
            bound: Distances beyond this value are not explored.
            workspace: Scratch state to (re)use; defaults to the
                graph-owned single-threaded workspace.

        Returns:
            ``(dist, pred)`` where ``pred[d] = (previous door, via
            partition)`` on the shortest path tree.
        """
        src_idx = self._door_index[source]
        if targets is not None:
            target_idx = {self._door_index[t] for t in targets
                          if t in self._door_index}
            target_idx.discard(src_idx)
            if not target_idx:
                # Every target is settled before the first pop; do not
                # explore the graph at all.
                return {source: 0.0}, {}
        else:
            target_idx = None
        ws = workspace or self.workspace
        banned_ids: Iterable[int] = ()
        if banned:
            banned_ids = (did for did in banned if did != source)
        self._run_dijkstra(ws, ((0.0, src_idx, _ROOT, -1),),
                           banned_ids, target_idx, bound)
        return self._dist_dict(ws), self._pred_dict(ws)

    def shortest_route(self,
                       source: int,
                       target: int,
                       banned: Optional[FrozenSet[int]] = None,
                       bound: float = INF,
                       first_hop_via: Optional[int] = None,
                       workspace: Optional[DijkstraWorkspace] = None,
                       ) -> Optional[Tuple[List[int], List[int], float]]:
        """Shortest door route from ``source`` to ``target``.

        Returns ``(doors, vias, distance)`` where ``doors`` starts with
        the first door *after* ``source`` and ends with ``target``, and
        ``vias[i]`` is the partition traversed to reach ``doors[i]``.
        ``None`` when unreachable within ``bound``.

        ``first_hop_via`` restricts the first move to leave the given
        partition (the KoE expansion must exit the current partition).
        """
        if first_hop_via is not None:
            return self.multi_target_routes(
                source, first_hop_via, {target}, banned=banned,
                bound=bound, workspace=workspace).get(target)
        if source == target:
            return [], [], 0.0
        ws = workspace or self.workspace
        src_idx = self._door_index[source]
        tgt_idx = self._door_index[target]
        banned_ids: Iterable[int] = ()
        if banned:
            banned_ids = (did for did in banned if did != source)
        self._run_dijkstra(ws, ((0.0, src_idx, _ROOT, -1),),
                           banned_ids, (tgt_idx,), bound)
        routes = self._routes_to(ws, source, (target,), bound)
        return routes.get(target)

    def multi_target_routes(self,
                            source: int,
                            first_via: int,
                            targets: Set[int],
                            banned: Optional[FrozenSet[int]] = None,
                            bound: float = INF,
                            workspace: Optional[DijkstraWorkspace] = None,
                            ) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Shortest first-hop-restricted routes to each target door.

        Used by the keyword-oriented expansion: from the route tail
        ``source`` (an enterable door of partition ``first_via``) find,
        for every enterable door of the next key partition, the
        shortest regular continuation.  Returns a mapping ``target ->
        (doors, vias, distance)`` containing only reachable targets.
        """
        ws = workspace or self.workspace
        index = self._door_index
        src_idx = index[source]
        target_idx = {index[t] for t in targets if t in index}
        target_idx.discard(src_idx)
        self._run_dijkstra(ws, self._first_hop_seeds(source, first_via),
                           banned or (), target_idx, bound, forbid=src_idx)
        return self._routes_to(ws, source, targets, bound)

    def routes_from_point(self,
                          p: Point,
                          host_pid: int,
                          targets: Set[int],
                          banned: Optional[FrozenSet[int]] = None,
                          bound: float = INF,
                          workspace: Optional[DijkstraWorkspace] = None,
                          ) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Shortest routes from a free point to each target door.

        The point attaches to the leaveable doors of ``host_pid`` (its
        host partition), mirroring :meth:`multi_target_routes` for the
        initial search stamp whose tail is the start point.
        """
        ws = workspace or self.workspace
        index = self._door_index
        target_idx = {index[t] for t in targets if t in index}
        self._run_dijkstra(ws, self._point_seeds(p, host_pid),
                           banned or (), target_idx, bound)
        return self._routes_to(ws, None, targets, bound)

    # ------------------------------------------------------------------
    # Point attachment
    # ------------------------------------------------------------------
    def distances_from_point(self,
                             p: Point,
                             bound: float = INF,
                             workspace: Optional[DijkstraWorkspace] = None,
                             ) -> Dict[int, float]:
        """Shortest indoor distance from point ``p`` to every door.

        The point is attached to the leaveable doors of its host
        partition, then ordinary Dijkstra takes over.
        """
        ws = workspace or self.workspace
        host = self._space.host_partition(p)
        self._run_dijkstra(ws, self._point_seeds(p, host.pid),
                           (), None, bound)
        return self._dist_dict(ws)

    def point_attachment_map(self,
                             p: Point,
                             workspace: Optional[DijkstraWorkspace] = None,
                             ) -> Tuple[int, Dict[int, float],
                                        Dict[int, Tuple[Optional[int], int]]]:
        """The full unbounded point-attachment tree of point ``p``.

        Returns ``(host partition id, dist, pred)``; the ``pred``
        mapping carries ``(None, host)`` at the attachment doors so
        :func:`reconstruct_route` walks it with ``source=None``.  This
        is the structure the batched ``QueryService`` keeps in its
        per-endpoint LRU: any first-expansion continuation query from
        ``p`` (empty banned set, first hop through the host partition)
        can be answered from it without re-running Dijkstra.
        """
        ws = workspace or self.workspace
        host = self._space.host_partition(p)
        self._run_dijkstra(ws, self._point_seeds(p, host.pid),
                           (), None, INF)
        return host.pid, self._dist_dict(ws), self._pred_dict(ws)

    def point_to_point_distance(self, ps: Point, pt: Point,
                                bound: float = INF,
                                workspace: Optional[DijkstraWorkspace] = None,
                                ) -> float:
        """Shortest indoor distance between two points (``δs2t``)."""
        space = self._space
        host_s = space.host_partition(ps)
        host_t = space.host_partition(pt)
        best = INF
        if host_s.pid == host_t.pid:
            best = ps.distance_to(pt)
        door_dist = self.distances_from_point(
            ps, bound=min(bound, best), workspace=workspace)
        t_pos = pt
        for dk in space.p2d_enter(host_t.pid):
            if dk not in door_dist:
                continue
            total = door_dist[dk] + space.door(dk).position.distance_to(t_pos)
            if total < best:
                best = total
        return best


class DoorMatrix:
    """All-pairs door-to-door shortest distances and routes.

    This is the precomputed structure behind the KoE* variant (paper
    Section V, Table III) and the query generator's "precomputed
    door-to-door matrix" (Section V-A1).  Eagerness is a deliberate
    engine-level choice, not a property of the matrix:

    * By default rows are computed lazily on first use and cached —
      the right mode when only a few sources are ever queried, and the
      mode under which the paper's observation holds that eager
      all-pairs precomputation on a paper-size venue does not pay off.
    * ``eager=True`` prebuilds every row up front so that query-time
      measurements exclude construction cost; ``IKRQEngine`` defaults
      to this for KoE* (tunable via ``IKRQEngine(door_matrix_eager=…)``)
      because the engine amortises one matrix over many queries.

    ``max_rows`` puts a memory budget on the cache: at most that many
    rows stay resident, evicted in least-recently-used order (the
    ``evictions`` counter feeds the search stats).  Row access is
    thread-safe so a matrix can back concurrent batched queries.
    """

    def __init__(self,
                 graph: DoorGraph,
                 eager: bool = False,
                 max_rows: Optional[int] = None) -> None:
        if max_rows is not None and max_rows < 1:
            raise ValueError("max_rows must be at least 1")
        self._graph = graph
        self._rows: "OrderedDict[int, Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_rows = max_rows
        self.evictions = 0
        if eager:
            # Under a memory budget, prefill only up to the budget —
            # computing every row just to evict most of them at once
            # would waste nearly all the construction work.
            doors = sorted(graph.space.doors)
            if max_rows is not None:
                doors = doors[:max_rows]
            for did in doors:
                self._row(did)

    def _row(self, source: int) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        with self._lock:
            row = self._rows.get(source)
            if row is not None:
                if self.max_rows is not None:
                    self._rows.move_to_end(source)
                return row
        # Compute outside the lock (on the calling thread's workspace)
        # so cache hits on other threads never wait behind a full
        # Dijkstra; a concurrent miss on the same source computes the
        # same row and the first insert wins.
        row = self._graph.dijkstra(source, workspace=self._graph.workspace)
        with self._lock:
            row = self._rows.setdefault(source, row)
            if self.max_rows is not None:
                self._rows.move_to_end(source)
                while len(self._rows) > self.max_rows:
                    self._rows.popitem(last=False)
                    self.evictions += 1
            return row

    def distance(self, di: int, dj: int) -> float:
        """Shortest door-to-door distance ``di -> dj`` (INF if unreachable)."""
        dist, _ = self._row(di)
        return dist.get(dj, INF)

    def route(self, di: int, dj: int) -> Optional[Tuple[List[int], List[int], float]]:
        """Shortest precomputed route ``di -> dj`` as ``(doors, vias, dist)``.

        The route ignores regularity constraints against any existing
        prefix; KoE* re-computes on the fly when its regularity check
        fails, as the paper prescribes.
        """
        dist, pred = self._row(di)
        if dj not in dist:
            return None
        doors, vias = reconstruct_route(pred, di, dj)
        return doors, vias, dist[dj]

    def num_cached_rows(self) -> int:
        with self._lock:
            return len(self._rows)

    def warm_rows(self,
                  limit: Optional[int] = None,
                  ) -> Dict[int, Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]]:
        """The resident rows (hottest last), for snapshot export.

        Returns at most ``limit`` rows, preferring the most recently
        used ones so a snapshot captures the rows live traffic keeps
        hot.  The returned dicts are the cached objects themselves —
        callers serialise, they must not mutate.
        """
        with self._lock:
            rows = list(self._rows.items())
        if limit is not None and limit >= 0:
            rows = rows[len(rows) - min(limit, len(rows)):]
        return dict(rows)

    def preload_rows(self,
                     rows: Mapping[int, Tuple[Dict[int, float],
                                              Dict[int, Tuple[int, int]]]],
                     ) -> None:
        """Adopt previously exported rows (snapshot load path).

        Rows beyond ``max_rows`` follow the normal LRU policy; preloads
        do not count as evictions of live traffic.
        """
        with self._lock:
            for source, row in rows.items():
                self._rows[source] = row
                self._rows.move_to_end(source)
                if self.max_rows is not None:
                    while len(self._rows) > self.max_rows:
                        self._rows.popitem(last=False)

    def estimated_bytes(self) -> int:
        """Rough memory footprint of the cached rows (for Fig. 14)."""
        total = 0
        with self._lock:
            for dist, pred in self._rows.values():
                total += 64 * len(dist) + 96 * len(pred)
        return total

"""Door-to-door routing graph with shortest (regular) route search.

The door graph is the standard routing substrate over the indoor-space
model: nodes are doors, and there is a directed edge ``di -> dj``
whenever one can enter a partition through ``di`` and leave it through
``dj`` (paper Section II-A).  Edge weights are the intra-partition
Euclidean door-to-door distances.

On top of the raw graph this module provides:

* single-source Dijkstra with optional *banned door* sets, which is how
  the search algorithms obtain shortest **regular** continuations (a
  regular concatenation may not revisit any door already on the route,
  so excluding them yields the shortest regular extension),
* multi-target Dijkstra restricted to a *first-hop partition* (used by
  the keyword-oriented expansion, which must leave the current
  partition first),
* point attachment (``ps`` / ``pt`` virtual nodes),
* an all-pairs door distance/route matrix used by the KoE* variant and
  by the query generator of Section V-A1.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.geometry import Point
from repro.space.distances import DistanceOracle
from repro.space.indoor_space import IndoorSpace

INF = math.inf

#: An adjacency entry: (neighbour door id, via partition id, weight).
Edge = Tuple[int, int, float]


class DoorGraph:
    """Directed door-to-door graph over an :class:`IndoorSpace`.

    The adjacency structure is materialised once at construction; all
    shortest-path queries run over it.  Self-loop edges (the ``(d, d)``
    re-entry move) are *not* part of the graph — they are an explicit
    search move handled by the IKRQ algorithms, never useful on a pure
    shortest path.
    """

    def __init__(self, space: IndoorSpace, oracle: Optional[DistanceOracle] = None) -> None:
        self._space = space
        self._oracle = oracle or DistanceOracle(space)
        self._adj: Dict[int, List[Edge]] = {did: [] for did in space.doors}
        self._radj: Dict[int, List[Edge]] = {did: [] for did in space.doors}
        self._build()

    def _build(self) -> None:
        space = self._space
        for pid in space.partitions:
            enterable = space.p2d_enter(pid)
            leaveable = space.p2d_leave(pid)
            for di in enterable:
                pos_i = space.door(di).position
                for dj in leaveable:
                    if di == dj:
                        continue
                    weight = pos_i.distance_to(space.door(dj).position)
                    self._adj[di].append((dj, pid, weight))
                    self._radj[dj].append((di, pid, weight))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def oracle(self) -> DistanceOracle:
        return self._oracle

    def neighbours(self, did: int) -> Sequence[Edge]:
        """Outgoing edges of door ``did`` as ``(door, via, weight)``."""
        return self._adj[did]

    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._adj.values())

    # ------------------------------------------------------------------
    # Single-source shortest paths
    # ------------------------------------------------------------------
    def dijkstra(self,
                 source: int,
                 banned: Optional[FrozenSet[int]] = None,
                 targets: Optional[Set[int]] = None,
                 bound: float = INF) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Shortest distances from door ``source`` to every door.

        Args:
            source: Source door id.
            banned: Doors that may not be visited (the source itself is
                always allowed).  Used for regular-route extensions.
            targets: Early-exit set — the search stops once every
                target has been settled.
            bound: Distances beyond this value are not explored.

        Returns:
            ``(dist, pred)`` where ``pred[d] = (previous door, via
            partition)`` on the shortest path tree.
        """
        banned = banned or frozenset()
        dist: Dict[int, float] = {source: 0.0}
        pred: Dict[int, Tuple[int, int]] = {}
        remaining = set(targets) if targets is not None else None
        if remaining is not None:
            remaining.discard(source)
        heap: List[Tuple[float, int]] = [(0.0, source)]
        settled: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if remaining is not None:
                remaining.discard(u)
                if not remaining:
                    break
            for v, via, w in self._adj[u]:
                if v in banned or v in settled:
                    continue
                nd = d + w
                if nd > bound:
                    continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    pred[v] = (u, via)
                    heapq.heappush(heap, (nd, v))
        return dist, pred

    def shortest_route(self,
                       source: int,
                       target: int,
                       banned: Optional[FrozenSet[int]] = None,
                       bound: float = INF,
                       first_hop_via: Optional[int] = None,
                       ) -> Optional[Tuple[List[int], List[int], float]]:
        """Shortest door route from ``source`` to ``target``.

        Returns ``(doors, vias, distance)`` where ``doors`` starts with
        the first door *after* ``source`` and ends with ``target``, and
        ``vias[i]`` is the partition traversed to reach ``doors[i]``.
        ``None`` when unreachable within ``bound``.

        ``first_hop_via`` restricts the first move to leave the given
        partition (the KoE expansion must exit the current partition).
        """
        if first_hop_via is not None:
            result = self._dijkstra_first_hop(
                source, first_hop_via, banned, {target}, bound)
            dist, pred = result
        else:
            dist, pred = self.dijkstra(source, banned, {target}, bound)
        if target not in dist or dist[target] > bound:
            return None
        if source == target:
            return [], [], 0.0
        doors: List[int] = []
        vias: List[int] = []
        node = target
        while node != source:
            prev, via = pred[node]
            doors.append(node)
            vias.append(via)
            node = prev
        doors.reverse()
        vias.reverse()
        return doors, vias, dist[target]

    def _dijkstra_first_hop(self,
                            source: int,
                            first_via: int,
                            banned: Optional[FrozenSet[int]],
                            targets: Optional[Set[int]],
                            bound: float,
                            ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Dijkstra whose first edge must traverse partition ``first_via``."""
        banned = banned or frozenset()
        space = self._space
        dist: Dict[int, float] = {}
        pred: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = []
        src_pos = space.door(source).position
        for dj in space.p2d_leave(first_via):
            if dj == source or dj in banned:
                continue
            w = src_pos.distance_to(space.door(dj).position)
            if w > bound:
                continue
            if w < dist.get(dj, INF):
                dist[dj] = w
                pred[dj] = (source, first_via)
                heapq.heappush(heap, (w, dj))
        remaining = set(targets) if targets is not None else None
        settled: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            if remaining is not None:
                remaining.discard(u)
                if not remaining:
                    break
            for v, via, w in self._adj[u]:
                if v in banned or v in settled or v == source:
                    continue
                nd = d + w
                if nd > bound:
                    continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    pred[v] = (u, via)
                    heapq.heappush(heap, (nd, v))
        return dist, pred

    def multi_target_routes(self,
                            source: int,
                            first_via: int,
                            targets: Set[int],
                            banned: Optional[FrozenSet[int]] = None,
                            bound: float = INF,
                            ) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Shortest first-hop-restricted routes to each target door.

        Used by the keyword-oriented expansion: from the route tail
        ``source`` (an enterable door of partition ``first_via``) find,
        for every enterable door of the next key partition, the
        shortest regular continuation.  Returns a mapping ``target ->
        (doors, vias, distance)`` containing only reachable targets.
        """
        dist, pred = self._dijkstra_first_hop(
            source, first_via, banned, set(targets), bound)
        routes: Dict[int, Tuple[List[int], List[int], float]] = {}
        for target in targets:
            if target not in dist or dist[target] > bound:
                continue
            doors: List[int] = []
            vias: List[int] = []
            node = target
            while node != source:
                prev, via = pred[node]
                doors.append(node)
                vias.append(via)
                node = prev
            doors.reverse()
            vias.reverse()
            routes[target] = (doors, vias, dist[target])
        return routes

    def routes_from_point(self,
                          p: Point,
                          host_pid: int,
                          targets: Set[int],
                          banned: Optional[FrozenSet[int]] = None,
                          bound: float = INF,
                          ) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Shortest routes from a free point to each target door.

        The point attaches to the leaveable doors of ``host_pid`` (its
        host partition), mirroring :meth:`multi_target_routes` for the
        initial search stamp whose tail is the start point.
        """
        banned = banned or frozenset()
        space = self._space
        dist: Dict[int, float] = {}
        pred: Dict[int, Tuple[Optional[int], int]] = {}
        heap: List[Tuple[float, int]] = []
        for dj in space.p2d_leave(host_pid):
            if dj in banned:
                continue
            w = p.distance_to(space.door(dj).position)
            if w > bound:
                continue
            if w < dist.get(dj, INF):
                dist[dj] = w
                pred[dj] = (None, host_pid)
                heapq.heappush(heap, (w, dj))
        remaining = set(targets)
        settled: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            remaining.discard(u)
            if not remaining:
                break
            for v, via, w in self._adj[u]:
                if v in banned or v in settled:
                    continue
                nd = d + w
                if nd > bound:
                    continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    pred[v] = (u, via)
                    heapq.heappush(heap, (nd, v))
        routes: Dict[int, Tuple[List[int], List[int], float]] = {}
        for target in targets:
            if target not in dist or dist[target] > bound:
                continue
            doors: List[int] = []
            vias: List[int] = []
            node: Optional[int] = target
            while node is not None:
                prev, via = pred[node]
                doors.append(node)
                vias.append(via)
                node = prev
            doors.reverse()
            vias.reverse()
            routes[target] = (doors, vias, dist[target])
        return routes

    # ------------------------------------------------------------------
    # Point attachment
    # ------------------------------------------------------------------
    def distances_from_point(self, p: Point, bound: float = INF) -> Dict[int, float]:
        """Shortest indoor distance from point ``p`` to every door.

        The point is attached to the leaveable doors of its host
        partition, then ordinary Dijkstra takes over.
        """
        space = self._space
        host = space.host_partition(p)
        dist: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = []
        for dj in space.p2d_leave(host.pid):
            w = p.distance_to(space.door(dj).position)
            if w > bound:
                continue
            if w < dist.get(dj, INF):
                dist[dj] = w
                heapq.heappush(heap, (w, dj))
        settled: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue
            settled.add(u)
            for v, via, w in self._adj[u]:
                if v in settled:
                    continue
                nd = d + w
                if nd > bound:
                    continue
                if nd < dist.get(v, INF):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def point_to_point_distance(self, ps: Point, pt: Point, bound: float = INF) -> float:
        """Shortest indoor distance between two points (``δs2t``)."""
        space = self._space
        host_s = space.host_partition(ps)
        host_t = space.host_partition(pt)
        best = INF
        if host_s.pid == host_t.pid:
            best = ps.distance_to(pt)
        door_dist = self.distances_from_point(ps, bound=min(bound, best))
        t_pos = pt
        for dk in space.p2d_enter(host_t.pid):
            if dk not in door_dist:
                continue
            total = door_dist[dk] + space.door(dk).position.distance_to(t_pos)
            if total < best:
                best = total
        return best


class DoorMatrix:
    """All-pairs door-to-door shortest distances and routes.

    This is the precomputed structure behind the KoE* variant (paper
    Section V, Table III) and the query generator's "precomputed
    door-to-door matrix" (Section V-A1).  Rows are computed lazily and
    cached, because computing all of them eagerly on a paper-size venue
    is exactly the overhead the paper shows does not pay off.
    """

    def __init__(self, graph: DoorGraph, eager: bool = False) -> None:
        self._graph = graph
        self._rows: Dict[int, Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]] = {}
        if eager:
            for did in graph.space.doors:
                self._row(did)

    def _row(self, source: int) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        if source not in self._rows:
            self._rows[source] = self._graph.dijkstra(source)
        return self._rows[source]

    def distance(self, di: int, dj: int) -> float:
        """Shortest door-to-door distance ``di -> dj`` (INF if unreachable)."""
        dist, _ = self._row(di)
        return dist.get(dj, INF)

    def route(self, di: int, dj: int) -> Optional[Tuple[List[int], List[int], float]]:
        """Shortest precomputed route ``di -> dj`` as ``(doors, vias, dist)``.

        The route ignores regularity constraints against any existing
        prefix; KoE* re-computes on the fly when its regularity check
        fails, as the paper prescribes.
        """
        dist, pred = self._row(di)
        if dj not in dist:
            return None
        doors: List[int] = []
        vias: List[int] = []
        node = dj
        while node != di:
            prev, via = pred[node]
            doors.append(node)
            vias.append(via)
            node = prev
        doors.reverse()
        vias.reverse()
        return doors, vias, dist[dj]

    def num_cached_rows(self) -> int:
        return len(self._rows)

    def estimated_bytes(self) -> int:
        """Rough memory footprint of the cached rows (for Fig. 14)."""
        total = 0
        for dist, pred in self._rows.values():
            total += 64 * len(dist) + 96 * len(pred)
        return total

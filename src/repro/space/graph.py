"""Door-to-door routing graph with shortest (regular) route search.

The door graph is the standard routing substrate over the indoor-space
model: nodes are doors, and there is a directed edge ``di -> dj``
whenever one can enter a partition through ``di`` and leave it through
``dj`` (paper Section II-A).  Edge weights are the intra-partition
Euclidean door-to-door distances.

The adjacency is stored in CSR form — parallel flat buffers of
neighbour indices, via-partition ids and weights over interned
(densely renumbered) door ids — and every shortest-path entry point is
a thin parameterisation of **one** Dijkstra inner loop
(:meth:`DoorGraph._run_dijkstra`), differing only in its seed edges:

* single source (ordinary Dijkstra with optional *banned door* sets,
  which is how the search algorithms obtain shortest **regular**
  continuations),
* first-hop restricted (the first move must leave a given partition,
  used by the keyword-oriented expansion),
* point-attached (``ps`` / ``pt`` virtual nodes seeded through the
  leaveable doors of the host partition).

Scratch state lives in a reusable, epoch-versioned
:class:`DijkstraWorkspace`, so repeated calls — within one query and
across a whole query batch — allocate nothing in the inner loop.
Route reconstruction is one shared predecessor walk
(:func:`reconstruct_route`) used by every dict-based caller; the flat
result structures walk their dense predecessor arrays directly.

Results that outlive a workspace — the all-pairs rows of
:class:`DoorMatrix` and the per-endpoint attachment trees the batched
``QueryService`` caches — are frozen into :class:`FlatTree` objects:
three flat typed arrays (``dist``/``pred``/``pred_via``) over dense
door indices instead of two Python dicts, cutting both the per-row
memory and the per-lookup cost.  :class:`FlatDistMap` /
:class:`FlatPredMap` adapt a tree to the read-only mapping interface
dict-based callers consume, so the migration changes no behaviour.
"""

from __future__ import annotations

import heapq
import math
import threading
from array import array
from collections import OrderedDict
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from repro.geometry import Point
from repro.space.distances import DistanceOracle
from repro.space.indoor_space import IndoorSpace

INF = math.inf

#: An adjacency entry: (neighbour door id, via partition id, weight).
Edge = Tuple[int, int, float]

#: Predecessor sentinel (dense index space): the tree root.
_ROOT = -1
#: Predecessor sentinel: a point-attachment seed (``prev`` is ``None``).
_POINT = -2


def _adopt_buffer(typecode: str, data):
    """``data`` as a typed buffer, without copying when already one.

    ``array`` objects and ``memoryview``s (mapped snapshot sections)
    pass through untouched; anything else — JSON lists, generators —
    is packed into a fresh ``array(typecode)``.
    """
    if isinstance(data, (array, memoryview)):
        return data
    return array(typecode, data)


def buffer_nbytes(buf) -> int:
    """Byte size of a typed buffer (``array`` or ``memoryview``)."""
    return buf.itemsize * len(buf)


def reconstruct_route(pred: Mapping[int, Tuple[Optional[int], int]],
                      source: Optional[int],
                      target: int) -> Tuple[List[int], List[int]]:
    """Walk a predecessor mapping back from ``target`` to ``source``.

    ``pred[d]`` is ``(previous door, via partition)``; the walk stops
    when the previous door equals ``source`` (``None`` for
    point-attached trees, whose first entry carries ``prev=None``).
    Returns ``(doors, vias)`` where ``doors`` starts with the first
    door *after* ``source`` and ends with ``target`` and ``vias[i]``
    is the partition traversed to reach ``doors[i]``.
    """
    doors: List[int] = []
    vias: List[int] = []
    node: Optional[int] = target
    while node != source:
        prev, via = pred[node]
        doors.append(node)
        vias.append(via)
        node = prev
    doors.reverse()
    vias.reverse()
    return doors, vias


class DijkstraWorkspace:
    """Reusable scratch state for one CSR Dijkstra run at a time.

    All per-node state is epoch-versioned: ``begin`` bumps the epoch
    instead of clearing the flat arrays, so a workspace can be reused
    for an unbounded number of runs with zero per-run allocation.  A
    workspace belongs to exactly one thread at a time — concurrent
    query evaluation uses one workspace per worker thread (see
    ``QueryService``).
    """

    __slots__ = ("dist", "pred", "pred_via", "visit", "settled", "banned",
                 "target", "epoch", "heap", "touched", "kernel_scratch")

    def __init__(self, num_nodes: int) -> None:
        self.dist = array("d", [0.0] * num_nodes)
        self.pred = array("q", [_ROOT] * num_nodes)
        self.pred_via = array("q", [-1] * num_nodes)
        self.visit = array("q", [0] * num_nodes)
        self.settled = array("q", [0] * num_nodes)
        self.banned = array("q", [0] * num_nodes)
        self.target = array("q", [0] * num_nodes)
        self.epoch = 0
        self.heap: List[Tuple[float, int]] = []
        self.touched: List[int] = []
        #: Backend-owned scratch (numpy views, native heap buffers);
        #: lazily attached by the kernel tier, never read here.
        self.kernel_scratch = None

    def begin(self) -> int:
        """Start a new run: bump the epoch and reset the hot lists."""
        self.epoch += 1
        self.heap.clear()
        self.touched.clear()
        return self.epoch


class FlatTree:
    """A frozen shortest-path tree in flat typed arrays.

    The immutable counterpart of a :class:`DijkstraWorkspace` run:
    ``dist[i]`` is the distance of dense door index ``i`` (``inf`` when
    unreached), ``pred[i]`` / ``pred_via[i]`` encode the predecessor
    edge (:data:`_ROOT` for the tree root / unreached, :data:`_POINT`
    for a point-attachment seed).  ``touched`` lists the reached dense
    indices.  Three ``array`` buffers replace the two dicts the old
    dict-of-dict rows kept per source — roughly 24 bytes per door
    instead of ~160 per reached entry — and lookups become plain array
    indexing.

    The three buffers may equally be read-only ``memoryview`` slices of
    an ``mmap``-ed snapshot payload — every consumer only indexes,
    iterates and ``len()``s them — which is how snapshot-mapped matrix
    rows share one page-cache copy across shard processes.  ``touched``
    may be ``None``: it is derived lazily from ``dist`` (ascending
    dense index order) on first use, so the serving hot path
    (:meth:`distance` / :meth:`route_to`) never materialises it.
    """

    __slots__ = ("door_ids", "door_index", "dist", "pred", "pred_via",
                 "_touched")

    def __init__(self,
                 door_ids: array,
                 door_index: Dict[int, int],
                 dist: array,
                 pred: array,
                 pred_via: array,
                 touched: Optional[array] = None) -> None:
        self.door_ids = door_ids
        self.door_index = door_index
        self.dist = dist
        self.pred = pred
        self.pred_via = pred_via
        self._touched = touched

    @property
    def touched(self) -> array:
        """Reached dense indices; derived from ``dist`` when absent.

        Trees frozen from a workspace keep the run's visit order;
        derived lists are ascending.  Nothing that consumes ``touched``
        is order-sensitive (dict exports compare equal either way).
        """
        t = self._touched
        if t is None:
            dist = self.dist
            t = array("q", (idx for idx in range(len(dist))
                            if dist[idx] != INF))
            self._touched = t
        return t

    @classmethod
    def from_workspace(cls, ws: DijkstraWorkspace,
                       graph: "DoorGraph") -> "FlatTree":
        """Freeze the current run of ``ws`` into an immutable tree."""
        kernel = graph._kernel
        if kernel is not None and kernel.freeze is not None:
            return kernel.freeze(graph, ws)
        n = len(graph._door_ids)
        dist = array("d", [INF]) * n
        pred = array("q", [_ROOT]) * n
        pred_via = array("q", [-1]) * n
        touched = array("q", ws.touched)
        ws_dist = ws.dist
        ws_pred = ws.pred
        ws_via = ws.pred_via
        for idx in touched:
            dist[idx] = ws_dist[idx]
            pred[idx] = ws_pred[idx]
            pred_via[idx] = ws_via[idx]
        return cls(graph._door_ids, graph._door_index,
                   dist, pred, pred_via, touched)

    @classmethod
    def from_dicts(cls,
                   graph: "DoorGraph",
                   dist_map: Mapping,
                   pred_map: Mapping) -> "FlatTree":
        """Adopt a dict-encoded ``(dist, pred)`` pair (snapshot v1)."""
        n = len(graph._door_ids)
        index = graph._door_index
        dist = array("d", [INF]) * n
        pred = array("q", [_ROOT]) * n
        pred_via = array("q", [-1]) * n
        touched = array("q")
        for did, d in dist_map.items():
            idx = index[did]
            dist[idx] = d
            touched.append(idx)
        for did, (prev, via) in pred_map.items():
            idx = index[did]
            pred[idx] = _POINT if prev is None else index[prev]
            pred_via[idx] = via
        return cls(graph._door_ids, graph._door_index,
                   dist, pred, pred_via, touched)

    # ------------------------------------------------------------------
    def distance(self, did: int) -> float:
        """Distance to door ``did`` (``inf`` when unreached/unknown)."""
        idx = self.door_index.get(did)
        if idx is None:
            return INF
        return self.dist[idx]

    def route_to(self, target: int) -> Optional[Tuple[List[int], List[int], float]]:
        """``(doors, vias, distance)`` to ``target`` by direct array walk.

        Matches :func:`reconstruct_route` over the dict views exactly;
        ``None`` when the target is unreached.
        """
        idx = self.door_index.get(target)
        if idx is None:
            return None
        dist = self.dist[idx]
        if dist == INF:
            return None
        ids = self.door_ids
        pred = self.pred
        pred_via = self.pred_via
        doors: List[int] = []
        vias: List[int] = []
        node = idx
        while True:
            prev = pred[node]
            if prev == _ROOT:
                break
            doors.append(ids[node])
            vias.append(pred_via[node])
            if prev == _POINT:
                break
            node = prev
        doors.reverse()
        vias.reverse()
        return doors, vias, dist

    def dist_map(self) -> "FlatDistMap":
        return FlatDistMap(self)

    def pred_map(self) -> "FlatPredMap":
        return FlatPredMap(self)

    def dist_dict(self) -> Dict[int, float]:
        """The reached distances as a plain dict (snapshot v1 export)."""
        ids = self.door_ids
        dist = self.dist
        return {ids[idx]: dist[idx] for idx in self.touched}

    def pred_dict(self) -> Dict[int, Tuple[Optional[int], int]]:
        """The predecessor edges as a plain dict (snapshot v1 export)."""
        ids = self.door_ids
        pred = self.pred
        pred_via = self.pred_via
        out: Dict[int, Tuple[Optional[int], int]] = {}
        for idx in self.touched:
            prev = pred[idx]
            if prev == _ROOT:
                continue
            out[ids[idx]] = ((None, pred_via[idx]) if prev == _POINT
                             else (ids[prev], pred_via[idx]))
        return out

    def is_mapped(self) -> bool:
        """Whether the buffers are ``mmap``-backed views (shared pages,
        not per-process heap)."""
        return isinstance(self.dist, memoryview)

    def estimated_bytes(self) -> int:
        # A lazily-derived ``touched`` that was never materialised
        # costs nothing; do not force it just to measure.
        t = self._touched
        return (self.dist.itemsize * len(self.dist)
                + self.pred.itemsize * len(self.pred)
                + self.pred_via.itemsize * len(self.pred_via)
                + (t.itemsize * len(t) if t is not None else 0))


class FlatDistMap(Mapping):
    """Read-only ``door id -> distance`` mapping over a :class:`FlatTree`.

    Drop-in for the dicts :meth:`DoorGraph.point_attachment_map` used
    to return: ``get`` / ``[]`` / ``in`` / iteration cover exactly the
    reached doors.
    """

    __slots__ = ("_tree",)

    def __init__(self, tree: FlatTree) -> None:
        self._tree = tree

    def __getitem__(self, did: int) -> float:
        tree = self._tree
        idx = tree.door_index.get(did)
        if idx is None:
            raise KeyError(did)
        d = tree.dist[idx]
        if d == INF:
            raise KeyError(did)
        return d

    def __iter__(self):
        tree = self._tree
        ids = tree.door_ids
        for idx in tree.touched:
            yield ids[idx]

    def __len__(self) -> int:
        return len(self._tree.touched)


class FlatPredMap(Mapping):
    """Read-only ``door id -> (prev door, via)`` view of a :class:`FlatTree`.

    Consumed by :func:`reconstruct_route` and the batched service's
    cached start maps; entries exist for every reached non-root door,
    with ``prev=None`` at point-attachment seeds.
    """

    __slots__ = ("_tree",)

    def __init__(self, tree: FlatTree) -> None:
        self._tree = tree

    def __getitem__(self, did: int) -> Tuple[Optional[int], int]:
        tree = self._tree
        idx = tree.door_index.get(did)
        if idx is None:
            raise KeyError(did)
        prev = tree.pred[idx]
        if prev == _ROOT:
            raise KeyError(did)
        if prev == _POINT:
            return None, tree.pred_via[idx]
        return tree.door_ids[prev], tree.pred_via[idx]

    def __iter__(self):
        tree = self._tree
        ids = tree.door_ids
        pred = tree.pred
        for idx in tree.touched:
            if pred[idx] != _ROOT:
                yield ids[idx]

    def __len__(self) -> int:
        pred = self._tree.pred
        return sum(1 for idx in self._tree.touched if pred[idx] != _ROOT)


class DoorGraph:
    """Directed door-to-door graph over an :class:`IndoorSpace`.

    The CSR adjacency is materialised once at construction; all
    shortest-path queries run over it.  Self-loop edges (the ``(d, d)``
    re-entry move) are *not* part of the graph — they are an explicit
    search move handled by the IKRQ algorithms, never useful on a pure
    shortest path.
    """

    #: Process-wide count of CSR constructions (adjacency scans).  A
    #: worker that loads a serve snapshot must *not* bump this — the
    #: serve tests assert cold-start skips the rebuild.
    csr_builds = 0

    def __init__(self, space: IndoorSpace, oracle: Optional[DistanceOracle] = None) -> None:
        self._space = space
        self._oracle = oracle or DistanceOracle(space)
        #: Door-id interning: dense index -> door id, ascending by door
        #: id so heap ordering (and therefore equal-distance
        #: tie-breaking) matches the id order of the dict-based
        #: predecessor trees this structure replaced.
        self._door_ids = array("q", sorted(space.doors))
        self._door_index: Dict[int, int] = {
            did: idx for idx, did in enumerate(self._door_ids)}
        self._build_csr()
        self._workspace_tls = threading.local()
        self._kernel = None

    @classmethod
    def from_csr(cls,
                 space: IndoorSpace,
                 door_ids: Sequence[int],
                 indptr: Sequence[int],
                 nbr: Sequence[int],
                 via: Sequence[int],
                 wt: Sequence[float],
                 oracle: Optional[DistanceOracle] = None) -> "DoorGraph":
        """Rebuild a graph from previously exported CSR buffers.

        The buffers must come from :meth:`csr_arrays` of a graph over
        an identical space; no adjacency scan runs (``csr_builds`` is
        not incremented), which is what makes snapshot-loaded serve
        workers cold-start without paying the build again.

        Typed buffers (``array`` objects or ``memoryview`` slices of a
        mapped snapshot payload) are adopted as-is — the graph never
        mutates them — so an ``mmap``-backed load keeps sharing the
        page-cache copy instead of duplicating it onto the heap.
        Plain sequences (JSON lists) are converted.
        """
        graph = cls.__new__(cls)
        graph._space = space
        graph._oracle = oracle or DistanceOracle(space)
        graph._door_ids = _adopt_buffer("q", door_ids)
        graph._door_index = {did: idx
                             for idx, did in enumerate(graph._door_ids)}
        graph._indptr = _adopt_buffer("q", indptr)
        graph._nbr = _adopt_buffer("q", nbr)
        graph._via = _adopt_buffer("q", via)
        graph._wt = _adopt_buffer("d", wt)
        graph._workspace_tls = threading.local()
        graph._kernel = None
        return graph

    def csr_arrays(self) -> Dict[str, list]:
        """The interned CSR buffers as JSON-serialisable lists."""
        return {
            "door_ids": list(self._door_ids),
            "indptr": list(self._indptr),
            "nbr": list(self._nbr),
            "via": list(self._via),
            "wt": list(self._wt),
        }

    def _build_csr(self) -> None:
        DoorGraph.csr_builds += 1
        space = self._space
        index = self._door_index
        per_node: List[List[Tuple[int, int, float]]] = [
            [] for _ in self._door_ids]
        for pid in space.partitions:
            enterable = space.p2d_enter(pid)
            leaveable = space.p2d_leave(pid)
            for di in enterable:
                pos_i = space.door(di).position
                row = per_node[index[di]]
                for dj in leaveable:
                    if di == dj:
                        continue
                    row.append((index[dj], pid,
                                pos_i.distance_to(space.door(dj).position)))
        indptr = array("q", [0] * (len(per_node) + 1))
        nbr = array("q")
        via = array("q")
        wt = array("d")
        for idx, row in enumerate(per_node):
            for j, pid, weight in row:
                nbr.append(j)
                via.append(pid)
                wt.append(weight)
            indptr[idx + 1] = len(nbr)
        self._indptr = indptr
        self._nbr = nbr
        self._via = via
        self._wt = wt

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def oracle(self) -> DistanceOracle:
        return self._oracle

    @property
    def num_nodes(self) -> int:
        return len(self._door_ids)

    def neighbours(self, did: int) -> Sequence[Edge]:
        """Outgoing edges of door ``did`` as ``(door, via, weight)``."""
        idx = self._door_index[did]
        ids = self._door_ids
        return [(ids[self._nbr[k]], self._via[k], self._wt[k])
                for k in range(self._indptr[idx], self._indptr[idx + 1])]

    def num_edges(self) -> int:
        return len(self._nbr)

    # ------------------------------------------------------------------
    # Kernel tier
    # ------------------------------------------------------------------
    def set_kernel(self, suite) -> None:
        """Attach a :class:`repro.space.kernels.KernelSuite`.

        ``None`` (or the pure-python suite) detaches the kernel and the
        interpreted loops run.  Every attached backend is bit-identical
        to the interpreted core, so swapping kernels never changes a
        single answer byte.
        """
        if suite is not None and suite.name == "python":
            suite = None
        self._kernel = suite

    @property
    def kernel_name(self) -> str:
        """The active kernel backend name (``python`` when detached)."""
        return self._kernel.name if self._kernel is not None else "python"

    # ------------------------------------------------------------------
    # Workspaces
    # ------------------------------------------------------------------
    def new_workspace(self) -> DijkstraWorkspace:
        """A fresh workspace sized for this graph (one per thread)."""
        return DijkstraWorkspace(len(self._door_ids))

    @property
    def workspace(self) -> DijkstraWorkspace:
        """The graph-owned default workspace of the calling thread.

        Thread-local so that bare concurrent ``engine.search`` calls
        (without a ``QueryService``) never share scratch state.
        """
        ws = getattr(self._workspace_tls, "workspace", None)
        if ws is None:
            ws = self.new_workspace()
            self._workspace_tls.workspace = ws
        return ws

    # ------------------------------------------------------------------
    # The unified Dijkstra core
    # ------------------------------------------------------------------
    def _run_dijkstra(self,
                      ws: DijkstraWorkspace,
                      seeds: Iterable[Tuple[float, int, int, int]],
                      banned: Iterable[int],
                      targets: Optional[Iterable[int]],
                      bound: float,
                      forbid: int = -1,
                      banned_partitions: Optional[FrozenSet[int]] = None,
                      ) -> None:
        """The one Dijkstra inner loop, parameterised by seed edges.

        Args:
            ws: Workspace receiving the run's distance/predecessor
                state (valid until its next ``begin``).
            seeds: ``(weight, node, pred, via)`` seed relaxations in
                dense-index space; ``pred`` is :data:`_ROOT` for the
                tree root and :data:`_POINT` for point attachments.
            banned: Door *ids* that may not be visited.
            targets: Dense indices to settle before stopping early
                (``None`` searches exhaustively within ``bound``).
            bound: Distances beyond this value are not explored.
            forbid: Dense index never to relax (the first-hop-restricted
                searches must not return to their source), ``-1`` none.
            banned_partitions: Partition ids no edge may traverse
                (edges whose ``via`` is in the set are skipped).
        """
        kernel = self._kernel
        if kernel is not None and kernel.sssp is not None:
            kernel.sssp(self, ws, seeds, banned, banned_partitions,
                        targets, bound, forbid)
            return
        bp = banned_partitions if banned_partitions else None
        epoch = ws.begin()
        dist = ws.dist
        pred = ws.pred
        pred_via = ws.pred_via
        visit = ws.visit
        settled = ws.settled
        banned_mark = ws.banned
        target_mark = ws.target
        door_index = self._door_index
        for did in banned:
            idx = door_index.get(did)
            if idx is not None:
                banned_mark[idx] = epoch
        remaining = -1
        if targets is not None:
            remaining = 0
            for idx in targets:
                if target_mark[idx] != epoch:
                    target_mark[idx] = epoch
                    remaining += 1
            if remaining == 0:
                return
        heap = ws.heap
        touched = ws.touched
        push = heapq.heappush
        for weight, node, prev, via in seeds:
            if weight > bound or banned_mark[node] == epoch or node == forbid:
                continue
            if bp is not None and via in bp:
                continue
            if visit[node] != epoch:
                visit[node] = epoch
                touched.append(node)
            elif weight >= dist[node]:
                continue
            dist[node] = weight
            pred[node] = prev
            pred_via[node] = via
            push(heap, (weight, node))
        indptr = self._indptr
        nbr = self._nbr
        vias = self._via
        wts = self._wt
        pop = heapq.heappop
        while heap:
            d, u = pop(heap)
            if settled[u] == epoch:
                continue
            settled[u] = epoch
            if remaining >= 0 and target_mark[u] == epoch:
                remaining -= 1
                if remaining == 0:
                    break
            for k in range(indptr[u], indptr[u + 1]):
                v = nbr[k]
                if banned_mark[v] == epoch or settled[v] == epoch or v == forbid:
                    continue
                if bp is not None and vias[k] in bp:
                    continue
                nd = d + wts[k]
                if nd > bound:
                    continue
                if visit[v] != epoch:
                    visit[v] = epoch
                    touched.append(v)
                elif nd >= dist[v]:
                    continue
                dist[v] = nd
                pred[v] = u
                pred_via[v] = vias[k]
                push(heap, (nd, v))

    # ------------------------------------------------------------------
    # Seed builders
    # ------------------------------------------------------------------
    def _first_hop_seeds(self,
                         source: int,
                         first_via: int) -> List[Tuple[float, int, int, int]]:
        """Seed edges leaving ``first_via`` from door ``source``."""
        space = self._space
        index = self._door_index
        src_idx = index[source]
        src_pos = space.door(source).position
        return [(src_pos.distance_to(space.door(dj).position),
                 index[dj], src_idx, first_via)
                for dj in space.p2d_leave(first_via)]

    def _point_seeds(self,
                     p: Point,
                     host_pid: int) -> List[Tuple[float, int, int, int]]:
        """Seed edges attaching point ``p`` through its host partition."""
        space = self._space
        index = self._door_index
        return [(p.distance_to(space.door(dj).position),
                 index[dj], _POINT, host_pid)
                for dj in space.p2d_leave(host_pid)]

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------
    def _dist_dict(self, ws: DijkstraWorkspace) -> Dict[int, float]:
        ids = self._door_ids
        dist = ws.dist
        return {ids[idx]: dist[idx] for idx in ws.touched}

    def _pred_dict(self, ws: DijkstraWorkspace) -> Dict[int, Tuple[Optional[int], int]]:
        ids = self._door_ids
        pred = ws.pred
        pred_via = ws.pred_via
        out: Dict[int, Tuple[Optional[int], int]] = {}
        for idx in ws.touched:
            prev = pred[idx]
            if prev == _ROOT:
                continue
            out[ids[idx]] = ((None, pred_via[idx]) if prev == _POINT
                             else (ids[prev], pred_via[idx]))
        return out

    def _routes_to(self,
                   ws: DijkstraWorkspace,
                   source: Optional[int],
                   targets: Iterable[int],
                   bound: float) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Reconstructed routes to every reachable target (door ids).

        The predecessor walk runs directly over the workspace's dense
        arrays — no mapping protocol, no per-step door-id lookups —
        because this sits under every expansion of the search loop.
        """
        index = self._door_index
        ids = self._door_ids
        epoch = ws.epoch
        visit = ws.visit
        dist = ws.dist
        pred = ws.pred
        pred_via = ws.pred_via
        # The walk ends at the source's dense index (which first-hop
        # trees seed as a predecessor without ever visiting) or at a
        # point-attachment seed; -3 never matches a dense index.
        src_idx = index[source] if source is not None else -3
        routes: Dict[int, Tuple[List[int], List[int], float]] = {}
        for target in targets:
            idx = index.get(target)
            if idx is None or visit[idx] != epoch:
                continue
            d = dist[idx]
            if d > bound:
                continue
            doors: List[int] = []
            vias: List[int] = []
            node = idx
            while node != src_idx:
                doors.append(ids[node])
                vias.append(pred_via[node])
                prev = pred[node]
                if prev == _POINT:
                    break
                node = prev
            doors.reverse()
            vias.reverse()
            routes[target] = (doors, vias, d)
        return routes

    # ------------------------------------------------------------------
    # Single-source shortest paths
    # ------------------------------------------------------------------
    def dijkstra(self,
                 source: int,
                 banned: Optional[FrozenSet[int]] = None,
                 targets: Optional[Set[int]] = None,
                 bound: float = INF,
                 workspace: Optional[DijkstraWorkspace] = None,
                 banned_partitions: Optional[FrozenSet[int]] = None,
                 ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Shortest distances from door ``source`` to every door.

        Args:
            source: Source door id.
            banned: Doors that may not be visited (the source itself is
                always allowed).  Used for regular-route extensions.
            targets: Early-exit set — the search stops once every
                target has been settled, and does not start at all when
                every target is already settled at entry (e.g.
                ``targets == {source}``).
            bound: Distances beyond this value are not explored.
            workspace: Scratch state to (re)use; defaults to the
                graph-owned single-threaded workspace.
            banned_partitions: Partition ids the path may not traverse
                — no edge through such a partition is relaxed.  The
                dynamic-overlay hook (closed corridors, maintenance
                zones); honored identically by every kernel backend.

        Returns:
            ``(dist, pred)`` where ``pred[d] = (previous door, via
            partition)`` on the shortest path tree.
        """
        src_idx = self._door_index[source]
        if targets is not None:
            target_idx = {self._door_index[t] for t in targets
                          if t in self._door_index}
            target_idx.discard(src_idx)
            if not target_idx:
                # Every target is settled before the first pop; do not
                # explore the graph at all.
                return {source: 0.0}, {}
        else:
            target_idx = None
        ws = workspace or self.workspace
        banned_ids: Iterable[int] = ()
        if banned:
            banned_ids = (did for did in banned if did != source)
        self._run_dijkstra(ws, ((0.0, src_idx, _ROOT, -1),),
                           banned_ids, target_idx, bound,
                           banned_partitions=banned_partitions)
        return self._dist_dict(ws), self._pred_dict(ws)

    def dijkstra_tree(self,
                      source: int,
                      bound: float = INF,
                      workspace: Optional[DijkstraWorkspace] = None,
                      banned: Optional[FrozenSet[int]] = None,
                      banned_partitions: Optional[FrozenSet[int]] = None,
                      ) -> FlatTree:
        """Full single-source shortest-path tree as a :class:`FlatTree`.

        The array-native sibling of :meth:`dijkstra` for callers that
        keep the result (the :class:`DoorMatrix` rows): the workspace
        run is frozen into flat buffers instead of being materialised
        as two dicts.  ``banned`` / ``banned_partitions`` scope the
        tree to a closure overlay; a banned *source* yields an empty
        tree (overlay-scoped matrices never consult such rows — route
        tails are always open doors).
        """
        ws = workspace or self.workspace
        self._run_dijkstra(ws, ((0.0, self._door_index[source], _ROOT, -1),),
                           banned or (), None, bound,
                           banned_partitions=banned_partitions)
        return FlatTree.from_workspace(ws, self)

    def shortest_route(self,
                       source: int,
                       target: int,
                       banned: Optional[FrozenSet[int]] = None,
                       bound: float = INF,
                       first_hop_via: Optional[int] = None,
                       workspace: Optional[DijkstraWorkspace] = None,
                       banned_partitions: Optional[FrozenSet[int]] = None,
                       ) -> Optional[Tuple[List[int], List[int], float]]:
        """Shortest door route from ``source`` to ``target``.

        Returns ``(doors, vias, distance)`` where ``doors`` starts with
        the first door *after* ``source`` and ends with ``target``, and
        ``vias[i]`` is the partition traversed to reach ``doors[i]``.
        ``None`` when unreachable within ``bound``.

        ``first_hop_via`` restricts the first move to leave the given
        partition (the KoE expansion must exit the current partition).
        """
        if first_hop_via is not None:
            return self.multi_target_routes(
                source, first_hop_via, {target}, banned=banned,
                bound=bound, workspace=workspace,
                banned_partitions=banned_partitions).get(target)
        if source == target:
            return [], [], 0.0
        ws = workspace or self.workspace
        src_idx = self._door_index[source]
        tgt_idx = self._door_index[target]
        banned_ids: Iterable[int] = ()
        if banned:
            banned_ids = (did for did in banned if did != source)
        self._run_dijkstra(ws, ((0.0, src_idx, _ROOT, -1),),
                           banned_ids, (tgt_idx,), bound,
                           banned_partitions=banned_partitions)
        routes = self._routes_to(ws, source, (target,), bound)
        return routes.get(target)

    def multi_target_routes(self,
                            source: int,
                            first_via: int,
                            targets: Set[int],
                            banned: Optional[FrozenSet[int]] = None,
                            bound: float = INF,
                            workspace: Optional[DijkstraWorkspace] = None,
                            banned_partitions: Optional[FrozenSet[int]] = None,
                            ) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Shortest first-hop-restricted routes to each target door.

        Used by the keyword-oriented expansion: from the route tail
        ``source`` (an enterable door of partition ``first_via``) find,
        for every enterable door of the next key partition, the
        shortest regular continuation.  Returns a mapping ``target ->
        (doors, vias, distance)`` containing only reachable targets.
        """
        ws = workspace or self.workspace
        index = self._door_index
        src_idx = index[source]
        target_idx = {index[t] for t in targets if t in index}
        target_idx.discard(src_idx)
        self._run_dijkstra(ws, self._first_hop_seeds(source, first_via),
                           banned or (), target_idx, bound, forbid=src_idx,
                           banned_partitions=banned_partitions)
        return self._routes_to(ws, source, targets, bound)

    def routes_from_point(self,
                          p: Point,
                          host_pid: int,
                          targets: Set[int],
                          banned: Optional[FrozenSet[int]] = None,
                          bound: float = INF,
                          workspace: Optional[DijkstraWorkspace] = None,
                          banned_partitions: Optional[FrozenSet[int]] = None,
                          ) -> Dict[int, Tuple[List[int], List[int], float]]:
        """Shortest routes from a free point to each target door.

        The point attaches to the leaveable doors of ``host_pid`` (its
        host partition), mirroring :meth:`multi_target_routes` for the
        initial search stamp whose tail is the start point.
        """
        ws = workspace or self.workspace
        index = self._door_index
        target_idx = {index[t] for t in targets if t in index}
        self._run_dijkstra(ws, self._point_seeds(p, host_pid),
                           banned or (), target_idx, bound,
                           banned_partitions=banned_partitions)
        return self._routes_to(ws, None, targets, bound)

    # ------------------------------------------------------------------
    # Point attachment
    # ------------------------------------------------------------------
    def distances_from_point(self,
                             p: Point,
                             bound: float = INF,
                             workspace: Optional[DijkstraWorkspace] = None,
                             ) -> Dict[int, float]:
        """Shortest indoor distance from point ``p`` to every door.

        The point is attached to the leaveable doors of its host
        partition, then ordinary Dijkstra takes over.
        """
        ws = workspace or self.workspace
        host = self._space.host_partition(p)
        self._run_dijkstra(ws, self._point_seeds(p, host.pid),
                           (), None, bound)
        return self._dist_dict(ws)

    def point_attachment_map(self,
                             p: Point,
                             workspace: Optional[DijkstraWorkspace] = None,
                             banned: Optional[FrozenSet[int]] = None,
                             banned_partitions: Optional[FrozenSet[int]] = None,
                             ) -> Tuple[int, FlatDistMap, FlatPredMap]:
        """The full unbounded point-attachment tree of point ``p``.

        Returns ``(host partition id, dist, pred)`` where ``dist`` /
        ``pred`` are read-only mapping views over one frozen
        :class:`FlatTree` (the ``pred`` view carries ``(None, host)``
        at the attachment doors so :func:`reconstruct_route` walks it
        with ``source=None``).  This is the structure the batched
        ``QueryService`` keeps in its per-endpoint LRU: any
        first-expansion continuation query from ``p`` (empty banned
        set, first hop through the host partition) can be answered
        from it without re-running Dijkstra — and the flat layout
        keeps a cached endpoint at ~24 bytes per door instead of two
        dict entries per reached door.

        ``banned`` / ``banned_partitions`` scope the attachment tree
        to a closure overlay; the caller's cache key must then carry
        the overlay identity (a pre-closure map answers queries the
        closure should have rerouted).
        """
        ws = workspace or self.workspace
        host = self._space.host_partition(p)
        self._run_dijkstra(ws, self._point_seeds(p, host.pid),
                           banned or (), None, INF,
                           banned_partitions=banned_partitions)
        tree = FlatTree.from_workspace(ws, self)
        return host.pid, tree.dist_map(), tree.pred_map()

    def point_to_point_distance(self, ps: Point, pt: Point,
                                bound: float = INF,
                                workspace: Optional[DijkstraWorkspace] = None,
                                ) -> float:
        """Shortest indoor distance between two points (``δs2t``)."""
        space = self._space
        host_s = space.host_partition(ps)
        host_t = space.host_partition(pt)
        best = INF
        if host_s.pid == host_t.pid:
            best = ps.distance_to(pt)
        # Read the workspace arrays directly: only the handful of
        # enterable doors of pt's host partition are consumed, so
        # materialising the full distance dict would be pure churn.
        ws = workspace or self.workspace
        self._run_dijkstra(ws, self._point_seeds(ps, host_s.pid),
                           (), None, min(bound, best))
        index = self._door_index
        epoch = ws.epoch
        visit = ws.visit
        dist = ws.dist
        for dk in space.p2d_enter(host_t.pid):
            idx = index.get(dk)
            if idx is None or visit[idx] != epoch:
                continue
            total = dist[idx] + space.door(dk).position.distance_to(pt)
            if total < best:
                best = total
        return best


class DoorMatrix:
    """All-pairs door-to-door shortest distances and routes.

    This is the precomputed structure behind the KoE* variant (paper
    Section V, Table III) and the query generator's "precomputed
    door-to-door matrix" (Section V-A1).  Eagerness is a deliberate
    engine-level choice, not a property of the matrix:

    * By default rows are computed lazily on first use and cached —
      the right mode when only a few sources are ever queried, and the
      mode under which the paper's observation holds that eager
      all-pairs precomputation on a paper-size venue does not pay off.
    * ``eager=True`` prebuilds every row up front so that query-time
      measurements exclude construction cost; ``IKRQEngine`` defaults
      to this for KoE* (tunable via ``IKRQEngine(door_matrix_eager=…)``)
      because the engine amortises one matrix over many queries.

    ``max_rows`` puts a memory budget on the cache: at most that many
    rows stay resident, evicted in least-recently-used order (the
    ``evictions`` counter feeds the search stats).  Row access is
    thread-safe so a matrix can back concurrent batched queries.

    ``spill_path`` adds a disk tier under the memory budget: evicted
    rows are appended to a per-engine
    :class:`~repro.space.rowcache.RowCacheFile` (the binary snapshot
    v2 row encoding) and transparently faulted back on the next miss —
    three ``frombytes`` memcpys instead of a full Dijkstra run, byte
    identical to the evicted row.  ``spills`` counts rows written,
    ``spill_hits`` rows faulted back, ``spill_misses`` misses that had
    no spilled copy and recomputed; all three surface through
    ``ServiceStats`` and ``/metrics``.

    Rows are stored as :class:`FlatTree` objects — three flat typed
    arrays over dense door indices — instead of the dict-of-dict pairs
    of the original implementation; ``distance`` is one array load and
    ``route`` a dense predecessor walk.  The dict-shaped accessors
    (:meth:`warm_rows` / :meth:`preload_rows`) remain for the JSON
    snapshot format; the binary snapshot v2 packs the arrays directly
    (:meth:`warm_trees` / :meth:`preload_trees`).
    """

    def __init__(self,
                 graph: DoorGraph,
                 eager: bool = False,
                 max_rows: Optional[int] = None,
                 spill_path: Optional[str] = None,
                 banned: Optional[FrozenSet[int]] = None,
                 banned_partitions: Optional[FrozenSet[int]] = None) -> None:
        if max_rows is not None and max_rows < 1:
            raise ValueError("max_rows must be at least 1")
        # Overlay-scoped matrices (non-empty banned sets) must not
        # share a spill file: spilled rows are keyed by source door
        # only, so a row computed under one overlay would be faulted
        # back — silently wrong — under another.  Each overlay gets
        # its own in-memory matrix instead (the engine keys them by
        # overlay identity); refusing here makes the cross-overlay
        # cache-poisoning bug unrepresentable.
        if spill_path is not None and (banned or banned_partitions):
            raise ValueError(
                "overlay-scoped DoorMatrix cannot use a spill file "
                "(spilled rows carry no banned-set identity)")
        self._graph = graph
        self._banned = frozenset(banned) if banned else None
        self._banned_partitions = (frozenset(banned_partitions)
                                   if banned_partitions else None)
        self._rows: "OrderedDict[int, FlatTree]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_rows = max_rows
        self.evictions = 0
        self.spills = 0
        self.spill_hits = 0
        self.spill_misses = 0
        self._spill = None
        if spill_path is not None:
            from repro.space.rowcache import RowCacheFile
            self._spill = RowCacheFile(graph, spill_path)
        if eager:
            # Under a memory budget, prefill only up to the budget —
            # computing every row just to evict most of them at once
            # would waste nearly all the construction work.
            doors = sorted(graph.space.doors)
            if max_rows is not None:
                doors = doors[:max_rows]
            for did in doors:
                self._row(did)

    def _row(self, source: int) -> FlatTree:
        with self._lock:
            row = self._rows.get(source)
            if row is not None:
                if self.max_rows is not None:
                    self._rows.move_to_end(source)
                return row
        # Fault or compute outside the lock (on the calling thread's
        # workspace) so cache hits on other threads never wait behind
        # disk I/O or a full Dijkstra; a concurrent miss on the same
        # source produces the same row and the first insert wins.
        row = None
        if self._spill is not None:
            row = self._spill.load(source)
            if row is not None:
                with self._lock:
                    self.spill_hits += 1
            else:
                with self._lock:
                    self.spill_misses += 1
        if row is None:
            row = self._graph.dijkstra_tree(
                source, workspace=self._graph.workspace,
                banned=self._banned,
                banned_partitions=self._banned_partitions)
        with self._lock:
            row = self._rows.setdefault(source, row)
            if self.max_rows is not None:
                self._rows.move_to_end(source)
                evicted = []
                while len(self._rows) > self.max_rows:
                    evicted.append(self._rows.popitem(last=False))
                    self.evictions += 1
        if self.max_rows is not None:
            self._spill_evicted(evicted)
        return row

    def _spill_evicted(self, evicted) -> None:
        """Write evicted ``(source, tree)`` pairs to the disk tier.

        Runs outside the matrix lock (rows are immutable, so a late
        duplicate store is a no-op inside the cache file's own lock);
        without a spill tier evicted rows are simply dropped.
        """
        if self._spill is None or not evicted:
            return
        stored = sum(1 for source, tree in evicted
                     if self._spill.store(source, tree))
        if stored:
            with self._lock:
                self.spills += stored

    def distance(self, di: int, dj: int) -> float:
        """Shortest door-to-door distance ``di -> dj`` (INF if unreachable)."""
        return self._row(di).distance(dj)

    def route(self, di: int, dj: int) -> Optional[Tuple[List[int], List[int], float]]:
        """Shortest precomputed route ``di -> dj`` as ``(doors, vias, dist)``.

        The route ignores regularity constraints against any existing
        prefix; KoE* re-computes on the fly when its regularity check
        fails, as the paper prescribes.
        """
        return self._row(di).route_to(dj)

    def num_cached_rows(self) -> int:
        with self._lock:
            return len(self._rows)

    def warm_trees(self, limit: Optional[int] = None) -> "OrderedDict[int, FlatTree]":
        """The resident rows as flat trees (hottest last).

        Returns at most ``limit`` rows, preferring the most recently
        used ones so a snapshot captures the rows live traffic keeps
        hot.  The trees are the cached (immutable) objects themselves.
        """
        with self._lock:
            rows = list(self._rows.items())
        if limit is not None and limit >= 0:
            rows = rows[len(rows) - min(limit, len(rows)):]
        return OrderedDict(rows)

    def warm_rows(self,
                  limit: Optional[int] = None,
                  ) -> Dict[int, Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]]:
        """The resident rows in dict shape (hottest last).

        The JSON (v1) snapshot encoding of :meth:`warm_trees`; derived
        from the flat arrays on demand.
        """
        return {source: (tree.dist_dict(), tree.pred_dict())
                for source, tree in self.warm_trees(limit).items()}

    def preload_trees(self, trees: Mapping[int, FlatTree]) -> None:
        """Adopt previously exported flat rows (snapshot v2 load path).

        Rows beyond ``max_rows`` follow the normal LRU policy; preloads
        do not count as evictions of live traffic, but the displaced
        rows still spill to the disk tier when one is configured (a
        budgeted load of a generously warmed snapshot starts with its
        cold rows on disk instead of gone).
        """
        evicted = []
        with self._lock:
            for source, tree in trees.items():
                self._rows[source] = tree
                self._rows.move_to_end(source)
                if self.max_rows is not None:
                    while len(self._rows) > self.max_rows:
                        evicted.append(self._rows.popitem(last=False))
        self._spill_evicted(evicted)

    def preload_rows(self,
                     rows: Mapping[int, Tuple[Dict[int, float],
                                              Dict[int, Tuple[int, int]]]],
                     ) -> None:
        """Adopt previously exported dict-shaped rows (snapshot v1)."""
        graph = self._graph
        self.preload_trees(OrderedDict(
            (source, FlatTree.from_dicts(graph, dist, pred))
            for source, (dist, pred) in rows.items()))

    def estimated_bytes(self) -> int:
        """Rough memory footprint of the cached rows (for Fig. 14)."""
        total = 0
        with self._lock:
            for tree in self._rows.values():
                total += tree.estimated_bytes()
        return total

    @property
    def spill_path(self) -> Optional[str]:
        return self._spill.path if self._spill is not None else None

    def close_spill(self) -> None:
        """Close and delete the disk tier's scratch file (eviction of
        the owning engine; spilled rows are recomputable state)."""
        if self._spill is not None:
            self._spill.close()

    def memory_counters(self) -> Dict[str, int]:
        """The matrix's share of the per-engine memory breakdown.

        Resident bytes are split into heap rows and ``mmap``-backed
        rows (snapshot-mapped warm rows share page cache, they do not
        add to per-process heap); the spill tier reports its on-disk
        rows and bytes.  All counters read under the matrix lock.
        """
        heap = mapped = mapped_rows = 0
        with self._lock:
            rows = len(self._rows)
            for tree in self._rows.values():
                if tree.is_mapped():
                    mapped += tree.estimated_bytes()
                    mapped_rows += 1
                else:
                    heap += tree.estimated_bytes()
            counters = {
                "resident_rows": rows,
                "resident_heap_bytes": heap,
                "resident_mapped_bytes": mapped,
                "resident_mapped_rows": mapped_rows,
                "evictions": self.evictions,
                "spills": self.spills,
                "spill_hits": self.spill_hits,
                "spill_misses": self.spill_misses,
            }
        spill = self._spill
        counters["spilled_rows"] = len(spill) if spill is not None else 0
        counters["spilled_bytes"] = spill.nbytes if spill is not None else 0
        return counters

"""Indoor space model substrate.

Implements the door/partition topology model of Lu et al. (ICDE 2012)
that the paper builds on: partitions (rooms, hallway cells, staircases),
doors with directionality, the topology mappings ``D2P`` / ``P2D``, the
intra-partition distance functions, the skeleton lower-bound distance
of Xie et al. (ICDE 2013), and a door-to-door routing graph with
shortest (regular) route search.
"""

from repro.space.entities import Door, Partition, PartitionKind
from repro.space.indoor_space import IndoorSpace
from repro.space.builder import IndoorSpaceBuilder
from repro.space.distances import DistanceOracle
from repro.space.graph import (DijkstraWorkspace, DoorGraph, DoorMatrix,
                              FlatDistMap, FlatPredMap, FlatTree,
                              reconstruct_route)
from repro.space.skeleton import SkeletonIndex
from repro.space.elevators import add_elevator_shaft
from repro.space.serialize import (
    load_space,
    save_space,
    space_from_dict,
    space_to_dict,
)

__all__ = [
    "Door",
    "DijkstraWorkspace",
    "DoorGraph",
    "DoorMatrix",
    "FlatDistMap",
    "FlatPredMap",
    "FlatTree",
    "reconstruct_route",
    "DistanceOracle",
    "IndoorSpace",
    "IndoorSpaceBuilder",
    "Partition",
    "PartitionKind",
    "SkeletonIndex",
    "add_elevator_shaft",
    "load_space",
    "save_space",
    "space_from_dict",
    "space_to_dict",
]

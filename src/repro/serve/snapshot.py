"""Versioned on-disk index snapshots for millisecond worker cold-start.

The venue serialisation of :mod:`repro.space.serialize` ships the raw
model; a *snapshot* additionally persists every index the engine
builds from it, so a serve worker loads instead of recomputing:

* the interned CSR door-graph buffers (``DoorGraph.csr_arrays``),
* the skeleton index's staircase doors and δs2s all-pairs matrix,
* warm KoE* door-matrix rows (distance + predecessor dicts, hottest
  rows first) together with the matrix budget/eagerness settings,
* an optional advisory :class:`~repro.core.prime.PrimeTable` learned
  from traffic (diagnostics only — live searches always start from an
  empty per-query table, so persisting it never changes results).

Format (single JSON document)::

    {"format": "repro-ikrq-snapshot", "version": 1,
     "venue":    {... repro-indoor-space document ...},
     "graph":    {"door_ids": [...], "indptr": [...],
                  "nbr": [...], "via": [...], "wt": [...]},
     "skeleton": {"stair_doors": [...], "s2s": [[...]]},
     "door_matrix": {"eager": bool, "max_rows": int|null,
                     "rows": [[src, {"dist": {did: d},
                                     "pred": {did: [prev, via]}}],
                              ...]},  # LRU order, hottest last
     "prime":    {"entries": [[tail, [kp...], dist], ...]},
     "engine":   {"door_matrix_eager": bool,
                  "door_matrix_max_rows": int|null,
                  "popularity": {pid: weight}}}

Floats survive exactly (JSON emits the shortest round-tripping
``repr``), so an engine loaded from a snapshot answers byte-identically
to the engine the snapshot was taken from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.engine import IKRQEngine
from repro.core.prime import PrimeTable
from repro.space.distances import DistanceOracle
from repro.space.graph import DoorGraph, DoorMatrix
from repro.space.serialize import space_from_dict, space_to_dict
from repro.space.skeleton import SkeletonIndex

SNAPSHOT_FORMAT = "repro-ikrq-snapshot"
SNAPSHOT_VERSION = 1


def _matrix_rows_to_doc(rows) -> list:
    # An ordered list (coldest first, hottest last), not a dict: the
    # sorted-keys JSON dump would otherwise destroy the LRU hotness
    # order that warm_rows captured, and a budgeted matrix would evict
    # by door-id string order instead of coldness after a reload.
    return [
        [source, {
            "dist": {str(did): d for did, d in dist.items()},
            "pred": {str(did): [prev, via]
                     for did, (prev, via) in pred.items()},
        }]
        for source, (dist, pred) in rows.items()
    ]


def _matrix_rows_from_doc(doc: list):
    rows = {}
    for source, row in doc:
        dist = {int(did): d for did, d in row["dist"].items()}
        pred = {int(did): (prev, via)
                for did, (prev, via) in row["pred"].items()}
        rows[int(source)] = (dist, pred)
    return rows


def snapshot_to_dict(engine: IKRQEngine,
                     matrix_rows: Optional[int] = None,
                     prime: Optional[PrimeTable] = None) -> Dict:
    """Serialise an engine and its built indexes to a snapshot document.

    ``matrix_rows`` caps how many warm door-matrix rows are persisted
    (``None`` keeps every resident row; a matrix that was never built
    contributes none).  ``prime`` optionally embeds an advisory prime
    table (see module docstring).
    """
    if engine.kindex is None:
        raise ValueError("serving requires a keyword index")
    matrix = engine._matrix
    doc: Dict = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "venue": space_to_dict(engine.space, engine.kindex),
        "graph": engine.graph.csr_arrays(),
        "skeleton": engine.skeleton.export(),
        "door_matrix": {
            "eager": engine.door_matrix_eager,
            "max_rows": engine.door_matrix_max_rows,
            "rows": (_matrix_rows_to_doc(matrix.warm_rows(matrix_rows))
                     if matrix is not None else []),
        },
        "prime": {"entries":
                  prime.export_entries() if prime is not None else []},
        "engine": {
            "door_matrix_eager": engine.door_matrix_eager,
            "door_matrix_max_rows": engine.door_matrix_max_rows,
            "popularity": {str(pid): w
                           for pid, w in sorted(engine.popularity.items())},
        },
    }
    return doc


def is_snapshot_document(doc: Dict) -> bool:
    return isinstance(doc, dict) and doc.get("format") == SNAPSHOT_FORMAT


def engine_from_snapshot(doc: Dict) -> IKRQEngine:
    """Rebuild a ready-to-serve engine without running any index build.

    The CSR buffers, skeleton matrix and warm door-matrix rows are
    adopted as-is (``DoorGraph.csr_builds`` / ``SkeletonIndex.s2s_builds``
    stay untouched — tests assert the cold-start skips the rebuild).
    """
    if not is_snapshot_document(doc):
        raise ValueError(f"not a {SNAPSHOT_FORMAT} document")
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {doc.get('version')!r}")
    space, kindex = space_from_dict(doc["venue"])
    if kindex is None:
        raise ValueError("snapshot venue carries no keyword index")
    oracle = DistanceOracle(space)
    graph = DoorGraph.from_csr(space, oracle=oracle, **doc["graph"])
    skeleton = SkeletonIndex.from_precomputed(
        space, doc["skeleton"]["stair_doors"], doc["skeleton"]["s2s"])
    engine_doc = doc.get("engine", {})
    matrix_doc = doc.get("door_matrix", {})
    max_rows = matrix_doc.get("max_rows")
    matrix: Optional[DoorMatrix] = None
    rows = _matrix_rows_from_doc(matrix_doc.get("rows", []))
    if rows:
        # Warm rows replace the eager prebuild: the matrix starts lazy
        # and adopts the snapshotted rows; anything missing is computed
        # on demand (identically — rows are pure in the graph).
        matrix = DoorMatrix(graph, eager=False, max_rows=max_rows)
        matrix.preload_rows(rows)
    popularity = {int(pid): w
                  for pid, w in engine_doc.get("popularity", {}).items()}
    return IKRQEngine(
        space, kindex,
        popularity=popularity,
        door_matrix_eager=engine_doc.get("door_matrix_eager", True),
        door_matrix_max_rows=max_rows,
        oracle=oracle, graph=graph, skeleton=skeleton, door_matrix=matrix)


def prime_from_snapshot(doc: Dict) -> PrimeTable:
    """The advisory prime table embedded in a snapshot (may be empty)."""
    return PrimeTable.from_entries(doc.get("prime", {}).get("entries", []))


def save_snapshot(path: Union[str, Path],
                  engine: IKRQEngine,
                  matrix_rows: Optional[int] = None,
                  prime: Optional[PrimeTable] = None) -> None:
    """Write an engine snapshot to a JSON file."""
    doc = snapshot_to_dict(engine, matrix_rows=matrix_rows, prime=prime)
    Path(path).write_text(json.dumps(doc, sort_keys=True))


def read_snapshot(path: Union[str, Path]) -> Dict:
    """Read a snapshot document (no engine construction)."""
    doc = json.loads(Path(path).read_text())
    if not is_snapshot_document(doc):
        raise ValueError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    return doc


def load_snapshot(path: Union[str, Path]) -> IKRQEngine:
    """Load a snapshot file into a ready-to-serve engine."""
    return engine_from_snapshot(read_snapshot(path))

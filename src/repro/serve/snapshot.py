"""Versioned on-disk index snapshots for millisecond worker cold-start.

The venue serialisation of :mod:`repro.space.serialize` ships the raw
model; a *snapshot* additionally persists every index the engine
builds from it, so a serve worker loads instead of recomputing:

* the interned CSR door-graph buffers (``DoorGraph.csr_arrays``),
* the skeleton index's staircase doors and δs2s all-pairs matrix,
* warm KoE* door-matrix rows (distance + predecessor dicts, hottest
  rows first) together with the matrix budget/eagerness settings,
* an optional advisory :class:`~repro.core.prime.PrimeTable` learned
  from traffic (diagnostics only — live searches always start from an
  empty per-query table, so persisting it never changes results).

Two encodings share one logical model.

**Version 1 — JSON** (single document)::

    {"format": "repro-ikrq-snapshot", "version": 1,
     "venue":    {... repro-indoor-space document ...},
     "graph":    {"door_ids": [...], "indptr": [...],
                  "nbr": [...], "via": [...], "wt": [...]},
     "skeleton": {"stair_doors": [...], "s2s": [[...]]},
     "door_matrix": {"eager": bool, "max_rows": int|null,
                     "rows": [[src, {"dist": {did: d},
                                     "pred": {did: [prev, via]}}],
                              ...]},  # LRU order, hottest last
     "prime":    {"entries": [[tail, [kp...], dist], ...]},
     "engine":   {"door_matrix_eager": bool,
                  "door_matrix_max_rows": int|null,
                  "popularity": {pid: weight}}}

**Version 2 — binary** (``save_snapshot(..., binary=True)``): the same
content with every large structure packed as raw typed-array bytes, so
cold-start on big venues pays one ``fromfile``-style memcpy per buffer
instead of JSON parsing millions of number tokens, and the loaded
buffers *are* the runtime representation (flat CSR arrays, flat δs2s,
:class:`~repro.space.graph.FlatTree` matrix rows).  Since v2.1 the
payload is **page-aligned** by default, so it can also be ``mmap``-ed.
Layout::

    magic   8 bytes  b"IKRQSNP2"
    u32 LE  container version (2)
    u32 LE  header length in bytes
    header  UTF-8 JSON: {"format", "version": 2, "byteorder": "little",
                         "venue": {...}, "engine": {...},
                         "prime": {...}, "door_matrix":
                             {"eager", "max_rows",
                              "row_sources": [src, ...]},  # LRU order
                         "align": 4096,                    # v2.1 only
                         "arrays":
                             [[name, typecode, count], ...]          # v2.0
                             [[name, typecode, count, offset], ...]} # v2.1
    payload v2.0: raw array bytes, concatenated in ``arrays`` order
            v2.1: each section at ``payload_base + offset`` where
                  ``payload_base`` is the first ``align`` multiple at
                  or past the header end, every ``offset`` is an
                  ``align`` multiple, and inter-section gaps are zero
                  padding

Array sections: ``graph.door_ids|indptr|nbr|via`` (``q``),
``graph.wt`` (``d``), ``skeleton.stair_doors`` (``q``),
``skeleton.s2s`` (``d``, flat row-major — ``inf`` survives natively,
no ``None`` dance), and per warm matrix row ``i``: ``row{i}.dist``
(``d``, dense over door indices), ``row{i}.pred`` / ``row{i}.pred_via``
(``q``).  Buffers are always little-endian on disk; loaders byteswap
on big-endian hosts.

``load_snapshot(path, mmap=True)`` maps an aligned file read-only and
backs the graph, skeleton and warm matrix buffers with ``memoryview``
slices of the shared mapping instead of heap copies, so N shard
processes loading the same generation share **one** page-cache copy of
the typed-array payload.  Answers are bit-identical to an eager load —
the views hand back the same IEEE bits the arrays would.  The mode
falls back to an eager load (and records ``engine.mapped_bytes == 0``)
for v2.0 files, JSON v1 files, and big-endian hosts, where adopting
the little-endian payload in place would mis-read every value.

Both encodings preserve floats exactly (JSON emits the shortest
round-tripping ``repr``; binary stores the IEEE bits), so an engine
loaded from either answers byte-identically to the engine the snapshot
was taken from.  ``load_snapshot`` / ``read_snapshot`` sniff the magic
bytes, so every caller accepts both formats transparently; v1 JSON and
v2.0 packed files remain fully readable.
"""

from __future__ import annotations

import json
import mmap as _mmap
import struct
import sys
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.engine import IKRQEngine
from repro.core.prime import PrimeTable
from repro.space.distances import DistanceOracle
from repro.space.graph import (FlatTree, DoorGraph, DoorMatrix, _POINT,
                               _ROOT)
from repro.space.serialize import space_from_dict, space_to_dict
from repro.space.skeleton import SkeletonIndex

SNAPSHOT_FORMAT = "repro-ikrq-snapshot"
SNAPSHOT_VERSION = 1
#: Version tag of the binary (typed-array) encoding.
SNAPSHOT_VERSION_BINARY = 2
#: Magic prefix of binary snapshot files.
BINARY_MAGIC = b"IKRQSNP2"
#: Default section alignment of the v2.1 layout: one page on every
#: platform we serve on, which is what makes the payload mappable.
SNAPSHOT_ALIGN = 4096

INF = float("inf")

#: Sentinel distinguishing "not passed" from an explicit ``None`` in
#: the loader's matrix-budget override.
_UNSET = object()


def _align_up(value: int, align: int) -> int:
    return -(-value // align) * align


def _typecode(buf) -> str:
    """The ``array`` typecode of a typed buffer (``memoryview``s carry
    it as ``format`` instead)."""
    code = getattr(buf, "typecode", None)
    return code if code is not None else buf.format


def _matrix_rows_to_doc(rows) -> list:
    # An ordered list (coldest first, hottest last), not a dict: the
    # sorted-keys JSON dump would otherwise destroy the LRU hotness
    # order that warm_rows captured, and a budgeted matrix would evict
    # by door-id string order instead of coldness after a reload.
    return [
        [source, {
            "dist": {str(did): d for did, d in dist.items()},
            "pred": {str(did): [prev, via]
                     for did, (prev, via) in pred.items()},
        }]
        for source, (dist, pred) in rows.items()
    ]


def _matrix_rows_from_doc(doc: list):
    rows = {}
    for source, row in doc:
        dist = {int(did): d for did, d in row["dist"].items()}
        pred = {int(did): (prev, via)
                for did, (prev, via) in row["pred"].items()}
        rows[int(source)] = (dist, pred)
    return rows


def snapshot_to_dict(engine: IKRQEngine,
                     matrix_rows: Optional[int] = None,
                     prime: Optional[PrimeTable] = None) -> Dict:
    """Serialise an engine and its built indexes to a snapshot document.

    ``matrix_rows`` caps how many warm door-matrix rows are persisted
    (``None`` keeps every resident row; a matrix that was never built
    contributes none).  ``prime`` optionally embeds an advisory prime
    table (see module docstring).
    """
    if engine.kindex is None:
        raise ValueError("serving requires a keyword index")
    matrix = engine._matrix
    doc: Dict = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "venue": space_to_dict(engine.space, engine.kindex),
        "graph": engine.graph.csr_arrays(),
        "skeleton": engine.skeleton.export(),
        "door_matrix": {
            "eager": engine.door_matrix_eager,
            "max_rows": engine.door_matrix_max_rows,
            "rows": (_matrix_rows_to_doc(matrix.warm_rows(matrix_rows))
                     if matrix is not None else []),
        },
        "prime": {"entries":
                  prime.export_entries() if prime is not None else []},
        "engine": {
            "door_matrix_eager": engine.door_matrix_eager,
            "door_matrix_max_rows": engine.door_matrix_max_rows,
            "popularity": {str(pid): w
                           for pid, w in sorted(engine.popularity.items())},
        },
    }
    return doc


def is_snapshot_document(doc: Dict) -> bool:
    return isinstance(doc, dict) and doc.get("format") == SNAPSHOT_FORMAT


def engine_from_snapshot(doc: Dict,
                         matrix_spill_path: Optional[str] = None,
                         matrix_max_rows=_UNSET,
                         kernel: Optional[str] = None) -> IKRQEngine:
    """Rebuild a ready-to-serve engine without running any index build.

    The CSR buffers, skeleton matrix and warm door-matrix rows are
    adopted as-is (``DoorGraph.csr_builds`` / ``SkeletonIndex.s2s_builds``
    stay untouched — tests assert the cold-start skips the rebuild).
    ``matrix_spill_path`` / ``matrix_max_rows`` mirror
    :func:`load_snapshot`'s memory-tiering overrides; ``kernel``
    selects the compute backend (see :mod:`repro.space.kernels`).
    """
    if not is_snapshot_document(doc):
        raise ValueError(f"not a {SNAPSHOT_FORMAT} document")
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {doc.get('version')!r}")
    space, kindex = space_from_dict(doc["venue"])
    if kindex is None:
        raise ValueError("snapshot venue carries no keyword index")
    oracle = DistanceOracle(space)
    graph = DoorGraph.from_csr(space, oracle=oracle, **doc["graph"])
    skeleton = SkeletonIndex.from_precomputed(
        space, doc["skeleton"]["stair_doors"], doc["skeleton"]["s2s"])
    engine_doc = doc.get("engine", {})
    matrix_doc = doc.get("door_matrix", {})
    max_rows = matrix_doc.get("max_rows")
    if matrix_max_rows is not _UNSET:
        max_rows = matrix_max_rows
    matrix: Optional[DoorMatrix] = None
    rows = _matrix_rows_from_doc(matrix_doc.get("rows", []))
    if rows:
        # Warm rows replace the eager prebuild: the matrix starts lazy
        # and adopts the snapshotted rows; anything missing is computed
        # on demand (identically — rows are pure in the graph).
        matrix = DoorMatrix(graph, eager=False, max_rows=max_rows,
                            spill_path=matrix_spill_path)
        matrix.preload_rows(rows)
    popularity = {int(pid): w
                  for pid, w in engine_doc.get("popularity", {}).items()}
    return IKRQEngine(
        space, kindex,
        popularity=popularity,
        door_matrix_eager=engine_doc.get("door_matrix_eager", True),
        door_matrix_max_rows=max_rows,
        door_matrix_spill_path=matrix_spill_path,
        oracle=oracle, graph=graph, skeleton=skeleton, door_matrix=matrix,
        kernel=kernel)


def prime_from_snapshot(doc: Dict) -> PrimeTable:
    """The advisory prime table embedded in a snapshot (may be empty)."""
    return PrimeTable.from_entries(doc.get("prime", {}).get("entries", []))


# ----------------------------------------------------------------------
# Binary encoding (version 2)
# ----------------------------------------------------------------------
def _engine_header(engine: IKRQEngine) -> Dict:
    return {
        "door_matrix_eager": engine.door_matrix_eager,
        "door_matrix_max_rows": engine.door_matrix_max_rows,
        "popularity": {str(pid): w
                       for pid, w in sorted(engine.popularity.items())},
    }


def save_snapshot_binary(path: Union[str, Path],
                         engine: IKRQEngine,
                         matrix_rows: Optional[int] = None,
                         prime: Optional[PrimeTable] = None,
                         page_align: Optional[int] = SNAPSHOT_ALIGN) -> None:
    """Write the binary (version 2) encoding of an engine snapshot.

    Same content as :func:`snapshot_to_dict`; see the module docstring
    for the container layout.  By default every typed-array section is
    placed on a ``page_align`` boundary (the v2.1 layout) so the
    payload can be mapped; ``page_align=None`` writes the legacy v2.0
    packed layout (readable, never mappable — kept for the compat
    tests and byte-frugal archival).
    """
    if engine.kindex is None:
        raise ValueError("serving requires a keyword index")
    if page_align is not None and (page_align < 1
                                   or page_align % 8 != 0):
        raise ValueError("page_align must be a positive multiple of 8")
    matrix = engine._matrix
    trees = (matrix.warm_trees(matrix_rows)
             if matrix is not None else OrderedDict())
    stair_doors, s2s = engine.skeleton.export_flat()
    graph = engine.graph
    arrays: "OrderedDict[str, array]" = OrderedDict()
    arrays["graph.door_ids"] = graph._door_ids
    arrays["graph.indptr"] = graph._indptr
    arrays["graph.nbr"] = graph._nbr
    arrays["graph.via"] = graph._via
    arrays["graph.wt"] = graph._wt
    arrays["skeleton.stair_doors"] = array("q", stair_doors)
    arrays["skeleton.s2s"] = s2s
    for i, tree in enumerate(trees.values()):
        arrays[f"row{i}.dist"] = tree.dist
        arrays[f"row{i}.pred"] = tree.pred
        arrays[f"row{i}.pred_via"] = tree.pred_via
    header = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION_BINARY,
        "byteorder": "little",
        "venue": space_to_dict(engine.space, engine.kindex),
        "door_matrix": {
            "eager": engine.door_matrix_eager,
            "max_rows": engine.door_matrix_max_rows,
            "row_sources": list(trees),
        },
        "prime": {"entries":
                  prime.export_entries() if prime is not None else []},
        "engine": _engine_header(engine),
    }
    if page_align is None:
        header["arrays"] = [[name, _typecode(arr), len(arr)]
                            for name, arr in arrays.items()]
    else:
        # Section offsets are relative to the payload base (the first
        # aligned byte past the header), so they depend only on the
        # section sizes — never on the header length they are part of.
        header["align"] = page_align
        entries = []
        offset = 0
        for name, arr in arrays.items():
            entries.append([name, _typecode(arr), len(arr), offset])
            offset = _align_up(offset + arr.itemsize * len(arr),
                               page_align)
        header["arrays"] = entries
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(BINARY_MAGIC)
        fh.write(struct.pack("<II", SNAPSHOT_VERSION_BINARY, len(blob)))
        fh.write(blob)
        if page_align is not None:
            payload_base = _align_up(fh.tell(), page_align)
        for entry, arr in zip(header["arrays"], arrays.values()):
            if page_align is not None:
                fh.write(b"\0" * (payload_base + entry[3] - fh.tell()))
            if sys.byteorder == "big":  # pragma: no cover - exotic hosts
                arr = array(_typecode(arr), arr)
                arr.byteswap()
            fh.write(arr.tobytes())


def is_binary_snapshot(path: Union[str, Path]) -> bool:
    """Whether ``path`` starts with the binary snapshot magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(BINARY_MAGIC)) == BINARY_MAGIC
    except OSError:
        return False


def _read_binary(path: Union[str, Path],
                 use_mmap: bool = False,
                 ) -> Tuple[Dict, "OrderedDict[str, array]", Optional[Dict]]:
    """Read a binary snapshot's header and typed-array sections.

    Returns ``(header, arrays, mapped)``.  ``mapped`` is ``None`` for
    an eager read; with ``use_mmap=True`` on an aligned (v2.1) file on
    a little-endian host it is ``{"mmap", "bytes", "path"}`` and every
    section in ``arrays`` is a read-only ``memoryview`` slice of the
    shared mapping (the views keep the mapping alive).  Files whose
    layout cannot be mapped — v2.0 packed, or a big-endian host —
    fall back to the eager read.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(BINARY_MAGIC))
        if magic != BINARY_MAGIC:
            raise ValueError(f"{path} is not a binary {SNAPSHOT_FORMAT} file")
        version, header_len = struct.unpack("<II", fh.read(8))
        if version != SNAPSHOT_VERSION_BINARY:
            raise ValueError(
                f"unsupported binary snapshot version {version!r}")
        blob = fh.read(header_len)
        if len(blob) != header_len:
            raise ValueError(f"truncated binary snapshot: {path} (header)")
        header = json.loads(blob.decode("utf-8"))
        align = header.get("align")
        payload_base = (_align_up(len(BINARY_MAGIC) + 8 + header_len, align)
                        if align else None)
        arrays: "OrderedDict[str, array]" = OrderedDict()
        if use_mmap and align and sys.byteorder == "little":
            mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
            view = memoryview(mm)
            mapped_bytes = 0
            for name, typecode, count, offset in header["arrays"]:
                itemsize = array(typecode).itemsize
                start = payload_base + offset
                end = start + count * itemsize
                if end > len(mm):
                    raise ValueError(f"truncated binary snapshot: {name}")
                arrays[name] = view[start:end].cast(typecode)
                mapped_bytes += count * itemsize
            return header, arrays, {"mmap": mm, "bytes": mapped_bytes,
                                    "path": str(path)}
        for entry in header["arrays"]:
            name, typecode, count = entry[0], entry[1], entry[2]
            arr = array(typecode)
            if payload_base is not None:
                fh.seek(payload_base + entry[3])
            payload = fh.read(count * arr.itemsize)
            if len(payload) != count * arr.itemsize:
                raise ValueError(f"truncated binary snapshot: {name}")
            arr.frombytes(payload)
            if sys.byteorder == "big":  # pragma: no cover - exotic hosts
                arr.byteswap()
            arrays[name] = arr
    return header, arrays, None


def _engine_from_packed(header: Dict,
                        arrays: "OrderedDict[str, array]",
                        mapped: Optional[Dict] = None,
                        matrix_spill_path: Optional[str] = None,
                        matrix_max_rows=_UNSET,
                        kernel: Optional[str] = None) -> IKRQEngine:
    """Adopt packed buffers as the runtime structures — no conversion.

    The CSR arrays, the flat δs2s table and the dense matrix rows feed
    :meth:`DoorGraph.from_csr`, :meth:`SkeletonIndex.from_precomputed_flat`
    and :class:`FlatTree` directly, which is what makes binary
    cold-start one memcpy per buffer — or, when ``arrays`` holds
    ``memoryview`` slices of an ``mmap`` (``mapped`` is set), zero
    copies at all: the runtime structures index the shared mapping.
    """
    space, kindex = space_from_dict(header["venue"])
    if kindex is None:
        raise ValueError("snapshot venue carries no keyword index")
    oracle = DistanceOracle(space)
    graph = DoorGraph.from_csr(
        space,
        arrays["graph.door_ids"], arrays["graph.indptr"],
        arrays["graph.nbr"], arrays["graph.via"], arrays["graph.wt"],
        oracle=oracle)
    skeleton = SkeletonIndex.from_precomputed_flat(
        space, list(arrays["skeleton.stair_doors"]),
        arrays["skeleton.s2s"])
    matrix_doc = header.get("door_matrix", {})
    max_rows = matrix_doc.get("max_rows")
    if matrix_max_rows is not _UNSET:
        max_rows = matrix_max_rows
    sources = matrix_doc.get("row_sources", [])
    matrix: Optional[DoorMatrix] = None
    if sources:
        trees: "OrderedDict[int, FlatTree]" = OrderedDict()
        for i, source in enumerate(sources):
            # ``touched`` is derived lazily inside FlatTree — scanning
            # every row's dist buffer here would fault the whole
            # mapping in at load time for nothing.
            trees[int(source)] = FlatTree(
                graph._door_ids, graph._door_index, arrays[f"row{i}.dist"],
                arrays[f"row{i}.pred"], arrays[f"row{i}.pred_via"])
        matrix = DoorMatrix(graph, eager=False, max_rows=max_rows,
                            spill_path=matrix_spill_path)
        matrix.preload_trees(trees)
    engine_doc = header.get("engine", {})
    popularity = {int(pid): w
                  for pid, w in engine_doc.get("popularity", {}).items()}
    engine = IKRQEngine(
        space, kindex,
        popularity=popularity,
        door_matrix_eager=engine_doc.get("door_matrix_eager", True),
        door_matrix_max_rows=max_rows,
        door_matrix_spill_path=matrix_spill_path,
        oracle=oracle, graph=graph, skeleton=skeleton, door_matrix=matrix,
        kernel=kernel)
    if mapped is not None:
        engine.mapped_bytes = mapped["bytes"]
        engine._snapshot_mmap = mapped["mmap"]
    return engine


def _packed_to_doc(header: Dict,
                   arrays: "OrderedDict[str, array]") -> Dict:
    """Normalise a binary snapshot to the version-1 document shape.

    Exists so :func:`read_snapshot` (inspection, tests, tooling) hands
    out one document shape regardless of the on-disk encoding; the
    result is a valid version-1 document equal to what
    :func:`snapshot_to_dict` produced at save time.
    """
    ids = arrays["graph.door_ids"]
    n = len(ids)
    matrix_doc = header.get("door_matrix", {})
    rows_doc: List = []
    for i, source in enumerate(matrix_doc.get("row_sources", [])):
        dist = arrays[f"row{i}.dist"]
        pred = arrays[f"row{i}.pred"]
        pred_via = arrays[f"row{i}.pred_via"]
        dist_doc = {str(ids[idx]): dist[idx]
                    for idx in range(n) if dist[idx] != INF}
        pred_doc = {}
        for idx in range(n):
            prev = pred[idx]
            if prev == _ROOT:
                continue
            pred_doc[str(ids[idx])] = [
                None if prev == _POINT else ids[prev], pred_via[idx]]
        rows_doc.append([int(source),
                         {"dist": dist_doc, "pred": pred_doc}])
    stair_doors = list(arrays["skeleton.stair_doors"])
    m = len(stair_doors)
    s2s = arrays["skeleton.s2s"]
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "venue": header["venue"],
        "graph": {
            "door_ids": list(ids),
            "indptr": list(arrays["graph.indptr"]),
            "nbr": list(arrays["graph.nbr"]),
            "via": list(arrays["graph.via"]),
            "wt": list(arrays["graph.wt"]),
        },
        "skeleton": {
            "stair_doors": stair_doors,
            "s2s": [[None if s2s[i * m + j] == INF else s2s[i * m + j]
                     for j in range(m)] for i in range(m)],
        },
        "door_matrix": {
            "eager": matrix_doc.get("eager"),
            "max_rows": matrix_doc.get("max_rows"),
            "rows": rows_doc,
        },
        "prime": header.get("prime", {"entries": []}),
        "engine": header.get("engine", {}),
    }


# ----------------------------------------------------------------------
# File entry points (both encodings)
# ----------------------------------------------------------------------
def save_snapshot(path: Union[str, Path],
                  engine: IKRQEngine,
                  matrix_rows: Optional[int] = None,
                  prime: Optional[PrimeTable] = None,
                  binary: bool = False,
                  page_align: Optional[int] = SNAPSHOT_ALIGN) -> None:
    """Write an engine snapshot (JSON v1, or binary v2 when ``binary``)."""
    if binary:
        save_snapshot_binary(path, engine, matrix_rows=matrix_rows,
                             prime=prime, page_align=page_align)
        return
    doc = snapshot_to_dict(engine, matrix_rows=matrix_rows, prime=prime)
    Path(path).write_text(json.dumps(doc, sort_keys=True))


def read_snapshot(path: Union[str, Path]) -> Dict:
    """Read a snapshot document (no engine construction).

    Binary (v2) files are normalised to the version-1 document shape —
    see :func:`_packed_to_doc` — so callers always receive one shape.
    """
    if is_binary_snapshot(path):
        header, arrays, _ = _read_binary(path)
        return _packed_to_doc(header, arrays)
    doc = json.loads(Path(path).read_text())
    if not is_snapshot_document(doc):
        raise ValueError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    return doc


def load_snapshot(path: Union[str, Path],
                  mmap: bool = False,
                  matrix_spill_path: Optional[str] = None,
                  matrix_max_rows=_UNSET,
                  kernel: Optional[str] = None) -> IKRQEngine:
    """Load a snapshot file (either encoding) into a ready-to-serve
    engine without running any index build.

    Memory tiering knobs (all optional; defaults keep the historical
    behaviour):

    * ``mmap=True`` — back the typed-array buffers with a shared
      read-only mapping of the file instead of heap copies (aligned
      v2.1 binary files on little-endian hosts; anything else falls
      back to an eager load).  ``engine.mapped_bytes`` reports how
      many payload bytes are mapped (0 after a fallback); answers are
      bit-identical either way.
    * ``matrix_spill_path`` — give the KoE* door matrix a disk spill
      tier at this path (see :class:`~repro.space.rowcache.RowCacheFile`).
    * ``matrix_max_rows`` — override the snapshot's resident-row
      budget (``None`` lifts it) without re-baking the file.
    * ``kernel`` — compute-backend selection for the engine (``auto``
      / ``numpy`` / ``native`` / ``python``); ``None`` keeps the
      process default (see :mod:`repro.space.kernels`).
    """
    if is_binary_snapshot(path):
        header, arrays, mapped = _read_binary(path, use_mmap=mmap)
        return _engine_from_packed(header, arrays, mapped=mapped,
                                   matrix_spill_path=matrix_spill_path,
                                   matrix_max_rows=matrix_max_rows,
                                   kernel=kernel)
    return engine_from_snapshot(read_snapshot(path),
                                matrix_spill_path=matrix_spill_path,
                                matrix_max_rows=matrix_max_rows,
                                kernel=kernel)


def warm_mapped(engine: IKRQEngine) -> int:
    """Prefetch an ``mmap``-backed engine's snapshot pages.

    The post-hot-swap warm pass: advise the kernel the mapping will be
    needed (``MADV_WILLNEED``) and touch it sequentially at page
    stride, so first-touch page-in cost lands here — right after a
    load or generation swap — instead of on the first requests.  A
    no-op (returns 0) for heap-backed engines; otherwise returns the
    number of bytes touched.
    """
    mapping = engine._snapshot_mmap
    if mapping is None:
        return 0
    import mmap as _mmap
    try:  # pragma: no cover - madvise may be absent on exotic hosts
        mapping.madvise(_mmap.MADV_WILLNEED)
    except (AttributeError, OSError, ValueError):
        pass
    size = len(mapping)
    for offset in range(0, size, 4096):
        mapping[offset]
    if size:
        mapping[size - 1]
    return size

"""Deterministic fault injection for the shard fleet.

Chaos testing a multi-process pool with ``kill -9`` from the outside
is inherently racy: the interesting failure windows (a worker dying
*between* dequeuing a request and replying, or *after* replying but
before the next request) are microseconds wide.  A :class:`FaultPlan`
moves the trigger inside the worker, where the window is exact: the
plan rides into :func:`~repro.serve.pool._shard_worker` through the
pool's ``service_options`` and each worker evaluates it with a
:class:`FaultInjector` at three deterministic points — process start,
every ``load`` message, every ``search`` message.

Supported actions:

* ``crash`` / ``crash_before_reply`` — ``os._exit`` before the
  response is enqueued: the caller sees the crash as a dead shard.
* ``crash_after_reply`` — the response *is* delivered, then the
  worker dies: the caller succeeds, the supervisor still has a corpse
  to replace (exercises restart without a failed request).
* ``stall`` — sleep for ``stall_s`` without replying: exercises the
  heartbeat-timeout path (a hung worker is indistinguishable from a
  live slow one except through missed heartbeats).
* ``reject_load`` — raise from the snapshot load: a *deterministic*
  load failure (as opposed to a crash), so ingest's all-or-nothing
  contract can be tested separately from its crash tolerance.

Rules select their firing point by ``op`` (``"start"``, ``"load"``,
``"search"``), ``shard``, and either a 0-based per-op ``index`` or
``every=True``.  ``from_boot`` / ``to_boot`` gate a rule on the
worker's boot counter (0 = initial start, 1 = first restart, …):
``from_boot=1`` with ``every`` makes the initial boot succeed and
every replacement die — the crash-loop shape that drives a shard into
the supervisor's restart budget and quarantine — while ``to_boot=0``
scripts a one-incarnation fault whose replacement is clean (a load
crash that must not re-fire during the replacement's warm-restart
reloads, say).

The plan is plain data (``to_wire`` / ``from_wire``) so it crosses
the process boundary like every other pool option, and the injector
is deliberately dumb — no clocks, no randomness — so a chaos run
replays identically.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

#: Exit code of an injected crash — distinguishable from a real
#: segfault (negative signal) or a clean return (0) in test asserts.
FAULT_EXIT_CODE = 86

_ACTIONS = ("crash", "crash_before_reply", "crash_after_reply",
            "stall", "reject_load")
_OPS = ("start", "load", "search")


class FaultRule:
    """One scripted fault: *where* (op/shard/index/boot) and *what*."""

    __slots__ = ("op", "shard", "action", "index", "every", "from_boot",
                 "to_boot", "stall_s")

    def __init__(self, op: str, shard: int, action: str,
                 index: Optional[int] = 0, every: bool = False,
                 from_boot: int = 0, to_boot: Optional[int] = None,
                 stall_s: float = 3600.0) -> None:
        if op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {op!r}")
        if action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {action!r}")
        self.op = op
        self.shard = int(shard)
        self.action = action
        self.index = None if every else int(index or 0)
        self.every = bool(every)
        self.from_boot = int(from_boot)
        self.to_boot = None if to_boot is None else int(to_boot)
        self.stall_s = float(stall_s)

    def matches_boot(self, boot: int) -> bool:
        return (boot >= self.from_boot
                and (self.to_boot is None or boot <= self.to_boot))

    def to_wire(self) -> Dict:
        return {"op": self.op, "shard": self.shard, "action": self.action,
                "index": self.index, "every": self.every,
                "from_boot": self.from_boot, "to_boot": self.to_boot,
                "stall_s": self.stall_s}

    @classmethod
    def from_wire(cls, doc: Dict) -> "FaultRule":
        return cls(doc["op"], doc["shard"], doc["action"],
                   index=doc.get("index"), every=bool(doc.get("every")),
                   from_boot=doc.get("from_boot", 0),
                   to_boot=doc.get("to_boot"),
                   stall_s=doc.get("stall_s", 3600.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "every" if self.every else f"#{self.index}"
        return (f"FaultRule({self.action} on {self.op} {where} of shard "
                f"{self.shard}, from_boot={self.from_boot})")


class FaultPlan:
    """A scripted set of :class:`FaultRule`\\ s with builder helpers."""

    def __init__(self, rules: Optional[Sequence[FaultRule]] = None) -> None:
        self.rules: List[FaultRule] = list(rules or ())

    # -------------------------------------------------- builders
    def crash_before_reply(self, shard: int, op: str = "search",
                           index: int = 0, every: bool = False,
                           from_boot: int = 0,
                           to_boot: Optional[int] = None) -> "FaultPlan":
        """Die after dequeuing the request, before any reply."""
        self.rules.append(FaultRule(op, shard, "crash_before_reply",
                                    index=index, every=every,
                                    from_boot=from_boot, to_boot=to_boot))
        return self

    def crash_after_reply(self, shard: int, index: int = 0,
                          from_boot: int = 0) -> "FaultPlan":
        """Reply normally, then die — the caller never notices."""
        self.rules.append(FaultRule("search", shard, "crash_after_reply",
                                    index=index, from_boot=from_boot))
        return self

    def stall(self, shard: int, index: int = 0, seconds: float = 3600.0,
              from_boot: int = 0,
              to_boot: Optional[int] = None) -> "FaultPlan":
        """Hang without replying (heartbeat-timeout fodder)."""
        self.rules.append(FaultRule("search", shard, "stall", index=index,
                                    from_boot=from_boot, to_boot=to_boot,
                                    stall_s=seconds))
        return self

    def reject_load(self, shard: int, index: int = 0, every: bool = False,
                    from_boot: int = 0,
                    to_boot: Optional[int] = None) -> "FaultPlan":
        """Raise from the next matching snapshot load."""
        self.rules.append(FaultRule("load", shard, "reject_load",
                                    index=index, every=every,
                                    from_boot=from_boot, to_boot=to_boot))
        return self

    def crash_on_start(self, shard: int,
                       from_boot: int = 1) -> "FaultPlan":
        """Die before loading anything — with the default
        ``from_boot=1`` the initial boot succeeds and every *restart*
        crashes, the crash-loop shape the quarantine tests need."""
        self.rules.append(FaultRule("start", shard, "crash", every=True,
                                    from_boot=from_boot))
        return self

    # -------------------------------------------------- wire
    def to_wire(self) -> List[Dict]:
        return [rule.to_wire() for rule in self.rules]

    @classmethod
    def from_wire(cls, docs: Optional[Sequence[Dict]]) -> "FaultPlan":
        return cls([FaultRule.from_wire(doc) for doc in docs or ()])

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.rules!r})"


class FaultInjector:
    """The worker-side evaluator of one shard's slice of a plan.

    ``fire(op)`` advances the per-op counter and returns the first
    matching rule (or ``None``); crash/stall side effects are the
    caller's job *except* for the common inline helpers below, which
    keep the worker's call sites one line each.
    """

    def __init__(self, rules: Optional[Sequence[Dict]], shard: int,
                 boot: int) -> None:
        plan = FaultPlan.from_wire(rules)
        self._rules = [rule for rule in plan.rules
                       if rule.shard == shard and rule.matches_boot(boot)]
        self._counts: Dict[str, int] = {}

    def fire(self, op: str) -> Optional[FaultRule]:
        index = self._counts.get(op, 0)
        self._counts[op] = index + 1
        for rule in self._rules:
            if rule.op != op:
                continue
            if rule.every or rule.index == index:
                return rule
        return None

    # -------------------------------------------------- inline helpers
    @staticmethod
    def crash() -> None:
        """Die the way a segfault/OOM kill dies: no cleanup, no
        queue flushing, no atexit — ``os._exit``."""
        os._exit(FAULT_EXIT_CODE)

    @staticmethod
    def apply(rule: Optional[FaultRule]) -> Optional[FaultRule]:
        """Apply a *pre-reply* rule: crash or stall inline, pass
        ``crash_after_reply`` / ``reject_load`` back to the caller."""
        if rule is None:
            return None
        if rule.action in ("crash", "crash_before_reply"):
            FaultInjector.crash()
        if rule.action == "stall":
            time.sleep(rule.stall_s)
            return None
        return rule

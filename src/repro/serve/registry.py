"""Tenant-keyed versioned snapshot generations and the swap lifecycle.

One server fleet hosts many venues (malls, airports, hospitals); the
:class:`SnapshotRegistry` is the control-plane record of *which
snapshot generation answers queries for which venue*.  Every venue
owns a monotonically numbered sequence of generations, each pointing
at one snapshot file, moving through a fixed lifecycle::

    loading -> active -> draining -> retired -> deleted
        \\-> failed (load error; never activated) -> deleted

``deleted`` is the garbage-collected terminal state: the generation's
record stays (numbers are never reused; logs and metrics remain
unambiguous) but its snapshot file is eligible for removal from disk.
:meth:`collect` implements the ``keep_last=N`` policy — only
``retired``/``failed`` generations beyond the newest *N* retired ones
are handed out, so the active and draining generations (and a rollback
window) are structurally exempt.

Exactly one generation per venue is ``active`` at a time.  The flip
from one active generation to the next is **atomic** under the
registry lock: :meth:`acquire` (called per request by the dispatcher)
picks the active generation and increments its in-flight count in the
same critical section, so a request observes either the old or the new
generation, never a blend — and after :meth:`activate` returns, no new
request can land on the old one.

The old generation then *drains*: :meth:`drain` blocks until every
request that acquired it has released, which is the barrier the
hot-swap needs before evicting the old engines from the shard
processes.  In-flight queries finish on the generation they started
on; answers stay byte-identical throughout the swap.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

#: The venue id a single-tenant pool serves under.
DEFAULT_VENUE = "default"

#: Generation lifecycle states.
STATES = ("loading", "active", "draining", "retired", "failed", "deleted")

#: States whose snapshot file is still needed on disk.
LIVE_STATES = ("loading", "active", "draining", "retired", "failed")


class Generation:
    """One loaded (or loading) snapshot generation of a venue.

    Mutable state (``state``, ``in_flight``, timestamps) is guarded by
    the owning registry's lock; treat instances as read-only outside
    the registry.
    """

    __slots__ = ("venue", "generation", "path", "state", "in_flight",
                 "created_unix", "activated_unix", "retired_unix",
                 "deleted_unix", "load_seconds")

    def __init__(self, venue: str, generation: int, path: str) -> None:
        self.venue = venue
        self.generation = generation
        self.path = path
        self.state = "loading"
        self.in_flight = 0
        self.created_unix = time.time()
        self.activated_unix: Optional[float] = None
        self.retired_unix: Optional[float] = None
        self.deleted_unix: Optional[float] = None
        self.load_seconds: Optional[float] = None

    def as_dict(self) -> Dict:
        """The ``/venues`` wire document of this generation."""
        doc: Dict = {
            "generation": self.generation,
            "path": self.path,
            "state": self.state,
            "in_flight": self.in_flight,
            "created_unix": round(self.created_unix, 3),
        }
        if self.activated_unix is not None:
            doc["activated_unix"] = round(self.activated_unix, 3)
        if self.retired_unix is not None:
            doc["retired_unix"] = round(self.retired_unix, 3)
        if self.deleted_unix is not None:
            doc["deleted_unix"] = round(self.deleted_unix, 3)
        if self.load_seconds is not None:
            doc["load_seconds"] = round(self.load_seconds, 6)
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Generation({self.venue!r}#{self.generation} "
                f"{self.state}, in_flight={self.in_flight})")


class SnapshotRegistry:
    """Versioned snapshot generations per venue, with atomic flips.

    Thread-safe; every mutation and every ``acquire``/``release`` pair
    runs under one condition variable, which also backs the drain
    barrier.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: venue -> generation number -> Generation, insertion-ordered.
        self._generations: Dict[str, Dict[int, Generation]] = {}
        #: venue -> active generation number.
        self._active: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Registration and activation
    # ------------------------------------------------------------------
    def add(self, venue: str, path: str) -> Generation:
        """Register the next generation of ``venue`` (state ``loading``).

        The generation number is one above the venue's highest ever —
        numbers are never reused, so log lines and metrics stay
        unambiguous across repeated ingests.
        """
        if not venue or not isinstance(venue, str):
            raise ValueError("venue id must be a non-empty string")
        with self._cond:
            gens = self._generations.setdefault(venue, {})
            number = max(gens) + 1 if gens else 1
            gen = Generation(venue, number, str(path))
            gens[number] = gen
            return gen

    def activate(self, venue: str, generation: int) -> Optional[Generation]:
        """Atomically make ``generation`` the venue's active one.

        Returns the previously active generation (now ``draining``), or
        ``None`` when the venue had no active generation yet.  After
        this returns, every subsequent :meth:`acquire` lands on the new
        generation.
        """
        with self._cond:
            gen = self._generations[venue][generation]
            if gen.state == "failed":
                raise ValueError(
                    f"cannot activate failed generation "
                    f"{venue}#{generation}")
            previous = None
            active_number = self._active.get(venue)
            if active_number is not None and active_number != generation:
                previous = self._generations[venue][active_number]
                previous.state = "draining"
            gen.state = "active"
            gen.activated_unix = time.time()
            self._active[venue] = generation
            self._cond.notify_all()
            return previous

    def fail(self, venue: str, generation: int) -> None:
        """Mark a generation that never loaded everywhere as failed."""
        with self._cond:
            gen = self._generations[venue][generation]
            gen.state = "failed"

    def retire(self, gen: Generation) -> None:
        """Mark a drained, evicted generation as retired."""
        with self._cond:
            gen.state = "retired"
            gen.retired_unix = time.time()

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def collect(self, venue: str, keep_last: int) -> List[Generation]:
        """Mark GC-eligible generations of ``venue`` as ``deleted``.

        The policy keeps the newest ``keep_last`` **retired**
        generations as a rollback window and hands every older
        ``retired``/``failed`` generation over for deletion, in one
        atomic sweep under the registry lock.  Structural safety, not
        caller discipline, protects live traffic:

        * ``loading``/``active``/``draining`` generations are never
          candidates — the active generation cannot be collected, and
          a draining one is only retired after its drain barrier;
        * a candidate with a non-zero in-flight count (a drain that
          timed out) is skipped this round and reconsidered on the
          next ingest.

        Returns the newly deleted generations; the caller owns the
        actual file removal (see
        :meth:`~repro.serve.pool.ShardDispatcher.ingest`), because
        only it can know whether another venue still references the
        same snapshot path.
        """
        if keep_last < 0:
            raise ValueError("keep_last must be non-negative")
        with self._cond:
            gens = self._generations.get(venue, {})
            retired = [n for n in sorted(gens)
                       if gens[n].state == "retired"]
            doomed = set(retired[:max(0, len(retired) - keep_last)])
            doomed.update(n for n in gens
                          if gens[n].state == "failed")
            deleted: List[Generation] = []
            for number in sorted(doomed):
                gen = gens[number]
                if gen.in_flight > 0:
                    continue
                gen.state = "deleted"
                gen.deleted_unix = time.time()
                deleted.append(gen)
            return deleted

    def restore_retired(self, gen: Generation) -> None:
        """Put a ``deleted`` generation back to ``retired``.

        The GC caller invokes this when the actual file removal fails
        transiently (EBUSY, EACCES, an NFS hiccup): leaving the record
        in the terminal ``deleted`` state would stop :meth:`collect`
        from ever re-offering the generation, silently re-creating the
        disk leak the GC exists to fix.  Restored generations are
        retried on the next sweep.
        """
        with self._cond:
            if gen.state == "deleted":
                gen.state = "retired"
                gen.deleted_unix = None

    def path_in_use(self, path: str) -> bool:
        """Whether any non-deleted generation of any venue still points
        at ``path`` — the same snapshot file may back several venues
        (or several generations), and its last referent must win."""
        path = str(path)
        with self._cond:
            return any(gen.path == path and gen.state in LIVE_STATES
                       for gens in self._generations.values()
                       for gen in gens.values())

    # ------------------------------------------------------------------
    # Request-path accounting (the drain barrier's two halves)
    # ------------------------------------------------------------------
    def acquire(self, venue: str) -> Generation:
        """The venue's active generation, with its in-flight count
        incremented — one atomic step, so a concurrent flip cannot slip
        between the read and the increment.

        Raises :class:`KeyError` for a venue with no active generation.
        """
        with self._cond:
            number = self._active.get(venue)
            if number is None:
                raise KeyError(venue)
            gen = self._generations[venue][number]
            gen.in_flight += 1
            return gen

    def release(self, gen: Generation) -> None:
        """Balance one :meth:`acquire`; wakes any drain waiter."""
        with self._cond:
            gen.in_flight -= 1
            if gen.in_flight <= 0:
                self._cond.notify_all()

    def drain(self, gen: Generation, timeout: float = 60.0) -> bool:
        """Block until every in-flight request on ``gen`` has released.

        Returns ``False`` on timeout (the caller may still evict — a
        straggler would then answer ``unknown_venue`` rather than serve
        a mixed generation, preserving atomicity over availability).
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while gen.in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def venues(self) -> List[str]:
        """Venue ids with at least one generation, sorted."""
        with self._cond:
            return sorted(self._generations)

    def has_venue(self, venue: str) -> bool:
        with self._cond:
            return venue in self._active

    def active_generation(self, venue: str) -> Optional[int]:
        with self._cond:
            return self._active.get(venue)

    def active(self, venue: str) -> Optional[Generation]:
        with self._cond:
            number = self._active.get(venue)
            if number is None:
                return None
            return self._generations[venue][number]

    def describe(self) -> List[Dict]:
        """The ``/venues`` payload: per venue, every known generation."""
        with self._cond:
            out = []
            for venue in sorted(self._generations):
                gens = self._generations[venue]
                out.append({
                    "venue": venue,
                    "active_generation": self._active.get(venue),
                    "generations": [gens[n].as_dict() for n in sorted(gens)],
                })
            return out

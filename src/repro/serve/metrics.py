"""Counters, gauges and latency histograms for the serving layer.

A deliberately small, stdlib-only metrics registry rendering the
Prometheus text exposition format.  The dispatcher records
request/shed/ingest/latency metrics directly, labelled by **venue**
(the tenant id) so per-tenant traffic, shedding and hot-swap latency
read off one scrape; per-shard ``QueryService`` counters arrive as
atomic snapshots over the control channel and are published as gauges
labelled by shard — and additionally by ``venue`` and snapshot
``generation`` for the per-tenant breakdown.  See
``docs/serving.md`` for the full series reference.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Tuple

#: Default latency buckets (seconds): sub-millisecond indoor queries
#: up to multi-second stragglers.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: A metric key: name plus sorted label pairs.
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object]) -> _Key:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec:
    backslash, double quote and line feed (in that order — escaping
    the backslash first keeps the other escapes unambiguous)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _format_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = list(labels)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Histogram:
    __slots__ = ("buckets", "counts", "count", "total")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        # Per-bucket (non-cumulative) counts; render() accumulates.
        for i, le in enumerate(self.buckets):
            if value <= le:
                self.counts[i] += 1
                break


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with Prometheus output.

    Counters only go up (:meth:`inc`), gauges are set to the latest
    value (:meth:`set_gauge` — how per-shard stats snapshots are
    published), histograms accumulate observations into cumulative
    buckets (:meth:`observe`).
    """

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self._buckets = tuple(buckets)
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, _Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(self._buckets)
            hist.observe(value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def drop_gauges(self, label: str) -> None:
        """Remove every gauge series carrying label key ``label``.

        Scrape-time refreshed gauge families whose label sets come and
        go (per-``generation`` shard gauges: a hot-swap retires the old
        generation) call this before re-publishing, so retired series
        stop rendering instead of freezing at their last value forever.
        """
        with self._lock:
            self._gauges = {
                key: value for key, value in self._gauges.items()
                if not any(k == label for k, _ in key[1])}

    def merge_gauges(self, values: Mapping[str, float], **labels) -> None:
        """Publish a mapping of values as like-named gauges at once."""
        for name, value in values.items():
            self.set_gauge(name, float(value), **labels)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of every metric."""
        lines: List[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            # Copy each histogram's mutable state while still holding
            # the lock — a concurrent observe() must not yield a scrape
            # whose bucket counts disagree with _count/_sum.
            histograms = [
                (key, (hist.buckets, list(hist.counts),
                       hist.count, hist.total))
                for key, hist in sorted(self._histograms.items())]
        seen_types: set = set()
        for (name, labels), value in counters:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_format_labels(labels)} "
                         f"{_format_value(value)}")
        for (name, labels), value in gauges:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_format_labels(labels)} "
                         f"{_format_value(value)}")
        for (name, labels), (buckets, counts, count, total) in histograms:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for le, bucket_count in zip(buckets, counts):
                cumulative += bucket_count
                bucket_labels = labels + (("le", repr(le)),)
                lines.append(f"{name}_bucket{_format_labels(bucket_labels)} "
                             f"{cumulative}")
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{_format_labels(inf_labels)} "
                         f"{count}")
            lines.append(f"{name}_sum{_format_labels(labels)} "
                         f"{_format_value(total)}")
            lines.append(f"{name}_count{_format_labels(labels)} "
                         f"{count}")
        return "\n".join(lines) + "\n"

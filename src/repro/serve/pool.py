"""Multi-venue shard-process pool, tenant dispatcher and admission.

Each shard is a worker *process* (beating the GIL on the CPU-bound
search hot path) that loads index snapshots for **every hosted venue**
and serves requests over a multiprocessing queue, one
:class:`~repro.core.engine.QueryService` per loaded ``(venue,
generation)``.  The dispatcher routes every request to the shard owned
by its ``(venue, ps, pt)`` hash, so the per-endpoint attachment maps,
keyword conversions and answer LRUs of one venue's endpoint always
land on the same warm shard.

Venues are dynamic: :meth:`ShardPool.load` broadcasts a new snapshot
generation into every shard, :meth:`ShardPool.evict` drops one, and
:meth:`ShardDispatcher.ingest` composes the two with the
:class:`~repro.serve.registry.SnapshotRegistry` into a zero-downtime
hot-swap — load everywhere, atomically flip the active generation,
drain in-flight requests off the old generation, evict it.  A request
resolves its generation exactly once, at admission, so every answer
comes from exactly one generation and stays byte-identical to a
sequential ``engine.search`` on that snapshot.

The pool is *supervised*: a watcher thread pairs each worker's process
sentinel with periodic heartbeat pings and declares a shard dead the
moment it exits or stops answering.  Death fails every pending RPC on
that shard immediately with ``{"status": "shard_down"}`` (instead of
letting callers run out the full RPC timeout), and the supervisor
respawns the worker with exponential backoff under a restart budget —
a crash-looping shard is *quarantined*, not respawned forever.  A
replacement worker warm-restarts: it reloads every ``(venue,
generation)`` the fleet is currently serving (snapshot cold-start is
milliseconds) and rejoins the affinity ring only after reporting
ready.  Searches are pure, so the dispatcher retries a ``shard_down``
/ ``timeout`` answer on a live sibling shard — the failover answer is
byte-identical by construction.

Admission control is explicit and tenant-aware: at most
``max_pending`` requests may be in flight across the pool, and each
venue may carry a quota capping *its* in-flight share — anything
beyond either bound is *shed* immediately with an
``{"status": "overloaded"}`` answer instead of queueing into a latency
collapse, and one noisy venue cannot starve the rest.  When shards are
down, both bounds tighten proportionally (degraded mode): a pool at
half strength admits half its normal depth rather than queueing into
dead capacity.  Requests may additionally carry a wall-clock deadline
— a shard that dequeues an already-expired request answers
``expired`` without evaluating it.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import threading
import time
import zlib
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from repro.dynamic.overlay import ClosureOverlay
from repro.dynamic.state import DeltaError, DynamicStore
from repro.obs.logging import log_event
from repro.obs.trace import (STAGE_ADMISSION, STAGE_DECODE, STAGE_DISPATCH,
                             STAGE_ENGINE, STAGE_GENERATION,
                             STAGE_QUEUE_WAIT, STAGES, EngineTrace,
                             TraceBuffer, TracePolicy, TraceRecorder,
                             iter_spans, shift_spans, span_doc)
from repro.serve.faults import FaultInjector, FaultPlan
from repro.serve.registry import (DEFAULT_VENUE, Generation,
                                  SnapshotRegistry)
from repro.serve.wire import (answer_to_wire, ping_to_wire, pong_to_wire,
                              query_from_wire, shard_down_doc,
                              trace_reply_to_wire, trace_request_to_wire)

#: Extra seconds the dispatcher waits past a request deadline before
#: giving up on the shard's answer.
_DEADLINE_GRACE = 2.0
#: Fallback RPC timeout when a request has no deadline: long enough
#: for any sane query, short enough to detect a dead shard.
_DEFAULT_RPC_TIMEOUT = 300.0

_log = logging.getLogger("repro.serve")


def process_rss_bytes() -> int:
    """Resident-set size of the calling process, in bytes (0 when the
    platform exposes neither ``/proc`` nor ``resource``).

    Without ``/proc`` the fallback is ``ru_maxrss`` — the lifetime
    *peak* RSS, the closest portable approximation — which Linux
    reports in kilobytes but macOS/BSD report in bytes.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE")
                        if hasattr(os, "sysconf") else 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-/proc platforms
        import resource
        import sys as _sys
        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(maxrss) * (1024 if _sys.platform.startswith("linux")
                              else 1)
    except Exception:  # pragma: no cover
        return 0


def shard_for(ps: Sequence[float],
              pt: Sequence[float],
              shards: int,
              venue: str = DEFAULT_VENUE) -> int:
    """The shard owning ``(venue, ps, pt)`` (wire triples).

    Stable across processes and runs (CRC32 of the canonical repr, not
    ``hash()``), so repeated traffic for one venue's endpoint pair
    always hits the same shard's warm caches; including the venue
    spreads the hot endpoints of co-hosted tenants over different
    shards.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    key = repr((venue, tuple(float(v) for v in ps),
                tuple(float(v) for v in pt)))
    return zlib.crc32(key.encode("utf-8")) % shards


def _drop_queue(queue) -> None:
    """Retire a multiprocessing queue nobody should touch again: close
    its pipe ends and (for feeder-thread queues) stop the feeder so the
    interpreter's atexit finalizer does not block joining a feeder that
    never saw a sentinel."""
    if queue is None:
        return
    try:
        queue.close()
    except Exception:  # pragma: no cover - already torn down
        pass
    cancel = getattr(queue, "cancel_join_thread", None)
    if cancel is not None:
        try:
            cancel()
        except Exception:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker(shard_id: int,
                  boot: int,
                  initial: Sequence[Tuple[str, int, str]],
                  requests,
                  responses,
                  options: Dict) -> None:
    """Entry point of one shard process.

    ``boot`` is the worker's incarnation counter (0 = initial start,
    1 = first supervised restart, …); it is stamped on every response
    so the router can tell a replacement's messages from a dead
    predecessor's stragglers.  ``initial`` lists every ``(venue,
    generation, snapshot_path)`` the worker must serve; it loads all
    of them before reporting ready (a warm restart simply passes the
    fleet's current assignment list here), then serves ``search`` /
    ``load`` / ``evict`` / ``stats`` / ``ping`` messages until
    shutdown.  The worker is single-threaded by design: a ``load``
    occupies the shard for the (millisecond) snapshot adoption and the
    engine map never races.

    Memory-tiering options: ``mmap`` backs every loaded engine's index
    buffers with a shared mapping of its snapshot file (all shards map
    the same generation file, so the fleet holds one page-cache copy);
    ``matrix_spill_dir`` gives each loaded engine a private row-cache
    file ``<venue>.g<generation>.shard<i>.rows`` under that directory
    (removed again when the generation is evicted, and truncated on
    open, so a restarted worker reusing the path starts clean);
    ``matrix_max_rows`` caps resident matrix rows per engine.

    ``options["fault_plan"]`` (wire-encoded :class:`FaultPlan` rules)
    arms deterministic fault injection at three points — process
    start, each load, each search — for the chaos harness and the
    crash-path tests; see :mod:`repro.serve.faults`.
    """
    from repro.core.engine import QueryService
    from repro.dynamic.state import apply_keyword_ops
    from repro.serve.snapshot import _UNSET, load_snapshot, warm_mapped
    from repro.space.graph import DoorGraph
    from repro.space.skeleton import SkeletonIndex

    services: Dict[Tuple[str, int], "QueryService"] = {}
    #: venue -> (keyword_version, cumulative keyword ops) — the last
    #: delta broadcast this worker saw, replayed onto every generation
    #: of the venue it loads later (an ingest after a delta).
    kw_ops: Dict[str, Tuple[int, List[Dict]]] = {}
    #: (venue, generation, keyword_version) -> sibling QueryService.
    kw_services: Dict[Tuple[str, int, int], "QueryService"] = {}
    use_mmap = bool(options.get("mmap"))
    spill_dir = options.get("matrix_spill_dir")
    matrix_max_rows = options.get("matrix_max_rows", _UNSET)
    kernel = options.get("kernel")
    injector = FaultInjector(options.get("fault_plan"), shard_id, boot)

    def _service_for(engine) -> "QueryService":
        return QueryService(
            engine, workers=1,
            point_map_capacity=options.get("point_map_capacity", 128),
            keyword_cache_capacity=options.get("keyword_cache_capacity", 512),
            answer_cache_capacity=options.get("answer_cache_capacity", 1024))

    def _build_kw_variant(venue: str, generation: int,
                          kw_version: int, ops: List[Dict]) -> None:
        """A sibling service whose engine replays the venue's keyword
        ops onto the pristine snapshot index.  Replay is always from
        the snapshot (ops are cumulative), so any two workers at the
        same keyword version hold identical indexes.  Only the two
        newest versions per ``(venue, generation)`` stay resident —
        the dispatcher never stamps requests with older ones."""
        base = services.get((venue, generation))
        key = (venue, generation, kw_version)
        if base is None or key in kw_services:
            return
        kindex = apply_keyword_ops(base.engine.kindex, ops)
        kw_services[key] = _service_for(base.engine.keyword_sibling(kindex))
        stale = sorted(v for (ven, gen, v) in kw_services
                       if ven == venue and gen == generation)[:-2]
        for v in stale:
            kw_services.pop((venue, generation, v), None)

    def _load(venue: str, generation: int, path: str) -> float:
        rule = FaultInjector.apply(injector.fire("load"))
        if rule is not None and rule.action == "reject_load":
            raise RuntimeError(
                f"fault injected: reject_load on shard {shard_id}")
        started = time.perf_counter()
        spill_path = None
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)
            spill_path = os.path.join(
                spill_dir, f"{venue}.g{generation}.shard{shard_id}.rows")
        engine = load_snapshot(path, mmap=use_mmap,
                               matrix_spill_path=spill_path,
                               matrix_max_rows=matrix_max_rows,
                               kernel=kernel)
        # Warm pass: sequential prefetch of a mapped snapshot moves
        # first-touch page-ins off the request path (covers both the
        # initial load and every hot-swap ingest, which land here).
        warm_mapped(engine)
        services[(venue, generation)] = _service_for(engine)
        recorded = kw_ops.get(venue)
        if recorded is not None:
            # A generation ingested after a keyword delta must serve
            # the venue's current keyword version from its first query.
            _build_kw_variant(venue, generation, recorded[0], recorded[1])
        return time.perf_counter() - started

    FaultInjector.apply(injector.fire("start"))
    try:
        for venue, generation, path in sorted(initial):
            _load(venue, int(generation), path)
    except Exception as exc:  # startup failure: report, don't hang
        responses.put({"kind": "ready", "shard": shard_id, "boot": boot,
                       "error": repr(exc)})
        return
    responses.put({"kind": "ready", "shard": shard_id, "boot": boot,
                   "venues": sorted({venue for venue, _, _ in initial}),
                   "csr_builds": DoorGraph.csr_builds,
                   "s2s_builds": SkeletonIndex.s2s_builds,
                   "kernels": sorted({service.kernel_backend
                                      for service in services.values()})})
    allow_sleep = bool(options.get("allow_sleep"))
    while True:
        msg = requests.get()
        if msg is None or msg.get("kind") == "shutdown":
            # Spill files are per-process scratch: remove them for the
            # still-loaded generations too, not only evicted ones.
            for service in services.values():
                matrix = service.engine._matrix
                if matrix is not None:
                    matrix.close_spill()
            break
        req_id = msg.get("id")
        base = {"kind": "response", "id": req_id, "shard": shard_id,
                "boot": boot}
        kind = msg.get("kind")
        if kind == "ping":
            responses.put(pong_to_wire(shard_id, boot))
            continue
        if kind == "stats":
            venue_stats = []
            aggregate: Dict[str, int] = {}
            for (venue, generation), service in sorted(services.items()):
                snap = service.stats_snapshot().as_dict()
                # "search" rides beside "stats" (whose field set is
                # pinned to ServiceStats.FIELDS): the SearchStats sums
                # of every evaluation this service actually ran.
                venue_stats.append({"venue": venue,
                                    "generation": generation,
                                    "kernel": service.kernel_backend,
                                    "stats": snap,
                                    "search": service.search_counters(),
                                    "memory":
                                        service.engine.memory_breakdown()})
                for name, value in snap.items():
                    aggregate[name] = aggregate.get(name, 0) + value
            responses.put({**base, "status": "ok", "stats": aggregate,
                           "venue_stats": venue_stats,
                           "rss_bytes": process_rss_bytes()})
            continue
        if kind == "load":
            try:
                seconds = _load(msg["venue"], msg["generation"], msg["path"])
                responses.put({**base, "status": "ok",
                               "venue": msg["venue"],
                               "generation": msg["generation"],
                               "load_seconds": seconds})
            except Exception as exc:
                responses.put({**base, "status": "error",
                               "error": repr(exc)})
            continue
        if kind == "evict":
            dropped = services.pop(
                (msg.get("venue"), msg.get("generation")), None)
            if dropped is not None:
                matrix = dropped.engine._matrix
                if matrix is not None:
                    # The spill file is per-(engine, shard) scratch —
                    # recomputable rows, deleted with the generation.
                    matrix.close_spill()
                for key in [k for k in kw_services
                            if k[:2] == (msg.get("venue"),
                                         msg.get("generation"))]:
                    kw_services.pop(key, None)
            responses.put({**base, "status": "ok",
                           "evicted": dropped is not None})
            continue
        if kind == "validate":
            # Id check for door-state deltas: the dispatcher holds no
            # venue model, so it asks one live shard whether the ids
            # exist before publishing a persistent overlay (a bogus id
            # published unchecked would fail every later search).
            venue = str(msg.get("venue"))
            engine = next((svc.engine
                           for (ven, gen), svc in sorted(services.items())
                           if ven == venue), None)
            if engine is None:
                responses.put({**base, "status": "unknown_venue",
                               "venue": venue})
                continue
            responses.put({
                **base, "status": "ok", "venue": venue,
                "unknown_doors": sorted(
                    d for d in (msg.get("doors") or [])
                    if d not in engine.space.doors),
                "unknown_partitions": sorted(
                    p for p in (msg.get("partitions") or [])
                    if p not in engine.space.partitions)})
            continue
        if kind == "delta":
            # Keyword-delta broadcast: record the venue's cumulative
            # ops and build the sibling engines for every loaded
            # generation *before* replying — the dispatcher publishes
            # the new keyword version only once the fleet has acked,
            # so no search can arrive stamped with a version this
            # worker does not hold.
            venue = str(msg.get("venue"))
            try:
                kw_version = int(msg.get("kw_version", 0))
                ops = [dict(op) for op in (msg.get("ops") or [])]
                kw_ops[venue] = (kw_version, ops)
                built = 0
                for ven, gen in sorted(services):
                    if ven == venue:
                        _build_kw_variant(ven, gen, kw_version, ops)
                        built += 1
                responses.put({**base, "status": "ok", "venue": venue,
                               "kw_version": kw_version,
                               "generations": built})
            except Exception as exc:
                responses.put({**base, "status": "error", "venue": venue,
                               "error": repr(exc)})
            continue
        # -------------------------------------------------- search
        rule = FaultInjector.apply(injector.fire("search"))
        crash_after = rule is not None and rule.action == "crash_after_reply"
        venue = msg.get("venue", DEFAULT_VENUE)
        generation = msg.get("generation")
        base["venue"] = venue
        base["generation"] = generation
        service = services.get((venue, generation))
        if service is None:
            responses.put({**base, "status": "unknown_venue"})
            continue
        kw_version = int(msg.get("kw_version") or 0)
        if kw_version:
            variant = kw_services.get((venue, generation, kw_version))
            if variant is None:
                recorded = kw_ops.get(venue)
                if recorded is not None and recorded[0] == kw_version:
                    _build_kw_variant(venue, generation, kw_version,
                                      recorded[1])
                    variant = kw_services.get(
                        (venue, generation, kw_version))
            if variant is None:
                # Should not happen (publish waits for the fleet ack;
                # warm restarts replay deltas before serving) — answer
                # explicitly rather than serving the wrong index.
                responses.put({**base, "status": "stale_delta",
                               "kw_version": kw_version})
                continue
            service = variant
        overlay_doc = msg.get("overlay")
        started = time.perf_counter()
        # Worker-side trace sub-tree.  Offsets are relative to the
        # request's *enqueue* instant (the dispatcher's dispatch-span
        # start): the queue wait opens the forest at 0, derived from
        # the payload's wall-clock stamp — the only clock comparable
        # across processes — and everything after runs on this
        # process's perf_counter.
        trace_req = msg.get("trace")
        trace_spans: Optional[List[Dict]] = None
        queue_wait_ms = 0.0
        if trace_req:
            enqueued_at = float(trace_req.get("enqueued_at", 0.0))
            if enqueued_at > 0.0:
                queue_wait_ms = max(0.0,
                                    (time.time() - enqueued_at) * 1000.0)
            trace_spans = [span_doc(STAGE_QUEUE_WAIT, 0.0, queue_wait_ms)]

        def _offset() -> float:
            return queue_wait_ms + (time.perf_counter() - started) * 1000.0

        def _put(doc: Dict) -> None:
            if trace_spans is not None:
                doc["trace"] = trace_reply_to_wire(queue_wait_ms,
                                                   trace_spans)
            responses.put(doc)

        try:
            deadline = msg.get("deadline")
            if deadline is not None and time.time() > deadline:
                _put({**base, "status": "expired"})
                continue
            if allow_sleep and msg.get("sleep"):
                # Test-only latency injection (saturation tests); the
                # HTTP surface never forwards a sleep field.
                time.sleep(float(msg["sleep"]))
            if trace_spans is not None:
                decode_start = _offset()
                query = query_from_wire(msg["query"])
                trace_spans.append(span_doc(
                    STAGE_DECODE, decode_start, _offset() - decode_start))
                engine_trace = EngineTrace(fine=bool(trace_req.get("fine")))
                engine_start = _offset()
                answer = service.search(query, msg.get("algorithm", "ToE"),
                                        overlay=overlay_doc,
                                        trace=engine_trace)
                engine_ms = _offset() - engine_start
                trace_spans.append(span_doc(
                    STAGE_ENGINE, engine_start, engine_ms,
                    children=engine_trace.stage_spans(engine_start,
                                                      engine_ms),
                    **engine_trace.annotations))
            else:
                query = query_from_wire(msg["query"])
                answer = service.search(query, msg.get("algorithm", "ToE"),
                                        overlay=overlay_doc)
            doc = answer_to_wire(answer)
            doc.update(base)
            doc["status"] = "ok"
            doc["elapsed"] = time.perf_counter() - started
            _put(doc)
        except Exception as exc:
            _put({**base, "status": "error", "error": repr(exc)})
        if crash_after:
            # The answer is already on the wire; die like an OOM kill
            # landing between two requests.
            FaultInjector.crash()


# ----------------------------------------------------------------------
# Pool
# ----------------------------------------------------------------------
class _PendingSlot:
    """One blocked RPC: the caller parks on ``event``; the router (or
    the supervisor failing a dead shard's slots) fills ``response`` and
    sets it.  ``shard`` is the *target* shard so supervision can sweep
    exactly the calls a death strands."""

    __slots__ = ("event", "response", "shard")

    def __init__(self, shard: int) -> None:
        self.event = threading.Event()
        self.response: Optional[Dict] = None
        self.shard = shard


class _ShardState:
    """Supervision state of one shard slot (the *slot* outlives any
    single worker process: ``proc``/``queue``/``boot`` are replaced on
    every respawn)."""

    __slots__ = ("index", "proc", "queue", "rq", "state", "boot",
                 "boot_error", "boot_started", "boot_assignments",
                 "last_seen", "last_ping", "restart_times", "backoff_exp",
                 "next_restart_at", "down_reason", "exitcode")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.queue = None
        self.rq = None
        #: starting -> up -> down -> (starting ...) | quarantined
        self.state = "down"
        self.boot = -1
        self.boot_error: Optional[str] = None
        self.boot_started = 0.0
        self.boot_assignments: set = set()
        self.last_seen = 0.0
        self.last_ping = 0.0
        #: Monotonic stamps of recent restarts (the budget window).
        self.restart_times: List[float] = []
        self.backoff_exp = 0
        self.next_restart_at = 0.0
        self.down_reason: Optional[str] = None
        self.exitcode: Optional[int] = None


def _normalise_venues(snapshot_path: Optional[str],
                      venues: Optional[Mapping[str, str]]) -> Dict[str, str]:
    initial: Dict[str, str] = {str(v): str(p)
                               for v, p in (venues or {}).items()}
    if snapshot_path is not None:
        initial.setdefault(DEFAULT_VENUE, str(snapshot_path))
    if not initial:
        raise ValueError(
            "a shard pool needs a snapshot_path or a venues mapping")
    return initial


class ShardPool:
    """A supervised pool of shard processes serving one or many venues.

    The pool owns the request queue of every shard, one response pipe
    *per worker incarnation* with a reader thread matching responses
    back to blocked callers by request id, and a supervisor thread
    watching worker liveness (process sentinel + heartbeats) that
    fails a dead shard's pending calls fast and respawns it with
    backoff under a restart budget.  Responses deliberately do NOT
    share one queue across workers: a shared queue's write lock is
    held by whichever worker is mid-``put``, so a SIGKILL landing in
    that window would wedge every *other* worker's replies forever —
    with per-worker pipes a kill can only ever corrupt the dead
    worker's own channel, which dies with it.  ``call`` is the low-level blocking RPC, ``broadcast``
    fans one control message over every *live* shard; routing policy,
    failover, tenancy and admission control live in
    :class:`ShardDispatcher`.

    ``ShardPool(path, shards=2)`` keeps the single-tenant shape — the
    snapshot is hosted as venue ``"default"`` at generation 1.
    Multi-tenant pools pass ``venues={"mall-a": path_a, ...}`` instead
    (or additionally).

    Supervision knobs: a worker missing heartbeats for
    ``heartbeat_timeout`` seconds (or whose process exits) is declared
    down; its replacement starts after an exponential backoff
    (``restart_backoff_s`` doubling up to ``restart_backoff_max_s``);
    more than ``restart_budget`` restarts within ``restart_window_s``
    quarantines the shard instead.  ``heartbeat_timeout=0`` disables
    the stall detector (the sentinel still catches exits).
    ``fault_plan`` threads a :class:`~repro.serve.faults.FaultPlan`
    into every worker for deterministic chaos testing.
    """

    def __init__(self,
                 snapshot_path: Optional[str] = None,
                 shards: int = 2,
                 service_options: Optional[Dict] = None,
                 allow_sleep: bool = False,
                 start_timeout: float = 120.0,
                 mp_context: Optional[str] = None,
                 venues: Optional[Mapping[str, str]] = None,
                 heartbeat_interval: float = 2.0,
                 heartbeat_timeout: float = 30.0,
                 restart_backoff_s: float = 0.5,
                 restart_backoff_max_s: float = 30.0,
                 restart_budget: int = 5,
                 restart_window_s: float = 60.0,
                 fault_plan: Optional[Union[FaultPlan,
                                            Sequence[Dict]]] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self._ctx = multiprocessing.get_context(mp_context)
        #: Initial venue -> snapshot path map (all at generation 1).
        self.initial_venues: Dict[str, str] = _normalise_venues(
            snapshot_path, venues)
        self.snapshot_path = (str(snapshot_path)
                              if snapshot_path is not None else None)
        self.shards = shards
        self.start_timeout = float(start_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.restart_backoff_s = float(restart_backoff_s)
        self.restart_backoff_max_s = float(restart_backoff_max_s)
        self.restart_budget = int(restart_budget)
        self.restart_window_s = float(restart_window_s)
        options = dict(service_options or {})
        options["allow_sleep"] = allow_sleep
        if fault_plan is not None:
            options["fault_plan"] = (fault_plan.to_wire()
                                     if isinstance(fault_plan, FaultPlan)
                                     else list(fault_plan))
        self._options = options
        #: What the fleet is serving right now: every ``(venue,
        #: generation)`` a live worker should hold, with its snapshot
        #: path — the warm-restart manifest a replacement reloads.
        self._assignments: Dict[Tuple[str, int], str] = {
            (venue, 1): path
            for venue, path in self.initial_venues.items()}
        #: venue -> (keyword_version, cumulative keyword ops): the
        #: delta manifest a replacement worker replays before serving
        #: (recorded before each delta broadcast, like assignments).
        self._dynamic_deltas: Dict[str, Tuple[int, List[Dict]]] = {}
        self._lock = threading.Lock()
        self._ready_cond = threading.Condition(self._lock)
        self._pending: Dict[int, _PendingSlot] = {}
        self._next_id = 0
        self._closed = False
        self._initial_done = False
        self._listeners: List[Callable[[str, Dict], None]] = []
        #: Supervision counters (also surfaced on /healthz + /metrics).
        self.restarts_total = 0
        self.late_responses = 0
        #: Per-shard build counters reported at startup; snapshot loads
        #: must show no increment over the pre-fork value.
        self.worker_builds: List[Dict] = []
        self._states = [_ShardState(i) for i in range(shards)]
        self._supervisor_wake = threading.Event()
        self._reader_threads: List[threading.Thread] = []
        # Each _spawn starts the worker's reader thread first, so every
        # startup message flows through the same dispatch path as
        # steady-state ones — a fast shard's first real response can't
        # be lost in the startup window.
        for st in self._states:
            self._spawn(st)
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True, name="ikrq-supervisor")
        self._supervisor.start()
        error: Optional[str] = None
        deadline = time.monotonic() + self.start_timeout
        with self._ready_cond:
            while not all(st.state == "up" for st in self._states):
                failed = next((st for st in self._states
                               if st.boot_error is not None), None)
                if failed is not None:
                    error = (f"shard {failed.index} failed to start: "
                             f"{failed.boot_error}")
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    error = "shard pool start timed out"
                    break
                self._ready_cond.wait(min(remaining, 0.2))
        if error is not None:
            self.close()
            raise RuntimeError(error)
        self._initial_done = True

    # ------------------------------------------------------------------
    # Listeners (the dispatcher maps these onto metrics counters)
    # ------------------------------------------------------------------
    def add_listener(self,
                     listener: Callable[[str, Dict], None]) -> None:
        """Subscribe to supervision events: ``worker_exit``,
        ``worker_restart``, ``worker_ready``, ``worker_quarantined``,
        ``rpc_late_response``.  Listeners run on pool threads and must
        not block; exceptions are swallowed."""
        self._listeners.append(listener)

    def _emit(self, event: str, fields: Dict) -> None:
        for listener in list(self._listeners):
            try:
                listener(event, fields)
            except Exception:  # pragma: no cover - listener bug
                pass

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, st: _ShardState) -> None:
        """Start (or restart) the worker for one shard slot, handing it
        the fleet's current assignment manifest."""
        with self._lock:
            st.boot += 1
            boot = st.boot
            assignments = dict(self._assignments)
            st.boot_assignments = set(assignments)
            st.state = "starting"
            st.boot_error = None
            st.down_reason = None
            now = time.monotonic()
            st.boot_started = now
            st.last_seen = now
            st.last_ping = now
            # Fresh queues per boot: the dead worker's request queue
            # may hold requests nobody will ever answer (replaying
            # them into the replacement would serve stale work first),
            # and its response pipe may be wedged mid-write by the
            # kill.  The old request queue's feeder thread must be
            # torn down here, or multiprocessing's atexit finalizer
            # joins it forever.
            _drop_queue(st.queue)
            _drop_queue(st.rq)
            st.queue = self._ctx.Queue()
            st.rq = self._ctx.SimpleQueue()
        reader = threading.Thread(
            target=self._read_responses, args=(st, boot, st.rq),
            daemon=True, name=f"ikrq-reader-{st.index}.{boot}")
        reader.start()
        self._reader_threads.append(reader)
        st.proc = self._ctx.Process(
            target=_shard_worker,
            args=(st.index, boot,
                  [(venue, gen, path)
                   for (venue, gen), path in sorted(assignments.items())],
                  st.queue, st.rq, self._options),
            daemon=True, name=f"ikrq-shard-{st.index}")
        st.proc.start()

    def _respawn(self, st: _ShardState) -> None:
        with self._lock:
            if self._closed or st.state != "down":
                return
        self.restarts_total += 1
        log_event(_log, logging.WARNING, "worker_restart",
                  shard=st.index, boot=st.boot + 1,
                  reason=st.down_reason)
        self._emit("worker_restart", {"shard": st.index,
                                      "boot": st.boot + 1,
                                      "reason": st.down_reason})
        self._spawn(st)

    def _declare_down(self, st: _ShardState, reason: str) -> None:
        """Mark one shard dead: kill any remains, fail its pending
        RPCs immediately, and either schedule a backoff restart or
        quarantine a crash-looper over its budget."""
        proc = st.proc
        failed: List[Tuple[int, _PendingSlot]] = []
        with self._lock:
            if self._closed or st.state in ("down", "quarantined"):
                return
            now = time.monotonic()
            st.exitcode = proc.exitcode if proc is not None else None
            st.down_reason = reason
            st.restart_times = [t for t in st.restart_times
                                if now - t < self.restart_window_s]
            quarantined = len(st.restart_times) >= self.restart_budget
            if quarantined:
                st.state = "quarantined"
            else:
                st.state = "down"
                st.restart_times.append(now)
                delay = min(self.restart_backoff_max_s,
                            self.restart_backoff_s * (2 ** st.backoff_exp))
                st.backoff_exp += 1
                st.next_restart_at = now + delay
            for rid, slot in list(self._pending.items()):
                if slot.shard == st.index:
                    failed.append((rid, slot))
                    del self._pending[rid]
        if proc is not None and proc.is_alive():
            # A stalled worker is alive but useless; reap it so the
            # replacement doesn't race it for the response queue.
            proc.kill()
        for rid, slot in failed:
            slot.response = shard_down_doc(st.index, reason, rid)
            slot.event.set()
        log_event(_log, logging.WARNING, "worker_exit",
                  shard=st.index, boot=st.boot, reason=reason,
                  exitcode=st.exitcode, pending_failed=len(failed),
                  quarantined=quarantined)
        self._emit("worker_exit", {"shard": st.index, "boot": st.boot,
                                   "reason": reason,
                                   "exitcode": st.exitcode,
                                   "pending_failed": len(failed)})
        if quarantined:
            log_event(_log, logging.ERROR, "worker_quarantined",
                      shard=st.index, boot=st.boot,
                      restarts_in_window=len(st.restart_times),
                      restart_budget=self.restart_budget,
                      window_s=self.restart_window_s)
            self._emit("worker_quarantined",
                       {"shard": st.index, "boot": st.boot,
                        "restarts_in_window": len(st.restart_times)})
        self._supervisor_wake.set()

    def _on_ready(self, msg: Dict) -> None:
        shard = msg.get("shard")
        if not isinstance(shard, int) or not 0 <= shard < self.shards:
            return
        st = self._states[shard]
        boot_error: Optional[str] = None
        catch_up = 0
        with self._lock:
            if msg.get("boot") != st.boot or st.state != "starting":
                return  # a dead predecessor's straggler
            if "error" in msg:
                if not self._initial_done:
                    st.boot_error = str(msg["error"])
                    st.state = "down"
                    st.down_reason = "boot_error"
                    self._ready_cond.notify_all()
                    return
                boot_error = str(msg["error"])
            else:
                # Catch-up: the fleet's assignments may have moved
                # while this worker booted (an ingest it missed).
                # Enqueue the delta *before* flipping "up" — the
                # worker drains its queue in FIFO order, so these
                # apply before the first routed search can arrive.
                current = dict(self._assignments)
                for (venue, gen), path in sorted(current.items()):
                    if (venue, gen) not in st.boot_assignments:
                        st.queue.put({"kind": "load", "venue": venue,
                                      "generation": gen, "path": path})
                        catch_up += 1
                for venue, gen in sorted(st.boot_assignments
                                         - set(current)):
                    st.queue.put({"kind": "evict", "venue": venue,
                                  "generation": gen})
                    catch_up += 1
                # Keyword-delta replay: a fresh worker booted from
                # pristine snapshots; hand it every venue's recorded
                # delta before it serves (same FIFO guarantee as the
                # catch-up loads).  Idempotent on workers that already
                # saw the broadcast.
                for venue, (kw_version, ops) in sorted(
                        self._dynamic_deltas.items()):
                    st.queue.put({"kind": "delta", "venue": venue,
                                  "kw_version": kw_version, "ops": ops})
                    catch_up += 1
                st.state = "up"
                st.backoff_exp = 0
                st.down_reason = None
                st.exitcode = None
                st.last_seen = time.monotonic()
                self.worker_builds.append(
                    {"shard": shard,
                     "csr_builds": msg.get("csr_builds"),
                     "s2s_builds": msg.get("s2s_builds")})
                self._ready_cond.notify_all()
        if boot_error is not None:
            self._declare_down(st, f"boot_error: {boot_error}")
            return
        if st.boot > 0:
            log_event(_log, logging.INFO, "worker_ready",
                      shard=shard, boot=st.boot,
                      venues=msg.get("venues"), catch_up=catch_up)
        self._emit("worker_ready", {"shard": shard, "boot": st.boot,
                                    "catch_up": catch_up})

    def _supervise(self) -> None:
        """Sentinel + heartbeat watcher; also the restart scheduler."""
        tick = max(0.01, min(0.25, self.heartbeat_interval / 4.0))
        while not self._closed:
            self._supervisor_wake.wait(tick)
            self._supervisor_wake.clear()
            if self._closed:
                break
            now = time.monotonic()
            dead: List[Tuple[_ShardState, str]] = []
            restart: List[_ShardState] = []
            ping: List[_ShardState] = []
            with self._lock:
                initial_done = self._initial_done
                for st in self._states:
                    proc = st.proc
                    if st.state == "up":
                        if proc is None or not proc.is_alive():
                            dead.append((st, "exit"))
                        elif (self.heartbeat_timeout > 0
                              and now - st.last_seen
                              > self.heartbeat_timeout):
                            dead.append((st, "heartbeat_timeout"))
                        elif now - st.last_ping >= self.heartbeat_interval:
                            st.last_ping = now
                            ping.append(st)
                    elif st.state == "starting":
                        if proc is None:
                            continue  # _spawn mid-flight
                        if not proc.is_alive():
                            if initial_done:
                                dead.append((st, "boot_exit"))
                            elif st.boot_error is None:
                                st.boot_error = (
                                    "worker exited during start "
                                    f"(exitcode {proc.exitcode})")
                                st.state = "down"
                                st.down_reason = "boot_exit"
                                self._ready_cond.notify_all()
                        elif (initial_done and now - st.boot_started
                              > self.start_timeout):
                            dead.append((st, "boot_timeout"))
                    elif (st.state == "down" and initial_done
                          and now >= st.next_restart_at):
                        restart.append(st)
            for st, reason in dead:
                self._declare_down(st, reason)
            for st in restart:
                self._respawn(st)
            for st in ping:
                try:
                    st.queue.put(ping_to_wire())
                except Exception:  # queue torn down mid-death
                    pass

    # ------------------------------------------------------------------
    # Response routing
    # ------------------------------------------------------------------
    def _read_responses(self, st: _ShardState, boot: int, rq) -> None:
        """Reader thread of one worker incarnation's response pipe.

        Exits when the pipe is torn down, when the pool closes, or —
        after the incarnation has been replaced — once the pipe runs
        dry (draining first, so a slow reply from the *current* boot is
        still counted as a late response rather than lost).
        """
        reader = rq._reader
        while True:
            try:
                if not reader.poll(0.2):
                    if self._closed or st.boot != boot:
                        return
                    continue
                msg = rq.get()
            except (EOFError, OSError, ValueError):
                return  # pipe closed under us (respawn or pool close)
            try:
                self._dispatch_response(msg)
            except Exception:  # pragma: no cover - reader must survive
                _log.exception("response reader failed on %r", msg)

    def _dispatch_response(self, msg: Dict) -> None:
        if not isinstance(msg, dict):
            return
        shard = msg.get("shard")
        if isinstance(shard, int) and 0 <= shard < self.shards:
            st = self._states[shard]
            # Any traffic from the *current* incarnation counts as a
            # heartbeat; a dead predecessor's stragglers must not keep
            # its replacement's slot looking alive.
            if msg.get("boot") == st.boot:
                st.last_seen = time.monotonic()
        kind = msg.get("kind")
        if kind == "ready":
            self._on_ready(msg)
            return
        if kind == "pong":
            return
        rid = msg.get("id")
        if rid is None:
            return  # fire-and-forget control reply (warm-restart catch-up)
        with self._lock:
            slot = self._pending.pop(rid, None)
        if slot is not None:
            slot.response = msg
            slot.event.set()
            return
        # Satellite: a response whose caller already gave up is the
        # earliest symptom of a stalling shard — count it and say so.
        self.late_responses += 1
        log_event(_log, logging.WARNING, "rpc_late_response",
                  shard=shard, request_id=rid,
                  status=msg.get("status"), venue=msg.get("venue"))
        self._emit("rpc_late_response", {"shard": shard,
                                         "request_id": rid,
                                         "status": msg.get("status")})

    def _register_slot(self, shard: int) -> Tuple[int, _PendingSlot]:
        slot = _PendingSlot(shard)
        with self._lock:
            self._next_id += 1
            req_id = self._next_id
            self._pending[req_id] = slot
        return req_id, slot

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def call(self,
             shard: int,
             payload: Dict,
             timeout: Optional[float] = None) -> Dict:
        """Blocking RPC to one shard; returns the response document.

        A dead or quarantined target answers ``{"status":
        "shard_down"}`` immediately; a timeout yields ``{"status":
        "timeout"}`` — the shard's late answer (if any) is counted by
        the router as a late response.
        """
        if self._closed:
            raise RuntimeError("shard pool is closed")
        st = self._states[shard]
        if st.state != "up":
            return shard_down_doc(shard, st.down_reason or st.state)
        req_id, slot = self._register_slot(shard)
        payload = dict(payload)
        payload["id"] = req_id
        try:
            st.queue.put(payload)
        except Exception:  # queue closed by a concurrent death
            with self._lock:
                self._pending.pop(req_id, None)
            return shard_down_doc(shard, "queue_closed", req_id)
        if st.state != "up" and not slot.event.is_set():
            # The shard died between the liveness check and the put;
            # the death sweep may have run before our slot existed.
            with self._lock:
                missed = self._pending.pop(req_id, None)
            if missed is not None:
                return shard_down_doc(shard, st.down_reason or "down",
                                      req_id)
        if not slot.event.wait(timeout if timeout is not None
                               else _DEFAULT_RPC_TIMEOUT):
            with self._lock:
                self._pending.pop(req_id, None)
            return {"status": "timeout", "id": req_id, "shard": shard}
        return slot.response or {"status": "error", "error": "empty response"}

    def broadcast(self,
                  payload: Dict,
                  timeout: Optional[float] = None) -> List[Dict]:
        """One control RPC to every *live* shard, dispatched before any
        waiting starts (the shards work concurrently); returns one
        response document per shard slot, in shard order — dead or
        quarantined slots answer ``{"status": "shard_down"}``
        synchronously."""
        if self._closed:
            raise RuntimeError("shard pool is closed")
        slots: List[Optional[Tuple[int, _PendingSlot]]] = []
        for shard in range(self.shards):
            st = self._states[shard]
            if st.state != "up":
                slots.append(None)
                continue
            req_id, slot = self._register_slot(shard)
            doc = dict(payload)
            doc["id"] = req_id
            try:
                st.queue.put(doc)
            except Exception:
                with self._lock:
                    self._pending.pop(req_id, None)
                slots.append(None)
                continue
            slots.append((req_id, slot))
        wait_until = time.monotonic() + (timeout if timeout is not None
                                         else _DEFAULT_RPC_TIMEOUT)
        responses: List[Dict] = []
        for shard, entry in enumerate(slots):
            if entry is None:
                responses.append(shard_down_doc(
                    shard, self._states[shard].down_reason
                    or self._states[shard].state))
                continue
            req_id, slot = entry
            remaining = max(0.0, wait_until - time.monotonic())
            if not slot.event.wait(remaining):
                with self._lock:
                    self._pending.pop(req_id, None)
                responses.append({"status": "timeout", "id": req_id,
                                  "shard": shard})
                continue
            responses.append(slot.response
                             or {"status": "error",
                                 "error": "empty response"})
        return responses

    # ------------------------------------------------------------------
    # Venue control plane (used by ShardDispatcher.ingest)
    # ------------------------------------------------------------------
    def load(self,
             venue: str,
             generation: int,
             path: Union[str, "object"],
             timeout: float = 120.0) -> List[Dict]:
        """Load snapshot ``path`` as ``venue``'s ``generation`` in every
        live shard; returns the per-shard load reports.

        The assignment is recorded *before* the broadcast: a worker
        that dies mid-load is replaced by one whose warm restart
        includes the new generation, so a crash inside an ingest can
        delay the flip but never wedge the venue between generations.
        """
        with self._lock:
            self._assignments[(str(venue), int(generation))] = str(path)
        return self.broadcast({"kind": "load", "venue": str(venue),
                               "generation": int(generation),
                               "path": str(path)}, timeout=timeout)

    def evict(self,
              venue: str,
              generation: int,
              timeout: float = 30.0) -> List[Dict]:
        """Drop ``(venue, generation)`` from every live shard (and from
        the warm-restart manifest, so replacements don't reload it)."""
        with self._lock:
            self._assignments.pop((str(venue), int(generation)), None)
        return self.broadcast({"kind": "evict", "venue": str(venue),
                               "generation": int(generation)},
                              timeout=timeout)

    def record_delta(self, venue: str, kw_version: int,
                     ops: Sequence[Dict]) -> None:
        """Record a venue's cumulative keyword delta in the
        warm-restart manifest (call *before* broadcasting it, so a
        worker dying mid-broadcast is replaced by one that replays)."""
        with self._lock:
            self._dynamic_deltas[str(venue)] = (int(kw_version),
                                                [dict(op) for op in ops])

    def stats(self, timeout: float = 30.0) -> List[Dict]:
        """One atomic stats snapshot per live shard (aggregate + per
        venue); dead slots report ``shard_down``."""
        return self.broadcast({"kind": "stats"}, timeout=timeout)

    def assignments(self) -> Dict[Tuple[str, int], str]:
        """The warm-restart manifest: every ``(venue, generation)`` a
        live worker should currently serve, with its snapshot path."""
        with self._lock:
            return dict(self._assignments)

    # ------------------------------------------------------------------
    # Liveness / the affinity ring
    # ------------------------------------------------------------------
    def shard_state(self, shard: int) -> str:
        return self._states[shard].state

    def live_shards(self) -> List[int]:
        return [st.index for st in self._states if st.state == "up"]

    def resolve_shard(self, shard: int) -> Optional[int]:
        """``shard`` itself when live, else the next live shard on the
        ring (``None`` when the whole fleet is down).  Every shard
        hosts every venue, so any live sibling serves byte-identical
        answers — only cache warmth is lost."""
        for step in range(self.shards):
            candidate = (shard + step) % self.shards
            if self._states[candidate].state == "up":
                return candidate
        return None

    def next_live_shard(self, after: int) -> Optional[int]:
        """The first live shard strictly after ``after`` on the ring —
        the failover target for a request that just failed there."""
        for step in range(1, self.shards):
            candidate = (after + step) % self.shards
            if self._states[candidate].state == "up":
                return candidate
        return None

    def shard_states(self) -> List[Dict]:
        """Deep per-shard health view (the ``/healthz`` payload)."""
        out: List[Dict] = []
        with self._lock:
            for st in self._states:
                proc = st.proc
                out.append({
                    "shard": st.index,
                    "state": st.state,
                    "boot": st.boot,
                    "restarts": max(0, st.boot),
                    "pid": proc.pid if proc is not None else None,
                    "alive": bool(proc is not None and proc.is_alive()),
                    "reason": st.down_reason,
                    "exitcode": st.exitcode,
                })
        return out

    def kill_shard(self, shard: int) -> bool:
        """SIGKILL one worker (the chaos harness's kill switch); the
        supervisor notices through the sentinel and takes over.
        Returns whether a live process was actually signalled."""
        proc = self._states[shard].proc
        killed = bool(proc is not None and proc.is_alive())
        if killed:
            proc.kill()
        self._supervisor_wake.set()
        return killed

    def wait_all_up(self, timeout: float = 30.0) -> bool:
        """Block until every shard slot is serving (or ``timeout``)."""
        deadline = time.monotonic() + timeout
        with self._ready_cond:
            while not all(st.state == "up" for st in self._states):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._ready_cond.wait(min(remaining, 0.1))
        return True

    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 10.0) -> None:
        """Shut every shard down and reap the processes.

        Teardown escalates: cooperative shutdown message, join with a
        deadline, ``terminate()`` stragglers, then ``kill()`` anything
        still stuck — ``close()`` can neither hang forever nor leak a
        worker process."""
        if self._closed:
            return
        self._closed = True
        self._supervisor_wake.set()
        supervisor = getattr(self, "_supervisor", None)
        if (supervisor is not None and supervisor.is_alive()
                and supervisor is not threading.current_thread()):
            supervisor.join(timeout=join_timeout)
        for st in self._states:
            if st.queue is None:
                continue
            try:
                st.queue.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + join_timeout
        for st in self._states:
            if st.proc is not None:
                st.proc.join(timeout=max(0.0,
                                         deadline - time.monotonic()))
        stuck = [st for st in self._states
                 if st.proc is not None and st.proc.is_alive()]
        if stuck:
            for st in stuck:
                st.proc.terminate()
            deadline = time.monotonic() + join_timeout
            for st in stuck:
                st.proc.join(timeout=max(0.0,
                                         deadline - time.monotonic()))
            for st in stuck:
                if st.proc.is_alive():
                    st.proc.kill()
                    st.proc.join(timeout=5.0)
                    log_event(_log, logging.WARNING,
                              "worker_killed_on_close", shard=st.index,
                              pid=st.proc.pid)
        # Tear the pipes down (this also snaps the reader threads out
        # of their polls) and retire every request queue's feeder
        # thread so interpreter exit never blocks in multiprocessing's
        # atexit finalizers.
        for st in self._states:
            _drop_queue(st.queue)
            _drop_queue(st.rq)
        deadline = time.monotonic() + 2.0
        for reader in self._reader_threads:
            if reader.is_alive():
                reader.join(timeout=max(0.0,
                                        deadline - time.monotonic()))

    @property
    def closed(self) -> bool:
        return self._closed

    def alive(self) -> bool:
        return (not self._closed
                and all(st.state == "up" for st in self._states))

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Admission control + dispatch
# ----------------------------------------------------------------------
class TenantQuota:
    """Per-venue admission quota.

    ``max_in_flight`` caps the venue's simultaneous in-flight requests
    (its share of the pool-wide queue depth); beyond it the venue's own
    traffic is shed while other tenants keep being admitted.
    """

    __slots__ = ("max_in_flight",)

    def __init__(self, max_in_flight: int) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TenantQuota(max_in_flight={self.max_in_flight})"


class AdmissionController:
    """Bounded in-flight admission: admit or shed, never queue blindly.

    Two bounds compose: the pool-wide ``max_pending`` (total queue
    depth) and an optional per-venue :class:`TenantQuota`.  A request
    is admitted only when both hold; shed accounting is kept per venue
    so the metrics show *who* is being noisy.

    ``capacity_fraction`` is the degraded-mode lever: with live/total
    shards passed in, both bounds scale proportionally (never below
    1), so a pool at half strength admits half its normal depth
    instead of queueing the full depth into dead capacity.
    """

    def __init__(self,
                 max_pending: int,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Mapping[str, TenantQuota]] = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = max_pending
        self.default_quota = default_quota
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.shed = 0
        self._venue_in_flight: Dict[str, int] = {}
        self._venue_admitted: Dict[str, int] = {}
        self._venue_shed: Dict[str, int] = {}

    def set_quota(self, venue: str, quota: Optional[TenantQuota]) -> None:
        """Install (or with ``None`` remove) a venue's quota."""
        with self._lock:
            if quota is None:
                self._quotas.pop(venue, None)
            else:
                self._quotas[venue] = quota

    def quota_for(self, venue: str) -> Optional[TenantQuota]:
        with self._lock:
            return self._quotas.get(venue, self.default_quota)

    def try_acquire(self,
                    venue: str = DEFAULT_VENUE,
                    capacity_fraction: float = 1.0) -> bool:
        with self._lock:
            fraction = min(1.0, max(0.0, float(capacity_fraction)))
            effective_max = max(1, math.ceil(self.max_pending * fraction))
            quota = self._quotas.get(venue, self.default_quota)
            venue_max = (max(1, math.ceil(quota.max_in_flight * fraction))
                         if quota is not None else None)
            venue_in_flight = self._venue_in_flight.get(venue, 0)
            if (self._in_flight >= effective_max
                    or (venue_max is not None
                        and venue_in_flight >= venue_max)):
                self.shed += 1
                self._venue_shed[venue] = self._venue_shed.get(venue, 0) + 1
                return False
            self._in_flight += 1
            self.admitted += 1
            self._venue_in_flight[venue] = venue_in_flight + 1
            self._venue_admitted[venue] = (
                self._venue_admitted.get(venue, 0) + 1)
            return True

    def release(self, venue: str = DEFAULT_VENUE) -> None:
        with self._lock:
            self._in_flight -= 1
            self._venue_in_flight[venue] = (
                self._venue_in_flight.get(venue, 1) - 1)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def venue_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-venue ``{in_flight, admitted, shed, max_in_flight}``."""
        with self._lock:
            venues = (set(self._venue_in_flight) | set(self._venue_shed)
                      | set(self._quotas))
            out: Dict[str, Dict[str, int]] = {}
            for venue in sorted(venues):
                quota = self._quotas.get(venue, self.default_quota)
                out[venue] = {
                    "in_flight": self._venue_in_flight.get(venue, 0),
                    "admitted": self._venue_admitted.get(venue, 0),
                    "shed": self._venue_shed.get(venue, 0),
                    "max_in_flight": (quota.max_in_flight
                                      if quota is not None else None),
                }
            return out


class ShardDispatcher:
    """Routes wire queries to shards; the tenant-aware front door.

    ``submit`` is thread-safe (the HTTP layer calls it from many
    handler threads) and always returns a response document — results,
    ``overloaded`` when admission sheds, ``unknown_venue`` for an
    unhosted tenant, ``expired``/``timeout`` when a deadline passes,
    ``shard_down`` when the fleet cannot serve at all, or
    ``error``/``bad_request``.  Every request resolves its venue's
    active snapshot generation exactly once, at admission, and the
    response document carries ``venue`` and ``generation`` back.

    Failover: searches are pure, so a request whose shard answers
    ``shard_down`` or times out is retried on the next live sibling
    (up to ``failover_retries`` times, within the original deadline);
    the sibling hosts the same engines, so the answer is byte-identical
    — only cache warmth differs.  A request whose *affinity* shard is
    already known-dead is rerouted before the first attempt.

    ``ingest`` is the zero-downtime hot-swap entry point (see
    :meth:`ingest`); it tolerates workers dying mid-ingest — the
    supervisor's warm restart reloads the new generation from the
    pool's assignment manifest.
    """

    def __init__(self,
                 pool: ShardPool,
                 max_pending: int = 64,
                 deadline_s: Optional[float] = None,
                 metrics=None,
                 registry: Optional[SnapshotRegistry] = None,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Mapping[str, TenantQuota]] = None,
                 gc_keep_last: Optional[int] = None,
                 trace_policy: Optional[TracePolicy] = None,
                 trace_buffer: Optional[TraceBuffer] = None,
                 failover_retries: int = 1) -> None:
        self.pool = pool
        self.admission = AdmissionController(
            max_pending, default_quota=default_quota, quotas=quotas)
        self.deadline_s = deadline_s
        self.metrics = metrics
        self.failover_retries = max(0, int(failover_retries))
        #: Total failover reroutes/retries (also a labelled counter on
        #: /metrics when a registry is attached).
        self.failovers = 0
        #: Trace retention policy and the ring the kept span trees land
        #: in (``GET /debug/traces``).  Coarse spans are recorded for
        #: *every* request — the policy only decides retention and
        #: which requests carry the fine engine-stage split.
        self.trace_policy = trace_policy or TracePolicy()
        self.trace_buffer = trace_buffer or TraceBuffer()
        if registry is None:
            registry = SnapshotRegistry()
            for venue, path in pool.initial_venues.items():
                gen = registry.add(venue, path)
                registry.activate(venue, gen.generation)
        self.registry = registry
        #: Generation GC policy: after each successful ingest, retired
        #: generations beyond the newest ``gc_keep_last`` are marked
        #: deleted and their snapshot files removed from disk (unless
        #: still referenced elsewhere).  ``None`` keeps every file
        #: forever — the historical behaviour, and the safe default
        #: when snapshot files are operator-managed.
        self.gc_keep_last = gc_keep_last
        self._ingest_lock = threading.Lock()
        #: Per-venue dynamic state (closures, schedules, keyword
        #: deltas), versioned and swapped atomically; see
        #: :mod:`repro.dynamic.state` and :meth:`delta`.
        self.dynamic = DynamicStore()
        self._delta_lock = threading.Lock()
        pool.add_listener(self._on_pool_event)

    # ------------------------------------------------------------------
    def _on_pool_event(self, event: str, fields: Dict) -> None:
        """Map the pool's supervision events onto metrics counters."""
        if self.metrics is None:
            return
        shard = fields.get("shard")
        if event == "worker_restart":
            self.metrics.inc("ikrq_worker_restarts_total", shard=shard)
        elif event == "worker_exit":
            self.metrics.inc("ikrq_worker_exits_total", shard=shard,
                             reason=str(fields.get("reason")))
        elif event == "worker_quarantined":
            self.metrics.inc("ikrq_worker_quarantined_total", shard=shard)
        elif event == "rpc_late_response":
            self.metrics.inc("ikrq_rpc_late_responses_total", shard=shard)

    def _venue_label(self, venue: str) -> str:
        """The metrics label for a venue — hosted ids only.

        Caller-supplied strings for venues we do not host must not
        become label values: each distinct value would mint a new
        counter series forever (unbounded registry growth and a
        Prometheus label-cardinality explosion from garbage traffic).
        """
        return venue if self.registry.has_venue(venue) else "_unhosted_"

    def _record(self, status: str, venue: str,
                elapsed: Optional[float] = None) -> None:
        if self.metrics is None:
            return
        self.metrics.inc("ikrq_requests_total", status=status,
                         venue=self._venue_label(venue))
        if elapsed is not None:
            self.metrics.observe("ikrq_request_latency_seconds", elapsed)

    def _count_failover(self, venue: str, from_shard: int,
                        to_shard: int, recorder: TraceRecorder,
                        kind: str) -> None:
        self.failovers += 1
        if self.metrics is not None:
            self.metrics.inc("ikrq_failovers_total",
                             venue=self._venue_label(venue), kind=kind)
        log_event(_log, logging.WARNING, "failover",
                  trace_id=recorder.trace_id, venue=venue,
                  from_shard=from_shard, to_shard=to_shard, kind=kind)

    def _finalise_trace(self,
                        recorder: TraceRecorder,
                        response: Dict,
                        venue: str,
                        sampled: bool,
                        forced: bool) -> Dict:
        """Close one request's trace: stamp the ``trace_id`` on the
        response, feed the stage histograms, retain the span tree when
        the policy says so, and emit the slow-query / error log line.

        Every dispatcher response passes through here — the coarse
        span tree exists for every request, retention is the only
        sampled decision."""
        status = str(response.get("status", "error"))
        policy = self.trace_policy
        doc = recorder.finish(status, venue=venue, sampled=sampled)
        duration_ms = doc["duration_ms"]
        doc["slow"] = policy.is_slow(duration_ms)
        doc["reason"] = policy.keep_reason(status, duration_ms, sampled,
                                           forced)
        response["trace_id"] = doc["trace_id"]
        label = self._venue_label(venue)
        if self.metrics is not None:
            for span in iter_spans(doc["spans"]):
                if span["name"] in STAGES:
                    self.metrics.observe(
                        "ikrq_stage_latency_seconds",
                        span["duration_ms"] / 1000.0,
                        stage=span["name"], venue=label)
        if doc["reason"] is not None:
            self.trace_buffer.add(doc)
        if doc["slow"] and status == "ok":
            log_event(_log, logging.WARNING, "slow_query",
                      trace_id=doc["trace_id"], venue=label,
                      status=status, duration_ms=duration_ms,
                      slow_ms=policy.slow_ms,
                      algorithm=doc.get("algorithm"),
                      shard=doc.get("shard"))
        elif status == "error":
            log_event(_log, logging.WARNING, "request_error",
                      trace_id=doc["trace_id"], venue=label,
                      duration_ms=duration_ms,
                      error=response.get("error"))
        return response

    def submit(self,
               query_doc: Dict,
               algorithm: str = "ToE",
               deadline_s: Optional[float] = None,
               sleep: Optional[float] = None,
               venue: Optional[str] = None,
               trace: bool = False,
               closures: Optional[Dict] = None,
               at: Optional[float] = None) -> Dict:
        """Evaluate one wire query through its venue's affinity shard
        (or, when that shard is down, a live sibling).

        ``closures`` is a per-query closure overlay in wire form
        (``{"closed_doors": [...], "sealed_partitions": [...]}``); it
        is merged with the venue's persistent overlay and — when
        ``at`` (a Unix timestamp) is supplied — with the doors whose
        schedules are closed at that instant.  The effective overlay
        and the venue's dynamic version are resolved exactly once, at
        admission, and shipped with the request: every answer reflects
        exactly one dynamic version, never a blend.

        ``trace=True`` forces retention of this request's span tree
        (and the fine engine-stage split) regardless of the sampling
        policy — the HTTP surface maps a ``"trace": true`` body field
        onto it.  Every response carries a ``trace_id``; whether the
        span tree behind it was retained in ``/debug/traces`` is the
        :class:`TracePolicy`'s call.
        """
        venue = DEFAULT_VENUE if venue is None else str(venue)
        forced = bool(trace)
        sampled = forced or self.trace_policy.sample()
        recorder = TraceRecorder()
        recorder.annotate(algorithm=algorithm)
        if (not isinstance(query_doc, dict)
                or "ps" not in query_doc or "pt" not in query_doc):
            self._record("bad_request", venue)
            return self._finalise_trace(
                recorder, {"status": "bad_request", "venue": venue,
                           "error": "query must carry ps and pt"},
                venue, sampled, forced)
        try:
            extra_overlay = ClosureOverlay.from_wire(closures)
            at = None if at is None else float(at)
        except (TypeError, ValueError) as exc:
            self._record("bad_request", venue)
            return self._finalise_trace(
                recorder, {"status": "bad_request", "venue": venue,
                           "error": str(exc)},
                venue, sampled, forced)
        # One atomic read of the venue's dynamic state: the effective
        # overlay, keyword version and dynamic version all come from
        # this single view reference.
        dyn = self.dynamic.view(venue)
        overlay = dyn.effective_overlay(at=at, extra=extra_overlay)
        if dyn.version:
            recorder.annotate(dynamic_version=dyn.version)
        with recorder.span(STAGE_ADMISSION) as admission_span:
            if not self.registry.has_venue(venue):
                admission_span["annotations"]["decision"] = "unknown_venue"
                self._record("unknown_venue", venue)
                return self._finalise_trace(
                    recorder,
                    {"status": "unknown_venue", "venue": venue,
                     "error": f"venue {venue!r} is not hosted here"},
                    venue, sampled, forced)
            live = len(self.pool.live_shards())
            if live == 0:
                admission_span["annotations"]["decision"] = "no_live_shards"
                self._record("shard_down", venue)
                return self._finalise_trace(
                    recorder,
                    {"status": "shard_down", "venue": venue,
                     "error": "no live shards"},
                    venue, sampled, forced)
            # Degraded mode: admission tightens with the live fraction
            # so a half-dead pool sheds rather than queueing the full
            # depth into the survivors.
            admitted = self.admission.try_acquire(
                venue, capacity_fraction=live / float(self.pool.shards))
            admission_span["annotations"]["decision"] = (
                "admitted" if admitted else "shed")
        if not admitted:
            if self.metrics is not None:
                self.metrics.inc("ikrq_shed_total", venue=venue)
            self._record("overloaded", venue)
            return self._finalise_trace(
                recorder, {"status": "overloaded", "venue": venue},
                venue, sampled, forced)
        generation: Optional[Generation] = None
        try:
            try:
                with recorder.span(STAGE_GENERATION) as gen_span:
                    generation = self.registry.acquire(venue)
                    gen_span["annotations"]["generation"] = (
                        generation.generation)
            except KeyError:
                self._record("unknown_venue", venue)
                return self._finalise_trace(
                    recorder,
                    {"status": "unknown_venue", "venue": venue,
                     "error": f"venue {venue!r} is not hosted here"},
                    venue, sampled, forced)
            recorder.annotate(generation=generation.generation)
            try:
                affinity = shard_for(query_doc["ps"], query_doc["pt"],
                                     self.pool.shards, venue)
            except (TypeError, ValueError) as exc:
                self._record("bad_request", venue)
                return self._finalise_trace(
                    recorder, {"status": "bad_request", "venue": venue,
                               "error": repr(exc)},
                    venue, sampled, forced)
            shard = self.pool.resolve_shard(affinity)
            if shard is None:  # the fleet died since the live check
                self._record("shard_down", venue)
                return self._finalise_trace(
                    recorder,
                    {"status": "shard_down", "venue": venue,
                     "error": "no live shards"},
                    venue, sampled, forced)
            if shard != affinity:
                recorder.annotate(rerouted_from=affinity)
                self._count_failover(venue, affinity, shard, recorder,
                                     kind="reroute")
            recorder.annotate(shard=shard)
            limit = deadline_s if deadline_s is not None else self.deadline_s
            payload: Dict = {"kind": "search", "query": query_doc,
                             "algorithm": algorithm, "venue": venue,
                             "generation": generation.generation}
            if overlay:
                payload["overlay"] = overlay.to_wire()
            if dyn.keyword_version:
                payload["kw_version"] = dyn.keyword_version
            if limit is not None:
                payload["deadline"] = time.time() + limit
            if sleep is not None:
                payload["sleep"] = sleep
            with recorder.span(STAGE_DISPATCH) as dispatch_span:
                dispatch_span["annotations"]["shard"] = shard
                attempts = 0
                while True:
                    payload["trace"] = trace_request_to_wire(
                        recorder.trace_id, sampled, time.time())
                    if limit is not None:
                        # The deadline is absolute: a failover retry
                        # only gets the original request's remaining
                        # budget, never a fresh one.
                        timeout = (payload["deadline"] + _DEADLINE_GRACE
                                   - time.time())
                        if timeout <= 0:
                            response = {"status": "expired",
                                        "venue": venue, "shard": shard}
                            break
                    else:
                        timeout = None
                    response = self.pool.call(shard, payload,
                                              timeout=timeout)
                    status = (response.get("status")
                              if isinstance(response, dict) else "error")
                    if (status not in ("shard_down", "timeout")
                            or attempts >= self.failover_retries):
                        break
                    sibling = self.pool.next_live_shard(shard)
                    if sibling is None:
                        break
                    attempts += 1
                    self._count_failover(venue, shard, sibling, recorder,
                                         kind="retry")
                    shard = sibling
                    dispatch_span["annotations"]["shard"] = shard
                    dispatch_span["annotations"]["failovers"] = attempts
                    recorder.annotate(shard=shard, failovers=attempts)
                # Graft the worker's sub-tree (offsets relative to the
                # enqueue instant) under the dispatch span.
                wire = (response.pop("trace", None)
                        if isinstance(response, dict) else None)
                if wire:
                    recorder.attach(shift_spans(
                        wire["spans"], dispatch_span["start_ms"]))
            if self.metrics is not None:
                # Shard-side evaluation time (excludes queueing and
                # dispatch): the second latency histogram on /metrics,
                # so p50/p95/p99 of pure search time can be read next
                # to the end-to-end request latencies.
                elapsed_shard = response.get("elapsed")
                if elapsed_shard is not None:
                    self.metrics.observe("ikrq_shard_search_latency_seconds",
                                         elapsed_shard, shard=shard,
                                         venue=venue)
            if isinstance(response, dict):
                # Which dynamic state produced this answer — the
                # sibling of the snapshot ``generation`` echo.
                response["dynamic_version"] = dyn.version
            self._record(response.get("status", "error"), venue,
                         recorder.elapsed_ms() / 1000.0)
            return self._finalise_trace(recorder, response, venue,
                                        sampled, forced)
        finally:
            if generation is not None:
                self.registry.release(generation)
            self.admission.release(venue)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def ingest(self,
               venue: str,
               snapshot_path: str,
               drain_timeout: float = 60.0,
               load_timeout: float = 120.0) -> Dict:
        """Load ``snapshot_path`` as ``venue``'s next generation and
        hot-swap it in without dropping traffic.

        The sequence (one ingest at a time; concurrent calls serialise):

        1. register the next generation (state ``loading``),
        2. broadcast the load into every live shard — traffic keeps
           flowing on the current generation while shards adopt the
           snapshot,
        3. **atomically flip** the active generation in the registry —
           from this instant every new request lands on the new
           generation,
        4. **drain barrier** — wait until requests in flight on the old
           generation have all finished (they complete on the engines
           they started on, so answers stay byte-identical throughout),
        5. evict the old generation from every shard and retire it,
        6. **garbage-collect**: with a ``gc_keep_last`` policy, retired
           generations beyond the rollback window are marked deleted
           and their snapshot files removed from disk (logged, and
           reported under ``gc`` in the result) — without it, repeated
           ingests would accumulate dead generation files forever.

        A worker that dies mid-ingest does not wedge the venue: its
        load report comes back ``shard_down`` (tolerated — the warm
        restart reloads the new generation from the pool's assignment
        manifest before the replacement serves a single request), the
        flip proceeds on the survivors, and only a *deterministic*
        load failure (bad snapshot) or the whole fleet being down
        aborts the swap all-or-nothing.

        Returns a report with per-phase latencies; ``status`` is
        ``"ok"`` or ``"error"`` (a load failure leaves the old
        generation active and untouched — ingest is all-or-nothing).
        """
        venue = str(venue)
        started = time.perf_counter()
        with self._ingest_lock:
            gen = self.registry.add(venue, snapshot_path)
            load_started = time.perf_counter()
            reports = self.pool.load(venue, gen.generation, snapshot_path,
                                     timeout=load_timeout)
            down = [doc for doc in reports
                    if doc.get("status") == "shard_down"]
            failed = [doc for doc in reports
                      if doc.get("status") not in ("ok", "shard_down")]
            if failed or len(down) == len(reports):
                self.registry.fail(venue, gen.generation)
                # Evict from every shard: the ones that *did* load the
                # generation would otherwise hold its engines forever
                # (numbers are never reused).  A shard still finishing
                # a timed-out load processes the evict right after it,
                # same queue, so nothing leaks there either.  The
                # evict also removes the assignment, so warm restarts
                # stop reloading the failed generation.
                self.pool.evict(venue, gen.generation)
                if self.metrics is not None:
                    self.metrics.inc("ikrq_ingest_total", venue=venue,
                                     status="error")
                first = (failed or down)[0]
                return {"status": "error", "venue": venue,
                        "generation": gen.generation,
                        "error": (f"{len(failed)} shard(s) failed to load: "
                                  f"{first.get('error', first)}"
                                  if failed else
                                  "no live shards to load into")}
            if down:
                # Survivable mid-ingest deaths: the flip proceeds on
                # the live shards; replacements warm-restart onto the
                # new generation from the assignment manifest.
                log_event(_log, logging.WARNING, "ingest_degraded",
                          venue=venue, generation=gen.generation,
                          down_shards=[doc.get("shard") for doc in down])
            load_seconds = time.perf_counter() - load_started
            gen.load_seconds = load_seconds
            previous = self.registry.activate(venue, gen.generation)
            drain_started = time.perf_counter()
            drained = True
            if previous is not None:
                drained = self.registry.drain(previous,
                                              timeout=drain_timeout)
                self.pool.evict(venue, previous.generation)
                self.registry.retire(previous)
            drain_seconds = time.perf_counter() - drain_started
            gc_report = self._collect_garbage(venue)
            swap_seconds = time.perf_counter() - started
            if self.metrics is not None:
                self.metrics.inc("ikrq_ingest_total", venue=venue,
                                 status="ok")
                self.metrics.observe("ikrq_swap_latency_seconds",
                                     swap_seconds, venue=venue)
            return {
                "status": "ok",
                "venue": venue,
                "generation": gen.generation,
                "previous_generation": (previous.generation
                                        if previous is not None else None),
                "load_seconds": load_seconds,
                "drain_seconds": drain_seconds,
                "swap_seconds": swap_seconds,
                "drained": drained,
                "shards_loaded": len(reports) - len(down),
                "shards_down": len(down),
                "gc": gc_report,
            }

    # ------------------------------------------------------------------
    # Dynamic deltas
    # ------------------------------------------------------------------
    def delta(self,
              venue: str,
              ops: Sequence[Dict],
              timeout: float = 60.0) -> Dict:
        """Apply dynamic edit ``ops`` to a venue without re-ingesting.

        Door-state and schedule ops (``close_door`` / ``open_door`` /
        ``seal_partition`` / ``unseal_partition`` / ``set_schedule`` /
        ``clear_schedule``) only touch the dispatcher's
        :class:`~repro.dynamic.state.DynamicStore` — their closures
        are compiled into each request's banned sets at admission, and
        every shard cache is keyed by overlay identity, so no
        invalidation is needed beyond the version bump.  Keyword ops
        are additionally broadcast into every live shard, where a
        sibling engine (sharing the mmap'd snapshot indexes) replays
        them under the new ``keyword_version``.

        Atomicity: the new view is *derived* first, the keyword
        broadcast runs against the fleet, and only then is the view
        *published* — a concurrent query sees either the old or the
        new version in full, never a blend, and is never stamped with
        a keyword version its shard cannot serve.  One delta at a
        time; concurrent calls serialise.
        """
        venue = str(venue)
        started = time.perf_counter()
        if not self.registry.has_venue(venue):
            return {"status": "unknown_venue", "venue": venue,
                    "error": f"venue {venue!r} is not hosted here"}
        with self._delta_lock:
            try:
                old, new = self.dynamic.derive(venue, ops)
            except DeltaError as exc:
                if self.metrics is not None:
                    self.metrics.inc("ikrq_delta_total", venue=venue,
                                     status="bad_request")
                return {"status": "bad_request", "venue": venue,
                        "error": str(exc)}
            doors = sorted(new.overlay.closed_doors
                           | {did for did, _ in new.schedules})
            partitions = sorted(new.overlay.sealed_partitions)
            if doors or partitions:
                # Ask one live shard whether the ids exist before
                # anything is published (the dispatcher holds no venue
                # model); bogus ids must answer bad_request, not break
                # the venue's traffic.
                verdict: Optional[Dict] = None
                for shard in self.pool.live_shards():
                    verdict = self.pool.call(
                        shard, {"kind": "validate", "venue": venue,
                                "doors": doors, "partitions": partitions},
                        timeout=timeout)
                    if verdict.get("status") == "ok":
                        break
                if verdict is None or verdict.get("status") != "ok":
                    return {"status": "error", "venue": venue,
                            "error": "no live shard could validate the "
                                     "delta ids"}
                unknown = (list(verdict.get("unknown_doors") or [])
                           + list(verdict.get("unknown_partitions") or []))
                if unknown:
                    if self.metrics is not None:
                        self.metrics.inc("ikrq_delta_total", venue=venue,
                                         status="bad_request")
                    return {
                        "status": "bad_request", "venue": venue,
                        "error": (f"unknown ids in delta: doors "
                                  f"{verdict.get('unknown_doors')}, "
                                  f"partitions "
                                  f"{verdict.get('unknown_partitions')}")}
            reports: List[Dict] = []
            if new.keyword_version != old.keyword_version:
                kw_payload = [dict(op) for op in new.keyword_ops]
                # Manifest first: a worker dying mid-broadcast is
                # replaced by one that replays the delta before
                # serving (same ordering as snapshot assignments).
                self.pool.record_delta(venue, new.keyword_version,
                                       kw_payload)
                reports = self.pool.broadcast(
                    {"kind": "delta", "venue": venue,
                     "kw_version": new.keyword_version,
                     "ops": kw_payload}, timeout=timeout)
                failed = [doc for doc in reports
                          if doc.get("status") not in ("ok", "shard_down")]
                if failed:
                    # Deterministic replay failure (bad op against this
                    # snapshot): nothing was published, the venue stays
                    # on the old version everywhere.
                    self.pool.record_delta(
                        venue, old.keyword_version,
                        [dict(op) for op in old.keyword_ops])
                    if self.metrics is not None:
                        self.metrics.inc("ikrq_delta_total", venue=venue,
                                         status="error")
                    first = failed[0]
                    return {"status": "error", "venue": venue,
                            "error": (f"{len(failed)} shard(s) failed to "
                                      f"apply: {first.get('error', first)}")}
            self.dynamic.publish(venue, new)
        log_event(_log, logging.INFO, "delta_applied", venue=venue,
                  version=new.version,
                  keyword_version=new.keyword_version,
                  ops=len(list(ops)),
                  keyword_broadcast=bool(reports),
                  closed_doors=len(new.overlay.closed_doors),
                  sealed_partitions=len(new.overlay.sealed_partitions))
        if self.metrics is not None:
            self.metrics.inc("ikrq_delta_total", venue=venue, status="ok")
        return {
            "status": "ok",
            "venue": venue,
            "version": new.version,
            "keyword_version": new.keyword_version,
            "overlay": new.overlay.to_wire(),
            "scheduled_doors": sorted(did for did, _ in new.schedules),
            "keyword_broadcast": bool(reports),
            "shards_applied": sum(1 for doc in reports
                                  if doc.get("status") == "ok"),
            "elapsed": time.perf_counter() - started,
        }

    def _collect_garbage(self, venue: str) -> List[Dict]:
        """Apply the ``gc_keep_last`` policy to ``venue``'s generations.

        The registry decides *which* generations die (retired beyond
        the rollback window, plus failed ones — never active, draining
        or loading; see :meth:`SnapshotRegistry.collect`); this method
        owns the file removal, skipping any snapshot path a live
        generation of *any* venue still references.  Every deletion is
        logged and counted (``ikrq_gc_deleted_total``).
        """
        if self.gc_keep_last is None:
            return []
        report: List[Dict] = []
        for gen in self.registry.collect(venue, self.gc_keep_last):
            removed = False
            deferred = False
            if self.registry.path_in_use(gen.path):
                log_event(_log, logging.INFO, "gc_file_kept",
                          venue=venue, generation=gen.generation,
                          path=gen.path,
                          detail="still referenced by a live generation")
            else:
                try:
                    os.remove(gen.path)
                    removed = True
                    log_event(_log, logging.INFO, "gc_file_deleted",
                              venue=venue, generation=gen.generation,
                              path=gen.path)
                except FileNotFoundError:
                    log_event(_log, logging.INFO, "gc_file_already_gone",
                              venue=venue, generation=gen.generation,
                              path=gen.path)
                except OSError as exc:
                    # Transient failure: put the record back to
                    # ``retired`` so the next ingest's sweep retries —
                    # a terminal ``deleted`` record with the file still
                    # on disk would be an invisible, permanent leak.
                    self.registry.restore_retired(gen)
                    deferred = True
                    log_event(_log, logging.WARNING, "gc_delete_deferred",
                              venue=venue, generation=gen.generation,
                              path=gen.path, error=repr(exc),
                              detail="will retry on the next ingest")
            if not deferred and self.metrics is not None:
                self.metrics.inc("ikrq_gc_deleted_total", venue=venue)
            report.append({"generation": gen.generation,
                           "path": gen.path,
                           "file_removed": removed,
                           "deferred": deferred})
        return report

"""Multi-venue shard-process pool, tenant dispatcher and admission.

Each shard is a worker *process* (beating the GIL on the CPU-bound
search hot path) that loads index snapshots for **every hosted venue**
and serves requests over a multiprocessing queue, one
:class:`~repro.core.engine.QueryService` per loaded ``(venue,
generation)``.  The dispatcher routes every request to the shard owned
by its ``(venue, ps, pt)`` hash, so the per-endpoint attachment maps,
keyword conversions and answer LRUs of one venue's endpoint always
land on the same warm shard.

Venues are dynamic: :meth:`ShardPool.load` broadcasts a new snapshot
generation into every shard, :meth:`ShardPool.evict` drops one, and
:meth:`ShardDispatcher.ingest` composes the two with the
:class:`~repro.serve.registry.SnapshotRegistry` into a zero-downtime
hot-swap — load everywhere, atomically flip the active generation,
drain in-flight requests off the old generation, evict it.  A request
resolves its generation exactly once, at admission, so every answer
comes from exactly one generation and stays byte-identical to a
sequential ``engine.search`` on that snapshot.

Admission control is explicit and tenant-aware: at most
``max_pending`` requests may be in flight across the pool, and each
venue may carry a quota capping *its* in-flight share — anything
beyond either bound is *shed* immediately with an
``{"status": "overloaded"}`` answer instead of queueing into a latency
collapse, and one noisy venue cannot starve the rest.  Requests may
additionally carry a wall-clock deadline — a shard that dequeues an
already-expired request answers ``expired`` without evaluating it.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
import zlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.logging import log_event
from repro.obs.trace import (STAGE_ADMISSION, STAGE_DECODE, STAGE_DISPATCH,
                             STAGE_ENGINE, STAGE_GENERATION,
                             STAGE_QUEUE_WAIT, STAGES, EngineTrace,
                             TraceBuffer, TracePolicy, TraceRecorder,
                             iter_spans, shift_spans, span_doc)
from repro.serve.registry import (DEFAULT_VENUE, Generation,
                                  SnapshotRegistry)
from repro.serve.wire import (answer_to_wire, query_from_wire,
                              trace_reply_to_wire, trace_request_to_wire)

#: Extra seconds the dispatcher waits past a request deadline before
#: giving up on the shard's answer.
_DEADLINE_GRACE = 2.0
#: Fallback RPC timeout when a request has no deadline: long enough
#: for any sane query, short enough to detect a dead shard.
_DEFAULT_RPC_TIMEOUT = 300.0

_log = logging.getLogger("repro.serve")


def process_rss_bytes() -> int:
    """Resident-set size of the calling process, in bytes (0 when the
    platform exposes neither ``/proc`` nor ``resource``).

    Without ``/proc`` the fallback is ``ru_maxrss`` — the lifetime
    *peak* RSS, the closest portable approximation — which Linux
    reports in kilobytes but macOS/BSD report in bytes.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE")
                        if hasattr(os, "sysconf") else 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-/proc platforms
        import resource
        import sys as _sys
        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(maxrss) * (1024 if _sys.platform.startswith("linux")
                              else 1)
    except Exception:  # pragma: no cover
        return 0


def shard_for(ps: Sequence[float],
              pt: Sequence[float],
              shards: int,
              venue: str = DEFAULT_VENUE) -> int:
    """The shard owning ``(venue, ps, pt)`` (wire triples).

    Stable across processes and runs (CRC32 of the canonical repr, not
    ``hash()``), so repeated traffic for one venue's endpoint pair
    always hits the same shard's warm caches; including the venue
    spreads the hot endpoints of co-hosted tenants over different
    shards.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    key = repr((venue, tuple(float(v) for v in ps),
                tuple(float(v) for v in pt)))
    return zlib.crc32(key.encode("utf-8")) % shards


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker(shard_id: int,
                  initial: Dict[str, Tuple[int, str]],
                  requests,
                  responses,
                  options: Dict) -> None:
    """Entry point of one shard process.

    ``initial`` maps venue id to ``(generation, snapshot_path)``; the
    worker loads every entry before reporting ready, then serves
    ``search`` / ``load`` / ``evict`` / ``stats`` messages until
    shutdown.  The worker is single-threaded by design: a ``load``
    occupies the shard for the (millisecond) snapshot adoption and the
    engine map never races.

    Memory-tiering options: ``mmap`` backs every loaded engine's index
    buffers with a shared mapping of its snapshot file (all shards map
    the same generation file, so the fleet holds one page-cache copy);
    ``matrix_spill_dir`` gives each loaded engine a private row-cache
    file ``<venue>.g<generation>.shard<i>.rows`` under that directory
    (removed again when the generation is evicted);
    ``matrix_max_rows`` caps resident matrix rows per engine.
    """
    from repro.core.engine import QueryService
    from repro.serve.snapshot import _UNSET, load_snapshot, warm_mapped
    from repro.space.graph import DoorGraph
    from repro.space.skeleton import SkeletonIndex

    services: Dict[Tuple[str, int], "QueryService"] = {}
    use_mmap = bool(options.get("mmap"))
    spill_dir = options.get("matrix_spill_dir")
    matrix_max_rows = options.get("matrix_max_rows", _UNSET)
    kernel = options.get("kernel")

    def _load(venue: str, generation: int, path: str) -> float:
        started = time.perf_counter()
        spill_path = None
        if spill_dir:
            os.makedirs(spill_dir, exist_ok=True)
            spill_path = os.path.join(
                spill_dir, f"{venue}.g{generation}.shard{shard_id}.rows")
        engine = load_snapshot(path, mmap=use_mmap,
                               matrix_spill_path=spill_path,
                               matrix_max_rows=matrix_max_rows,
                               kernel=kernel)
        # Warm pass: sequential prefetch of a mapped snapshot moves
        # first-touch page-ins off the request path (covers both the
        # initial load and every hot-swap ingest, which land here).
        warm_mapped(engine)
        services[(venue, generation)] = QueryService(
            engine, workers=1,
            point_map_capacity=options.get("point_map_capacity", 128),
            keyword_cache_capacity=options.get("keyword_cache_capacity", 512),
            answer_cache_capacity=options.get("answer_cache_capacity", 1024))
        return time.perf_counter() - started

    try:
        for venue in sorted(initial):
            generation, path = initial[venue]
            _load(venue, generation, path)
    except Exception as exc:  # startup failure: report, don't hang
        responses.put({"kind": "ready", "shard": shard_id,
                       "error": repr(exc)})
        return
    responses.put({"kind": "ready", "shard": shard_id,
                   "venues": sorted(initial),
                   "csr_builds": DoorGraph.csr_builds,
                   "s2s_builds": SkeletonIndex.s2s_builds,
                   "kernels": sorted({service.kernel_backend
                                      for service in services.values()})})
    allow_sleep = bool(options.get("allow_sleep"))
    while True:
        msg = requests.get()
        if msg is None or msg.get("kind") == "shutdown":
            # Spill files are per-process scratch: remove them for the
            # still-loaded generations too, not only evicted ones.
            for service in services.values():
                matrix = service.engine._matrix
                if matrix is not None:
                    matrix.close_spill()
            break
        req_id = msg.get("id")
        base = {"kind": "response", "id": req_id, "shard": shard_id}
        kind = msg.get("kind")
        if kind == "stats":
            venue_stats = []
            aggregate: Dict[str, int] = {}
            for (venue, generation), service in sorted(services.items()):
                snap = service.stats_snapshot().as_dict()
                # "search" rides beside "stats" (whose field set is
                # pinned to ServiceStats.FIELDS): the SearchStats sums
                # of every evaluation this service actually ran.
                venue_stats.append({"venue": venue,
                                    "generation": generation,
                                    "kernel": service.kernel_backend,
                                    "stats": snap,
                                    "search": service.search_counters(),
                                    "memory":
                                        service.engine.memory_breakdown()})
                for name, value in snap.items():
                    aggregate[name] = aggregate.get(name, 0) + value
            responses.put({**base, "status": "ok", "stats": aggregate,
                           "venue_stats": venue_stats,
                           "rss_bytes": process_rss_bytes()})
            continue
        if kind == "load":
            try:
                seconds = _load(msg["venue"], msg["generation"], msg["path"])
                responses.put({**base, "status": "ok",
                               "venue": msg["venue"],
                               "generation": msg["generation"],
                               "load_seconds": seconds})
            except Exception as exc:
                responses.put({**base, "status": "error",
                               "error": repr(exc)})
            continue
        if kind == "evict":
            dropped = services.pop(
                (msg.get("venue"), msg.get("generation")), None)
            if dropped is not None:
                matrix = dropped.engine._matrix
                if matrix is not None:
                    # The spill file is per-(engine, shard) scratch —
                    # recomputable rows, deleted with the generation.
                    matrix.close_spill()
            responses.put({**base, "status": "ok",
                           "evicted": dropped is not None})
            continue
        # -------------------------------------------------- search
        venue = msg.get("venue", DEFAULT_VENUE)
        generation = msg.get("generation")
        base["venue"] = venue
        base["generation"] = generation
        service = services.get((venue, generation))
        if service is None:
            responses.put({**base, "status": "unknown_venue"})
            continue
        started = time.perf_counter()
        # Worker-side trace sub-tree.  Offsets are relative to the
        # request's *enqueue* instant (the dispatcher's dispatch-span
        # start): the queue wait opens the forest at 0, derived from
        # the payload's wall-clock stamp — the only clock comparable
        # across processes — and everything after runs on this
        # process's perf_counter.
        trace_req = msg.get("trace")
        trace_spans: Optional[List[Dict]] = None
        queue_wait_ms = 0.0
        if trace_req:
            enqueued_at = float(trace_req.get("enqueued_at", 0.0))
            if enqueued_at > 0.0:
                queue_wait_ms = max(0.0,
                                    (time.time() - enqueued_at) * 1000.0)
            trace_spans = [span_doc(STAGE_QUEUE_WAIT, 0.0, queue_wait_ms)]

        def _offset() -> float:
            return queue_wait_ms + (time.perf_counter() - started) * 1000.0

        def _put(doc: Dict) -> None:
            if trace_spans is not None:
                doc["trace"] = trace_reply_to_wire(queue_wait_ms,
                                                   trace_spans)
            responses.put(doc)

        try:
            deadline = msg.get("deadline")
            if deadline is not None and time.time() > deadline:
                _put({**base, "status": "expired"})
                continue
            if allow_sleep and msg.get("sleep"):
                # Test-only latency injection (saturation tests); the
                # HTTP surface never forwards a sleep field.
                time.sleep(float(msg["sleep"]))
            if trace_spans is not None:
                decode_start = _offset()
                query = query_from_wire(msg["query"])
                trace_spans.append(span_doc(
                    STAGE_DECODE, decode_start, _offset() - decode_start))
                engine_trace = EngineTrace(fine=bool(trace_req.get("fine")))
                engine_start = _offset()
                answer = service.search(query, msg.get("algorithm", "ToE"),
                                        trace=engine_trace)
                engine_ms = _offset() - engine_start
                trace_spans.append(span_doc(
                    STAGE_ENGINE, engine_start, engine_ms,
                    children=engine_trace.stage_spans(engine_start,
                                                      engine_ms),
                    **engine_trace.annotations))
            else:
                query = query_from_wire(msg["query"])
                answer = service.search(query, msg.get("algorithm", "ToE"))
            doc = answer_to_wire(answer)
            doc.update(base)
            doc["status"] = "ok"
            doc["elapsed"] = time.perf_counter() - started
            _put(doc)
        except Exception as exc:
            _put({**base, "status": "error", "error": repr(exc)})


# ----------------------------------------------------------------------
# Pool
# ----------------------------------------------------------------------
class _PendingSlot:
    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[Dict] = None


def _normalise_venues(snapshot_path: Optional[str],
                      venues: Optional[Mapping[str, str]]) -> Dict[str, str]:
    initial: Dict[str, str] = {str(v): str(p)
                               for v, p in (venues or {}).items()}
    if snapshot_path is not None:
        initial.setdefault(DEFAULT_VENUE, str(snapshot_path))
    if not initial:
        raise ValueError(
            "a shard pool needs a snapshot_path or a venues mapping")
    return initial


class ShardPool:
    """A pool of shard processes serving one or many venues.

    The pool owns the request queue of every shard, one shared
    response queue, and a router thread matching responses back to
    blocked callers by request id.  ``call`` is the low-level blocking
    RPC, ``broadcast`` fans one control message over every shard;
    routing policy, tenancy and admission control live in
    :class:`ShardDispatcher`.

    ``ShardPool(path, shards=2)`` keeps the single-tenant shape — the
    snapshot is hosted as venue ``"default"`` at generation 1.
    Multi-tenant pools pass ``venues={"mall-a": path_a, ...}`` instead
    (or additionally).
    """

    def __init__(self,
                 snapshot_path: Optional[str] = None,
                 shards: int = 2,
                 service_options: Optional[Dict] = None,
                 allow_sleep: bool = False,
                 start_timeout: float = 120.0,
                 mp_context: Optional[str] = None,
                 venues: Optional[Mapping[str, str]] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        ctx = multiprocessing.get_context(mp_context)
        #: Initial venue -> snapshot path map (all at generation 1).
        self.initial_venues: Dict[str, str] = _normalise_venues(
            snapshot_path, venues)
        self.snapshot_path = (str(snapshot_path)
                              if snapshot_path is not None else None)
        self.shards = shards
        options = dict(service_options or {})
        options["allow_sleep"] = allow_sleep
        initial = {venue: (1, path)
                   for venue, path in self.initial_venues.items()}
        self._requests = [ctx.Queue() for _ in range(shards)]
        self._responses = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_shard_worker,
                args=(i, initial, self._requests[i],
                      self._responses, options),
                daemon=True, name=f"ikrq-shard-{i}")
            for i in range(shards)
        ]
        self._lock = threading.Lock()
        self._pending: Dict[int, _PendingSlot] = {}
        self._next_id = 0
        self._closed = False
        #: Per-shard build counters reported at startup; snapshot loads
        #: must show no increment over the pre-fork value.
        self.worker_builds: List[Dict] = []
        for proc in self._procs:
            proc.start()
        ready = 0
        deadline = time.monotonic() + start_timeout
        while ready < shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError("shard pool start timed out")
            try:
                msg = self._responses.get(timeout=remaining)
            except Exception:
                continue
            if msg.get("kind") != "ready":
                continue
            if "error" in msg:
                self.close()
                raise RuntimeError(
                    f"shard {msg['shard']} failed to start: {msg['error']}")
            self.worker_builds.append(
                {"shard": msg["shard"],
                 "csr_builds": msg.get("csr_builds"),
                 "s2s_builds": msg.get("s2s_builds")})
            ready += 1
        self._router = threading.Thread(
            target=self._route_responses, daemon=True, name="ikrq-router")
        self._router.start()

    # ------------------------------------------------------------------
    def _route_responses(self) -> None:
        while True:
            try:
                msg = self._responses.get()
            except Exception:  # queue torn down at interpreter exit
                break
            if msg is None:
                break
            slot = None
            with self._lock:
                slot = self._pending.pop(msg.get("id"), None)
            if slot is not None:
                slot.response = msg
                slot.event.set()
            # A response whose caller timed out is dropped.

    def _register_slot(self) -> Tuple[int, _PendingSlot]:
        slot = _PendingSlot()
        with self._lock:
            self._next_id += 1
            req_id = self._next_id
            self._pending[req_id] = slot
        return req_id, slot

    def call(self,
             shard: int,
             payload: Dict,
             timeout: Optional[float] = None) -> Dict:
        """Blocking RPC to one shard; returns the response document.

        A timeout yields ``{"status": "timeout"}`` — the shard's late
        answer (if any) is discarded by the router.
        """
        if self._closed:
            raise RuntimeError("shard pool is closed")
        req_id, slot = self._register_slot()
        payload = dict(payload)
        payload["id"] = req_id
        self._requests[shard].put(payload)
        if not slot.event.wait(timeout if timeout is not None
                               else _DEFAULT_RPC_TIMEOUT):
            with self._lock:
                self._pending.pop(req_id, None)
            return {"status": "timeout", "id": req_id, "shard": shard}
        return slot.response or {"status": "error", "error": "empty response"}

    def broadcast(self,
                  payload: Dict,
                  timeout: Optional[float] = None) -> List[Dict]:
        """One control RPC to *every* shard, dispatched before any
        waiting starts (the shards work concurrently); returns one
        response document per shard, in shard order."""
        if self._closed:
            raise RuntimeError("shard pool is closed")
        slots: List[Tuple[int, _PendingSlot]] = []
        for shard in range(self.shards):
            req_id, slot = self._register_slot()
            doc = dict(payload)
            doc["id"] = req_id
            self._requests[shard].put(doc)
            slots.append((req_id, slot))
        wait_until = time.monotonic() + (timeout if timeout is not None
                                         else _DEFAULT_RPC_TIMEOUT)
        responses: List[Dict] = []
        for shard, (req_id, slot) in enumerate(slots):
            remaining = max(0.0, wait_until - time.monotonic())
            if not slot.event.wait(remaining):
                with self._lock:
                    self._pending.pop(req_id, None)
                responses.append({"status": "timeout", "id": req_id,
                                  "shard": shard})
                continue
            responses.append(slot.response
                             or {"status": "error",
                                 "error": "empty response"})
        return responses

    # ------------------------------------------------------------------
    # Venue control plane (used by ShardDispatcher.ingest)
    # ------------------------------------------------------------------
    def load(self,
             venue: str,
             generation: int,
             path: Union[str, "object"],
             timeout: float = 120.0) -> List[Dict]:
        """Load snapshot ``path`` as ``venue``'s ``generation`` in every
        shard; returns the per-shard load reports."""
        return self.broadcast({"kind": "load", "venue": str(venue),
                               "generation": int(generation),
                               "path": str(path)}, timeout=timeout)

    def evict(self,
              venue: str,
              generation: int,
              timeout: float = 30.0) -> List[Dict]:
        """Drop ``(venue, generation)`` from every shard."""
        return self.broadcast({"kind": "evict", "venue": str(venue),
                               "generation": int(generation)},
                              timeout=timeout)

    def stats(self, timeout: float = 30.0) -> List[Dict]:
        """One atomic stats snapshot per shard (aggregate + per venue)."""
        return self.broadcast({"kind": "stats"}, timeout=timeout)

    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 10.0) -> None:
        """Shut every shard down and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for queue in self._requests:
            try:
                queue.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=join_timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=join_timeout)
        try:
            self._responses.put(None)  # stop the router thread
        except Exception:
            pass
        router = getattr(self, "_router", None)
        if router is not None and router.is_alive():
            router.join(timeout=join_timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def alive(self) -> bool:
        return (not self._closed
                and all(proc.is_alive() for proc in self._procs))

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Admission control + dispatch
# ----------------------------------------------------------------------
class TenantQuota:
    """Per-venue admission quota.

    ``max_in_flight`` caps the venue's simultaneous in-flight requests
    (its share of the pool-wide queue depth); beyond it the venue's own
    traffic is shed while other tenants keep being admitted.
    """

    __slots__ = ("max_in_flight",)

    def __init__(self, max_in_flight: int) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.max_in_flight = max_in_flight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TenantQuota(max_in_flight={self.max_in_flight})"


class AdmissionController:
    """Bounded in-flight admission: admit or shed, never queue blindly.

    Two bounds compose: the pool-wide ``max_pending`` (total queue
    depth) and an optional per-venue :class:`TenantQuota`.  A request
    is admitted only when both hold; shed accounting is kept per venue
    so the metrics show *who* is being noisy.
    """

    def __init__(self,
                 max_pending: int,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Mapping[str, TenantQuota]] = None) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = max_pending
        self.default_quota = default_quota
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.shed = 0
        self._venue_in_flight: Dict[str, int] = {}
        self._venue_admitted: Dict[str, int] = {}
        self._venue_shed: Dict[str, int] = {}

    def set_quota(self, venue: str, quota: Optional[TenantQuota]) -> None:
        """Install (or with ``None`` remove) a venue's quota."""
        with self._lock:
            if quota is None:
                self._quotas.pop(venue, None)
            else:
                self._quotas[venue] = quota

    def quota_for(self, venue: str) -> Optional[TenantQuota]:
        with self._lock:
            return self._quotas.get(venue, self.default_quota)

    def try_acquire(self, venue: str = DEFAULT_VENUE) -> bool:
        with self._lock:
            quota = self._quotas.get(venue, self.default_quota)
            venue_in_flight = self._venue_in_flight.get(venue, 0)
            if (self._in_flight >= self.max_pending
                    or (quota is not None
                        and venue_in_flight >= quota.max_in_flight)):
                self.shed += 1
                self._venue_shed[venue] = self._venue_shed.get(venue, 0) + 1
                return False
            self._in_flight += 1
            self.admitted += 1
            self._venue_in_flight[venue] = venue_in_flight + 1
            self._venue_admitted[venue] = (
                self._venue_admitted.get(venue, 0) + 1)
            return True

    def release(self, venue: str = DEFAULT_VENUE) -> None:
        with self._lock:
            self._in_flight -= 1
            self._venue_in_flight[venue] = (
                self._venue_in_flight.get(venue, 1) - 1)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def venue_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-venue ``{in_flight, admitted, shed, max_in_flight}``."""
        with self._lock:
            venues = (set(self._venue_in_flight) | set(self._venue_shed)
                      | set(self._quotas))
            out: Dict[str, Dict[str, int]] = {}
            for venue in sorted(venues):
                quota = self._quotas.get(venue, self.default_quota)
                out[venue] = {
                    "in_flight": self._venue_in_flight.get(venue, 0),
                    "admitted": self._venue_admitted.get(venue, 0),
                    "shed": self._venue_shed.get(venue, 0),
                    "max_in_flight": (quota.max_in_flight
                                      if quota is not None else None),
                }
            return out


class ShardDispatcher:
    """Routes wire queries to shards; the tenant-aware front door.

    ``submit`` is thread-safe (the HTTP layer calls it from many
    handler threads) and always returns a response document — results,
    ``overloaded`` when admission sheds, ``unknown_venue`` for an
    unhosted tenant, ``expired``/``timeout`` when a deadline passes, or
    ``error``/``bad_request``.  Every request resolves its venue's
    active snapshot generation exactly once, at admission, and the
    response document carries ``venue`` and ``generation`` back.

    ``ingest`` is the zero-downtime hot-swap entry point (see
    :meth:`ingest`).
    """

    def __init__(self,
                 pool: ShardPool,
                 max_pending: int = 64,
                 deadline_s: Optional[float] = None,
                 metrics=None,
                 registry: Optional[SnapshotRegistry] = None,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Mapping[str, TenantQuota]] = None,
                 gc_keep_last: Optional[int] = None,
                 trace_policy: Optional[TracePolicy] = None,
                 trace_buffer: Optional[TraceBuffer] = None) -> None:
        self.pool = pool
        self.admission = AdmissionController(
            max_pending, default_quota=default_quota, quotas=quotas)
        self.deadline_s = deadline_s
        self.metrics = metrics
        #: Trace retention policy and the ring the kept span trees land
        #: in (``GET /debug/traces``).  Coarse spans are recorded for
        #: *every* request — the policy only decides retention and
        #: which requests carry the fine engine-stage split.
        self.trace_policy = trace_policy or TracePolicy()
        self.trace_buffer = trace_buffer or TraceBuffer()
        if registry is None:
            registry = SnapshotRegistry()
            for venue, path in pool.initial_venues.items():
                gen = registry.add(venue, path)
                registry.activate(venue, gen.generation)
        self.registry = registry
        #: Generation GC policy: after each successful ingest, retired
        #: generations beyond the newest ``gc_keep_last`` are marked
        #: deleted and their snapshot files removed from disk (unless
        #: still referenced elsewhere).  ``None`` keeps every file
        #: forever — the historical behaviour, and the safe default
        #: when snapshot files are operator-managed.
        self.gc_keep_last = gc_keep_last
        self._ingest_lock = threading.Lock()

    def _venue_label(self, venue: str) -> str:
        """The metrics label for a venue — hosted ids only.

        Caller-supplied strings for venues we do not host must not
        become label values: each distinct value would mint a new
        counter series forever (unbounded registry growth and a
        Prometheus label-cardinality explosion from garbage traffic).
        """
        return venue if self.registry.has_venue(venue) else "_unhosted_"

    def _record(self, status: str, venue: str,
                elapsed: Optional[float] = None) -> None:
        if self.metrics is None:
            return
        self.metrics.inc("ikrq_requests_total", status=status,
                         venue=self._venue_label(venue))
        if elapsed is not None:
            self.metrics.observe("ikrq_request_latency_seconds", elapsed)

    def _finalise_trace(self,
                        recorder: TraceRecorder,
                        response: Dict,
                        venue: str,
                        sampled: bool,
                        forced: bool) -> Dict:
        """Close one request's trace: stamp the ``trace_id`` on the
        response, feed the stage histograms, retain the span tree when
        the policy says so, and emit the slow-query / error log line.

        Every dispatcher response passes through here — the coarse
        span tree exists for every request, retention is the only
        sampled decision."""
        status = str(response.get("status", "error"))
        policy = self.trace_policy
        doc = recorder.finish(status, venue=venue, sampled=sampled)
        duration_ms = doc["duration_ms"]
        doc["slow"] = policy.is_slow(duration_ms)
        doc["reason"] = policy.keep_reason(status, duration_ms, sampled,
                                           forced)
        response["trace_id"] = doc["trace_id"]
        label = self._venue_label(venue)
        if self.metrics is not None:
            for span in iter_spans(doc["spans"]):
                if span["name"] in STAGES:
                    self.metrics.observe(
                        "ikrq_stage_latency_seconds",
                        span["duration_ms"] / 1000.0,
                        stage=span["name"], venue=label)
        if doc["reason"] is not None:
            self.trace_buffer.add(doc)
        if doc["slow"] and status == "ok":
            log_event(_log, logging.WARNING, "slow_query",
                      trace_id=doc["trace_id"], venue=label,
                      status=status, duration_ms=duration_ms,
                      slow_ms=policy.slow_ms,
                      algorithm=doc.get("algorithm"),
                      shard=doc.get("shard"))
        elif status == "error":
            log_event(_log, logging.WARNING, "request_error",
                      trace_id=doc["trace_id"], venue=label,
                      duration_ms=duration_ms,
                      error=response.get("error"))
        return response

    def submit(self,
               query_doc: Dict,
               algorithm: str = "ToE",
               deadline_s: Optional[float] = None,
               sleep: Optional[float] = None,
               venue: Optional[str] = None,
               trace: bool = False) -> Dict:
        """Evaluate one wire query through its venue's affinity shard.

        ``trace=True`` forces retention of this request's span tree
        (and the fine engine-stage split) regardless of the sampling
        policy — the HTTP surface maps a ``"trace": true`` body field
        onto it.  Every response carries a ``trace_id``; whether the
        span tree behind it was retained in ``/debug/traces`` is the
        :class:`TracePolicy`'s call.
        """
        venue = DEFAULT_VENUE if venue is None else str(venue)
        forced = bool(trace)
        sampled = forced or self.trace_policy.sample()
        recorder = TraceRecorder()
        recorder.annotate(algorithm=algorithm)
        if (not isinstance(query_doc, dict)
                or "ps" not in query_doc or "pt" not in query_doc):
            self._record("bad_request", venue)
            return self._finalise_trace(
                recorder, {"status": "bad_request", "venue": venue,
                           "error": "query must carry ps and pt"},
                venue, sampled, forced)
        with recorder.span(STAGE_ADMISSION) as admission_span:
            if not self.registry.has_venue(venue):
                admission_span["annotations"]["decision"] = "unknown_venue"
                self._record("unknown_venue", venue)
                return self._finalise_trace(
                    recorder,
                    {"status": "unknown_venue", "venue": venue,
                     "error": f"venue {venue!r} is not hosted here"},
                    venue, sampled, forced)
            admitted = self.admission.try_acquire(venue)
            admission_span["annotations"]["decision"] = (
                "admitted" if admitted else "shed")
        if not admitted:
            if self.metrics is not None:
                self.metrics.inc("ikrq_shed_total", venue=venue)
            self._record("overloaded", venue)
            return self._finalise_trace(
                recorder, {"status": "overloaded", "venue": venue},
                venue, sampled, forced)
        generation: Optional[Generation] = None
        try:
            try:
                with recorder.span(STAGE_GENERATION) as gen_span:
                    generation = self.registry.acquire(venue)
                    gen_span["annotations"]["generation"] = (
                        generation.generation)
            except KeyError:
                self._record("unknown_venue", venue)
                return self._finalise_trace(
                    recorder,
                    {"status": "unknown_venue", "venue": venue,
                     "error": f"venue {venue!r} is not hosted here"},
                    venue, sampled, forced)
            recorder.annotate(generation=generation.generation)
            try:
                shard = shard_for(query_doc["ps"], query_doc["pt"],
                                  self.pool.shards, venue)
            except (TypeError, ValueError) as exc:
                self._record("bad_request", venue)
                return self._finalise_trace(
                    recorder, {"status": "bad_request", "venue": venue,
                               "error": repr(exc)},
                    venue, sampled, forced)
            recorder.annotate(shard=shard)
            limit = deadline_s if deadline_s is not None else self.deadline_s
            payload: Dict = {"kind": "search", "query": query_doc,
                             "algorithm": algorithm, "venue": venue,
                             "generation": generation.generation}
            if limit is not None:
                payload["deadline"] = time.time() + limit
            if sleep is not None:
                payload["sleep"] = sleep
            timeout = (limit + _DEADLINE_GRACE) if limit is not None else None
            with recorder.span(STAGE_DISPATCH) as dispatch_span:
                dispatch_span["annotations"]["shard"] = shard
                payload["trace"] = trace_request_to_wire(
                    recorder.trace_id, sampled, time.time())
                response = self.pool.call(shard, payload, timeout=timeout)
                # Graft the worker's sub-tree (offsets relative to the
                # enqueue instant) under the dispatch span.
                wire = (response.pop("trace", None)
                        if isinstance(response, dict) else None)
                if wire:
                    recorder.attach(shift_spans(
                        wire["spans"], dispatch_span["start_ms"]))
            if self.metrics is not None:
                # Shard-side evaluation time (excludes queueing and
                # dispatch): the second latency histogram on /metrics,
                # so p50/p95/p99 of pure search time can be read next
                # to the end-to-end request latencies.
                elapsed_shard = response.get("elapsed")
                if elapsed_shard is not None:
                    self.metrics.observe("ikrq_shard_search_latency_seconds",
                                         elapsed_shard, shard=shard,
                                         venue=venue)
            self._record(response.get("status", "error"), venue,
                         recorder.elapsed_ms() / 1000.0)
            return self._finalise_trace(recorder, response, venue,
                                        sampled, forced)
        finally:
            if generation is not None:
                self.registry.release(generation)
            self.admission.release(venue)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def ingest(self,
               venue: str,
               snapshot_path: str,
               drain_timeout: float = 60.0,
               load_timeout: float = 120.0) -> Dict:
        """Load ``snapshot_path`` as ``venue``'s next generation and
        hot-swap it in without dropping traffic.

        The sequence (one ingest at a time; concurrent calls serialise):

        1. register the next generation (state ``loading``),
        2. broadcast the load into every shard — traffic keeps flowing
           on the current generation while shards adopt the snapshot,
        3. **atomically flip** the active generation in the registry —
           from this instant every new request lands on the new
           generation,
        4. **drain barrier** — wait until requests in flight on the old
           generation have all finished (they complete on the engines
           they started on, so answers stay byte-identical throughout),
        5. evict the old generation from every shard and retire it,
        6. **garbage-collect**: with a ``gc_keep_last`` policy, retired
           generations beyond the rollback window are marked deleted
           and their snapshot files removed from disk (logged, and
           reported under ``gc`` in the result) — without it, repeated
           ingests would accumulate dead generation files forever.

        Returns a report with per-phase latencies; ``status`` is
        ``"ok"`` or ``"error"`` (a load failure leaves the old
        generation active and untouched — ingest is all-or-nothing).
        """
        venue = str(venue)
        started = time.perf_counter()
        with self._ingest_lock:
            gen = self.registry.add(venue, snapshot_path)
            load_started = time.perf_counter()
            reports = self.pool.load(venue, gen.generation, snapshot_path,
                                     timeout=load_timeout)
            failed = [doc for doc in reports if doc.get("status") != "ok"]
            if failed:
                self.registry.fail(venue, gen.generation)
                # Evict from every shard: the ones that *did* load the
                # generation would otherwise hold its engines forever
                # (numbers are never reused).  A shard still finishing
                # a timed-out load processes the evict right after it,
                # same queue, so nothing leaks there either.
                self.pool.evict(venue, gen.generation)
                if self.metrics is not None:
                    self.metrics.inc("ikrq_ingest_total", venue=venue,
                                     status="error")
                return {"status": "error", "venue": venue,
                        "generation": gen.generation,
                        "error": f"{len(failed)} shard(s) failed to load: "
                                 f"{failed[0].get('error', failed[0])}"}
            load_seconds = time.perf_counter() - load_started
            gen.load_seconds = load_seconds
            previous = self.registry.activate(venue, gen.generation)
            drain_started = time.perf_counter()
            drained = True
            if previous is not None:
                drained = self.registry.drain(previous,
                                              timeout=drain_timeout)
                self.pool.evict(venue, previous.generation)
                self.registry.retire(previous)
            drain_seconds = time.perf_counter() - drain_started
            gc_report = self._collect_garbage(venue)
            swap_seconds = time.perf_counter() - started
            if self.metrics is not None:
                self.metrics.inc("ikrq_ingest_total", venue=venue,
                                 status="ok")
                self.metrics.observe("ikrq_swap_latency_seconds",
                                     swap_seconds, venue=venue)
            return {
                "status": "ok",
                "venue": venue,
                "generation": gen.generation,
                "previous_generation": (previous.generation
                                        if previous is not None else None),
                "load_seconds": load_seconds,
                "drain_seconds": drain_seconds,
                "swap_seconds": swap_seconds,
                "drained": drained,
                "gc": gc_report,
            }

    def _collect_garbage(self, venue: str) -> List[Dict]:
        """Apply the ``gc_keep_last`` policy to ``venue``'s generations.

        The registry decides *which* generations die (retired beyond
        the rollback window, plus failed ones — never active, draining
        or loading; see :meth:`SnapshotRegistry.collect`); this method
        owns the file removal, skipping any snapshot path a live
        generation of *any* venue still references.  Every deletion is
        logged and counted (``ikrq_gc_deleted_total``).
        """
        if self.gc_keep_last is None:
            return []
        report: List[Dict] = []
        for gen in self.registry.collect(venue, self.gc_keep_last):
            removed = False
            deferred = False
            if self.registry.path_in_use(gen.path):
                log_event(_log, logging.INFO, "gc_file_kept",
                          venue=venue, generation=gen.generation,
                          path=gen.path,
                          detail="still referenced by a live generation")
            else:
                try:
                    os.remove(gen.path)
                    removed = True
                    log_event(_log, logging.INFO, "gc_file_deleted",
                              venue=venue, generation=gen.generation,
                              path=gen.path)
                except FileNotFoundError:
                    log_event(_log, logging.INFO, "gc_file_already_gone",
                              venue=venue, generation=gen.generation,
                              path=gen.path)
                except OSError as exc:
                    # Transient failure: put the record back to
                    # ``retired`` so the next ingest's sweep retries —
                    # a terminal ``deleted`` record with the file still
                    # on disk would be an invisible, permanent leak.
                    self.registry.restore_retired(gen)
                    deferred = True
                    log_event(_log, logging.WARNING, "gc_delete_deferred",
                              venue=venue, generation=gen.generation,
                              path=gen.path, error=repr(exc),
                              detail="will retry on the next ingest")
            if not deferred and self.metrics is not None:
                self.metrics.inc("ikrq_gc_deleted_total", venue=venue)
            report.append({"generation": gen.generation,
                           "path": gen.path,
                           "file_removed": removed,
                           "deferred": deferred})
        return report

"""Shard-process pool, affinity dispatcher and admission control.

Each shard is a worker *process* (beating the GIL on the CPU-bound
search hot path) that loads the index snapshot once and then serves
requests over a multiprocessing queue through its own
:class:`~repro.core.engine.QueryService`.  The dispatcher routes every
request to the shard owned by its ``(ps, pt)`` endpoint hash, so the
per-endpoint attachment maps, keyword conversions and answer LRUs of
one endpoint always land on the same warm shard.

Admission control is explicit: at most ``max_pending`` requests may be
in flight across the pool; anything beyond that is *shed* immediately
with an ``{"status": "overloaded"}`` answer instead of queueing into a
latency collapse.  Requests may additionally carry a wall-clock
deadline — a shard that dequeues an already-expired request answers
``expired`` without evaluating it.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import zlib
from typing import Dict, List, Optional, Sequence

from repro.serve.wire import answer_to_wire, query_from_wire

#: Extra seconds the dispatcher waits past a request deadline before
#: giving up on the shard's answer.
_DEADLINE_GRACE = 2.0
#: Fallback RPC timeout when a request has no deadline: long enough
#: for any sane query, short enough to detect a dead shard.
_DEFAULT_RPC_TIMEOUT = 300.0


def shard_for(ps: Sequence[float], pt: Sequence[float], shards: int) -> int:
    """The shard owning endpoint pair ``(ps, pt)`` (wire triples).

    Stable across processes and runs (CRC32 of the canonical repr, not
    ``hash()``), so repeated traffic for one endpoint pair always hits
    the same shard's warm caches.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    key = repr((tuple(float(v) for v in ps), tuple(float(v) for v in pt)))
    return zlib.crc32(key.encode("utf-8")) % shards


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker(shard_id: int,
                  snapshot_path: str,
                  requests,
                  responses,
                  options: Dict) -> None:
    """Entry point of one shard process."""
    from repro.core.engine import QueryService
    from repro.serve.snapshot import load_snapshot
    from repro.space.graph import DoorGraph
    from repro.space.skeleton import SkeletonIndex

    try:
        engine = load_snapshot(snapshot_path)
        service = QueryService(
            engine, workers=1,
            point_map_capacity=options.get("point_map_capacity", 128),
            keyword_cache_capacity=options.get("keyword_cache_capacity", 512),
            answer_cache_capacity=options.get("answer_cache_capacity", 1024))
    except Exception as exc:  # startup failure: report, don't hang
        responses.put({"kind": "ready", "shard": shard_id,
                       "error": repr(exc)})
        return
    responses.put({"kind": "ready", "shard": shard_id,
                   "csr_builds": DoorGraph.csr_builds,
                   "s2s_builds": SkeletonIndex.s2s_builds})
    allow_sleep = bool(options.get("allow_sleep"))
    while True:
        msg = requests.get()
        if msg is None or msg.get("kind") == "shutdown":
            break
        req_id = msg.get("id")
        base = {"kind": "response", "id": req_id, "shard": shard_id}
        if msg.get("kind") == "stats":
            snap = service.stats_snapshot()
            responses.put({**base, "status": "ok",
                           "stats": snap.as_dict()})
            continue
        started = time.perf_counter()
        try:
            deadline = msg.get("deadline")
            if deadline is not None and time.time() > deadline:
                responses.put({**base, "status": "expired"})
                continue
            if allow_sleep and msg.get("sleep"):
                # Test-only latency injection (saturation tests); the
                # HTTP surface never forwards a sleep field.
                time.sleep(float(msg["sleep"]))
            query = query_from_wire(msg["query"])
            answer = service.search(query, msg.get("algorithm", "ToE"))
            doc = answer_to_wire(answer)
            doc.update(base)
            doc["status"] = "ok"
            doc["elapsed"] = time.perf_counter() - started
            responses.put(doc)
        except Exception as exc:
            responses.put({**base, "status": "error", "error": repr(exc)})


# ----------------------------------------------------------------------
# Pool
# ----------------------------------------------------------------------
class _PendingSlot:
    __slots__ = ("event", "response")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[Dict] = None


class ShardPool:
    """A pool of shard processes serving one snapshot.

    The pool owns the request queue of every shard, one shared
    response queue, and a router thread matching responses back to
    blocked callers by request id.  ``call`` is the low-level blocking
    RPC; routing policy and admission control live in
    :class:`ShardDispatcher`.
    """

    def __init__(self,
                 snapshot_path: str,
                 shards: int = 2,
                 service_options: Optional[Dict] = None,
                 allow_sleep: bool = False,
                 start_timeout: float = 120.0,
                 mp_context: Optional[str] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        ctx = multiprocessing.get_context(mp_context)
        self.snapshot_path = str(snapshot_path)
        self.shards = shards
        options = dict(service_options or {})
        options["allow_sleep"] = allow_sleep
        self._requests = [ctx.Queue() for _ in range(shards)]
        self._responses = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_shard_worker,
                args=(i, self.snapshot_path, self._requests[i],
                      self._responses, options),
                daemon=True, name=f"ikrq-shard-{i}")
            for i in range(shards)
        ]
        self._lock = threading.Lock()
        self._pending: Dict[int, _PendingSlot] = {}
        self._next_id = 0
        self._closed = False
        #: Per-shard build counters reported at startup; snapshot loads
        #: must show no increment over the pre-fork value.
        self.worker_builds: List[Dict] = []
        for proc in self._procs:
            proc.start()
        ready = 0
        deadline = time.monotonic() + start_timeout
        while ready < shards:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError("shard pool start timed out")
            try:
                msg = self._responses.get(timeout=remaining)
            except Exception:
                continue
            if msg.get("kind") != "ready":
                continue
            if "error" in msg:
                self.close()
                raise RuntimeError(
                    f"shard {msg['shard']} failed to start: {msg['error']}")
            self.worker_builds.append(
                {"shard": msg["shard"],
                 "csr_builds": msg.get("csr_builds"),
                 "s2s_builds": msg.get("s2s_builds")})
            ready += 1
        self._router = threading.Thread(
            target=self._route_responses, daemon=True, name="ikrq-router")
        self._router.start()

    # ------------------------------------------------------------------
    def _route_responses(self) -> None:
        while True:
            try:
                msg = self._responses.get()
            except Exception:  # queue torn down at interpreter exit
                break
            if msg is None:
                break
            slot = None
            with self._lock:
                slot = self._pending.pop(msg.get("id"), None)
            if slot is not None:
                slot.response = msg
                slot.event.set()
            # A response whose caller timed out is dropped.

    def call(self,
             shard: int,
             payload: Dict,
             timeout: Optional[float] = None) -> Dict:
        """Blocking RPC to one shard; returns the response document.

        A timeout yields ``{"status": "timeout"}`` — the shard's late
        answer (if any) is discarded by the router.
        """
        if self._closed:
            raise RuntimeError("shard pool is closed")
        slot = _PendingSlot()
        with self._lock:
            self._next_id += 1
            req_id = self._next_id
            self._pending[req_id] = slot
        payload = dict(payload)
        payload["id"] = req_id
        self._requests[shard].put(payload)
        if not slot.event.wait(timeout if timeout is not None
                               else _DEFAULT_RPC_TIMEOUT):
            with self._lock:
                self._pending.pop(req_id, None)
            return {"status": "timeout", "id": req_id, "shard": shard}
        return slot.response or {"status": "error", "error": "empty response"}

    def stats(self, timeout: float = 30.0) -> List[Dict]:
        """One atomic :class:`ServiceStats` snapshot per shard."""
        return [self.call(shard, {"kind": "stats"}, timeout=timeout)
                for shard in range(self.shards)]

    # ------------------------------------------------------------------
    def close(self, join_timeout: float = 10.0) -> None:
        """Shut every shard down and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for queue in self._requests:
            try:
                queue.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=join_timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=join_timeout)
        try:
            self._responses.put(None)  # stop the router thread
        except Exception:
            pass
        router = getattr(self, "_router", None)
        if router is not None and router.is_alive():
            router.join(timeout=join_timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def alive(self) -> bool:
        return (not self._closed
                and all(proc.is_alive() for proc in self._procs))

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Admission control + dispatch
# ----------------------------------------------------------------------
class AdmissionController:
    """Bounded in-flight admission: admit or shed, never queue blindly."""

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.shed = 0

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_flight >= self.max_pending:
                self.shed += 1
                return False
            self._in_flight += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight


class ShardDispatcher:
    """Routes wire queries to shards; the serving front door.

    ``submit`` is thread-safe (the HTTP layer calls it from many
    handler threads) and always returns a response document — results,
    ``overloaded`` when admission sheds, ``expired``/``timeout`` when a
    deadline passes, or ``error``/``bad_request``.
    """

    def __init__(self,
                 pool: ShardPool,
                 max_pending: int = 64,
                 deadline_s: Optional[float] = None,
                 metrics=None) -> None:
        self.pool = pool
        self.admission = AdmissionController(max_pending)
        self.deadline_s = deadline_s
        self.metrics = metrics

    def _record(self, status: str, elapsed: Optional[float] = None) -> None:
        if self.metrics is None:
            return
        self.metrics.inc("ikrq_requests_total", status=status)
        if elapsed is not None:
            self.metrics.observe("ikrq_request_latency_seconds", elapsed)

    def submit(self,
               query_doc: Dict,
               algorithm: str = "ToE",
               deadline_s: Optional[float] = None,
               sleep: Optional[float] = None) -> Dict:
        """Evaluate one wire query through its affinity shard."""
        started = time.perf_counter()
        if (not isinstance(query_doc, dict)
                or "ps" not in query_doc or "pt" not in query_doc):
            self._record("bad_request")
            return {"status": "bad_request",
                    "error": "query must carry ps and pt"}
        if not self.admission.try_acquire():
            if self.metrics is not None:
                self.metrics.inc("ikrq_shed_total")
            self._record("overloaded")
            return {"status": "overloaded"}
        try:
            try:
                shard = shard_for(query_doc["ps"], query_doc["pt"],
                                  self.pool.shards)
            except (TypeError, ValueError) as exc:
                self._record("bad_request")
                return {"status": "bad_request", "error": repr(exc)}
            limit = deadline_s if deadline_s is not None else self.deadline_s
            payload: Dict = {"kind": "search", "query": query_doc,
                             "algorithm": algorithm}
            if limit is not None:
                payload["deadline"] = time.time() + limit
            if sleep is not None:
                payload["sleep"] = sleep
            timeout = (limit + _DEADLINE_GRACE) if limit is not None else None
            response = self.pool.call(shard, payload, timeout=timeout)
            if self.metrics is not None:
                # Shard-side evaluation time (excludes queueing and
                # dispatch): the second latency histogram on /metrics,
                # so p50/p95/p99 of pure search time can be read next
                # to the end-to-end request latencies.
                elapsed_shard = response.get("elapsed")
                if elapsed_shard is not None:
                    self.metrics.observe("ikrq_shard_search_latency_seconds",
                                         elapsed_shard, shard=shard)
            self._record(response.get("status", "error"),
                         time.perf_counter() - started)
            return response
        finally:
            self.admission.release()

"""JSON wire format of the serving surface.

Queries and answers cross process and HTTP boundaries as plain JSON
documents.  The encoding is lossless for everything the byte-identity
guarantee covers: floats round-trip exactly (``json`` emits the
shortest ``repr`` that parses back to the same double), door ids stay
ints, and free points become ``{"point": [x, y, level]}`` items.

A query document::

    {"ps": [x, y, level], "pt": [x, y, level], "delta": 60.0,
     "keywords": ["latte", "apple"], "k": 3,
     "alpha": 0.5, "tau": 0.2, "soft_slack": 0.0, "gamma": 0.0}

The *venue* a query targets is not part of the query document — it is
routing state, carried as a sibling field of the HTTP body
(``{"venue": "mall-a", "query": {...}}``) and echoed back on the
response together with the snapshot ``generation`` that served it.

An answer document (the ``routes`` payload is what the byte-identity
tests compare against a local ``engine.search``)::

    {"algorithm": "ToE",
     "routes": [{"items": [...], "vias": [...], "distance": ...,
                 "kp": [...], "relevance": ..., "score": ...}]}
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from repro.core.engine import QueryAnswer
from repro.core.query import IKRQ
from repro.core.results import RouteResult
from repro.geometry import Point

#: A wire route item: a door id, or a point wrapper dict.
WireItem = Union[int, Dict[str, List[float]]]


def point_to_wire(p: Point) -> List[float]:
    # Coerce: a Point built with int coordinates (level=0 is common)
    # would serialise as "0" where the wire round-trip yields "0.0",
    # breaking canonical-JSON byte-identity on numerically equal data.
    return [float(p.x), float(p.y), float(p.level)]


def point_from_wire(values: Sequence[float]) -> Point:
    if not isinstance(values, (list, tuple)) or len(values) not in (2, 3):
        raise ValueError(f"point must be [x, y] or [x, y, level], got {values!r}")
    coords = [float(v) for v in values]
    if len(coords) == 2:
        coords.append(0.0)
    return Point(coords[0], coords[1], coords[2])


def query_to_wire(query: IKRQ) -> Dict:
    return {
        "ps": point_to_wire(query.ps),
        "pt": point_to_wire(query.pt),
        "delta": query.delta,
        "keywords": list(query.keywords),
        "k": query.k,
        "alpha": query.alpha,
        "tau": query.tau,
        "soft_slack": query.soft_slack,
        "gamma": query.gamma,
    }


def query_from_wire(doc: Dict) -> IKRQ:
    if not isinstance(doc, dict):
        raise ValueError("query document must be a JSON object")
    try:
        ps = point_from_wire(doc["ps"])
        pt = point_from_wire(doc["pt"])
        delta = float(doc["delta"])
        keywords = tuple(str(w) for w in doc["keywords"])
    except KeyError as exc:
        raise ValueError(f"query document missing field {exc.args[0]!r}")
    return IKRQ(
        ps=ps, pt=pt, delta=delta, keywords=keywords,
        k=int(doc.get("k", 1)),
        alpha=float(doc.get("alpha", 0.5)),
        tau=float(doc.get("tau", 0.2)),
        soft_slack=float(doc.get("soft_slack", 0.0)),
        gamma=float(doc.get("gamma", 0.0)),
    )


def _item_to_wire(item) -> WireItem:
    if isinstance(item, int):
        return item
    return {"point": point_to_wire(item)}


def route_result_to_wire(result: RouteResult) -> Dict:
    route = result.route
    return {
        "items": [_item_to_wire(i) for i in route.items],
        "vias": list(route.vias),
        "distance": route.distance,
        "kp": list(result.kp),
        "relevance": result.relevance,
        "score": result.score,
    }


def answer_to_wire(answer: QueryAnswer) -> Dict:
    """The response payload: exactly what byte-identity compares."""
    return {
        "algorithm": answer.algorithm,
        "routes": [route_result_to_wire(r) for r in answer.routes],
    }


def canonical_json(doc) -> str:
    """One canonical byte representation of a wire document.

    Sorted keys, no whitespace — two answers are byte-identical iff
    their canonical JSON strings are equal.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Supervision control documents
# ----------------------------------------------------------------------
def ping_to_wire() -> Dict:
    """The supervisor's liveness probe.  Carries no ``id``: the pong is
    fire-and-forget and must never collide with the RPC slot table."""
    return {"kind": "ping"}


def pong_to_wire(shard: int, boot: int) -> Dict:
    """A worker's heartbeat reply.  ``boot`` is the worker's incarnation
    counter — the router only refreshes a shard's liveness clock when
    the boot matches, so a zombie predecessor's late pong cannot keep a
    replaced shard looking alive."""
    return {"kind": "pong", "shard": int(shard), "boot": int(boot)}


def shard_down_doc(shard: int,
                   reason: Optional[str] = None,
                   req_id: Optional[int] = None) -> Dict:
    """The synthetic response a caller gets when its shard is dead:
    the supervision layer's equivalent of ``timeout``, delivered
    immediately instead of after the full RPC wait."""
    doc: Dict = {"status": "shard_down", "shard": int(shard)}
    if reason is not None:
        doc["reason"] = str(reason)
    if req_id is not None:
        doc["id"] = req_id
    return doc


# ----------------------------------------------------------------------
# Trace wire documents
# ----------------------------------------------------------------------
def trace_request_to_wire(trace_id: str,
                          fine: bool,
                          enqueued_at: float) -> Dict:
    """The dispatcher's trace envelope riding on a shard payload.

    ``enqueued_at`` is a ``time.time()`` wall-clock stamp — the only
    clock comparable across the dispatcher and worker processes; the
    worker derives its queue-wait span from it.
    """
    return {"id": str(trace_id), "fine": bool(fine),
            "enqueued_at": float(enqueued_at)}


def trace_reply_to_wire(queue_wait_ms: float, spans: List[Dict]) -> Dict:
    """The worker's trace sub-tree riding back on a shard response:
    the measured queue wait plus the worker-side span forest (offsets
    relative to the worker's dequeue instant)."""
    return {"queue_wait_ms": round(float(queue_wait_ms), 3),
            "spans": list(spans)}

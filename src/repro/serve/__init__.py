"""Multi-venue sharded multi-process IKRQ serving.

The serve subsystem is the traffic-facing layer above
:class:`~repro.core.engine.QueryService`.  PR 1's threaded service is
capped by the GIL on the CPU-bound Dijkstra/expansion hot path; this
package beats that cap with worker *processes*, and hosts **many
venues** (malls, airports, hospitals) in one fleet:

* :mod:`repro.serve.snapshot` — a versioned on-disk bundle persisting
  the venue **and** its built indexes (CSR door graph, skeleton δs2s,
  warm KoE* door-matrix rows, an advisory prime table) so a worker
  cold-starts without rebuilding anything; the page-aligned binary
  payload can be ``mmap``-ed so co-hosted shard processes share one
  page-cache copy per generation,
* :mod:`repro.serve.registry` — the tenancy control plane: per-venue
  versioned snapshot generations with an atomic active-generation
  flip, the drain barrier behind zero-downtime hot-swaps, and the
  ``keep_last`` garbage-collection policy that deletes retired
  generation files beyond a rollback window,
* :mod:`repro.serve.pool` — a pool of shard processes, each hosting
  every venue's engines behind its own ``QueryService``s, plus a
  dispatcher that routes requests by ``(venue, ps, pt)``-affinity
  hashing (keeping each shard's per-endpoint/keyword/answer LRUs hot)
  behind a tenant-aware admission controller (pool-wide queue depth +
  per-venue quotas) that sheds load with explicit ``overloaded``
  answers, and the ``ingest`` hot-swap sequence,
* :mod:`repro.serve.metrics` — counters and latency histograms
  rendered in Prometheus text format (venue-labelled),
* :mod:`repro.serve.server` — a stdlib ``http.server`` surface
  (``POST /search``, ``POST /ingest``, ``POST /delta``,
  ``GET /venues``, ``GET /healthz``, ``GET /metrics``,
  ``GET /debug/traces``) wired to the dispatcher, reachable as
  ``python -m repro serve`` / ``python -m repro ingest``.

Dynamic state (:mod:`repro.dynamic`) rides on top: the dispatcher owns
a per-venue :class:`~repro.dynamic.state.DynamicStore` of versioned
immutable views (persistent door/partition closures, weekly door
schedules, keyword edits).  ``POST /delta`` derives the next view,
broadcasts keyword rewrites into every shard, and publishes it with
one atomic reference flip — concurrent searches are each answered
under exactly one ``dynamic_version``.  Closures reach workers as
compiled banned sets on the request payload, so shard processes stay
stateless for door state; see ``docs/dynamic.md``.

Every request is traced end to end (:mod:`repro.obs`): the dispatcher
records admission/generation/dispatch spans, the shard worker ships
its queue-wait/decode/engine sub-tree back on the response, and the
merged span tree — retained for sheds, errors, slow and sampled
requests — is served from ``GET /debug/traces`` and the ``repro
trace`` CLI, with per-stage latency histograms on ``/metrics`` and a
trace_id-stamped structured slow-query log.

Results are byte-identical to sequential ``IKRQEngine.search`` — the
wire format (:mod:`repro.serve.wire`) and every shared cache only move
values the per-query evaluation would compute itself, and a hot-swap
never blends generations within one answer.
"""

from repro.serve.faults import (FAULT_EXIT_CODE, FaultInjector, FaultPlan,
                                FaultRule)
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import (AdmissionController, ShardDispatcher,
                              ShardPool, TenantQuota, shard_for)
from repro.serve.registry import (DEFAULT_VENUE, Generation,
                                  SnapshotRegistry)
from repro.serve.server import IKRQServer
from repro.serve.snapshot import (BINARY_MAGIC, SNAPSHOT_ALIGN,
                                  SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
                                  SNAPSHOT_VERSION_BINARY,
                                  engine_from_snapshot, is_binary_snapshot,
                                  is_snapshot_document, load_snapshot,
                                  read_snapshot, save_snapshot,
                                  save_snapshot_binary, snapshot_to_dict)
from repro.serve.wire import (answer_to_wire, canonical_json,
                              query_from_wire, query_to_wire,
                              route_result_to_wire, trace_reply_to_wire,
                              trace_request_to_wire)

__all__ = [
    "AdmissionController",
    "BINARY_MAGIC",
    "DEFAULT_VENUE",
    "FAULT_EXIT_CODE",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "SNAPSHOT_ALIGN",
    "Generation",
    "IKRQServer",
    "MetricsRegistry",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_VERSION_BINARY",
    "ShardDispatcher",
    "ShardPool",
    "SnapshotRegistry",
    "TenantQuota",
    "answer_to_wire",
    "canonical_json",
    "engine_from_snapshot",
    "is_binary_snapshot",
    "is_snapshot_document",
    "load_snapshot",
    "query_from_wire",
    "query_to_wire",
    "read_snapshot",
    "route_result_to_wire",
    "save_snapshot",
    "save_snapshot_binary",
    "shard_for",
    "snapshot_to_dict",
    "trace_reply_to_wire",
    "trace_request_to_wire",
]

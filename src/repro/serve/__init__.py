"""Sharded multi-process IKRQ serving.

The serve subsystem is the traffic-facing layer above
:class:`~repro.core.engine.QueryService`.  PR 1's threaded service is
capped by the GIL on the CPU-bound Dijkstra/expansion hot path; this
package beats that cap with worker *processes*:

* :mod:`repro.serve.snapshot` — a versioned on-disk bundle persisting
  the venue **and** its built indexes (CSR door graph, skeleton δs2s,
  warm KoE* door-matrix rows, an advisory prime table) so a worker
  cold-starts without rebuilding anything,
* :mod:`repro.serve.pool` — a pool of shard processes, each loading
  the snapshot and running its own ``QueryService``, plus a dispatcher
  that routes requests by ``(ps, pt)``-affinity hashing (keeping each
  shard's per-endpoint/keyword/answer LRUs hot) behind an admission
  controller that sheds load with explicit ``overloaded`` answers,
* :mod:`repro.serve.metrics` — counters and latency histograms
  rendered in Prometheus text format,
* :mod:`repro.serve.server` — a stdlib ``http.server`` surface
  (``POST /search``, ``GET /healthz``, ``GET /metrics``) wired to the
  dispatcher, reachable as ``python -m repro serve``.

Results are byte-identical to sequential ``IKRQEngine.search`` — the
wire format (:mod:`repro.serve.wire`) and every shared cache only move
values the per-query evaluation would compute itself.
"""

from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import (AdmissionController, ShardDispatcher,
                              ShardPool, shard_for)
from repro.serve.server import IKRQServer
from repro.serve.snapshot import (BINARY_MAGIC, SNAPSHOT_FORMAT,
                                  SNAPSHOT_VERSION, SNAPSHOT_VERSION_BINARY,
                                  engine_from_snapshot, is_binary_snapshot,
                                  is_snapshot_document, load_snapshot,
                                  read_snapshot, save_snapshot,
                                  save_snapshot_binary, snapshot_to_dict)
from repro.serve.wire import (answer_to_wire, canonical_json,
                              query_from_wire, query_to_wire,
                              route_result_to_wire)

__all__ = [
    "AdmissionController",
    "BINARY_MAGIC",
    "IKRQServer",
    "MetricsRegistry",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SNAPSHOT_VERSION_BINARY",
    "ShardDispatcher",
    "ShardPool",
    "answer_to_wire",
    "canonical_json",
    "engine_from_snapshot",
    "is_binary_snapshot",
    "is_snapshot_document",
    "load_snapshot",
    "query_from_wire",
    "query_to_wire",
    "read_snapshot",
    "route_result_to_wire",
    "save_snapshot",
    "save_snapshot_binary",
    "shard_for",
    "snapshot_to_dict",
]

"""The stdlib HTTP surface of the sharded IKRQ server.

Endpoints:

* ``POST /search`` — body ``{"query": {...wire query...},
  "algorithm": "ToE", "deadline_s": 2.0}`` (the two last fields are
  optional).  Answers the dispatcher's response document; HTTP status
  maps the serving status (200 ok, 503 overloaded, 504
  expired/timeout, 400 bad request, 500 error).
* ``GET /healthz`` — liveness: pool size and shard process health.
* ``GET /metrics`` — Prometheus text: dispatcher counters/histograms
  plus one fresh atomic stats snapshot per shard, published as
  ``ikrq_shard_*`` gauges labelled by shard.

The handler threads only parse JSON and block on the dispatcher — all
CPU-bound search work happens in the shard processes, so a
``ThreadingHTTPServer`` is exactly enough.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import ShardDispatcher, ShardPool

_STATUS_HTTP = {
    "ok": 200,
    "bad_request": 400,
    "overloaded": 503,
    "expired": 504,
    "timeout": 504,
    "error": 500,
}


class _Handler(BaseHTTPRequestHandler):
    server: "_HTTPServer"

    # ------------------------------------------------------------------
    def _send_json(self, code: int, doc: Dict) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            pool = self.server.ikrq.pool
            healthy = pool.alive()
            self._send_json(200 if healthy else 503, {
                "status": "ok" if healthy else "degraded",
                "shards": pool.shards,
            })
            return
        if self.path == "/metrics":
            self._send_text(200, self.server.ikrq.render_metrics(),
                            content_type="text/plain; version=0.0.4")
            return
        self._send_json(404, {"status": "not_found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/search":
            self._send_json(404, {"status": "not_found", "path": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            doc = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"status": "bad_request",
                                  "error": repr(exc)})
            return
        if not isinstance(doc, dict):
            self._send_json(400, {"status": "bad_request",
                                  "error": "request body must be a JSON "
                                           "object"})
            return
        response = self.server.ikrq.dispatcher.submit(
            doc.get("query"),
            algorithm=doc.get("algorithm", "ToE"),
            deadline_s=doc.get("deadline_s"))
        response.pop("kind", None)
        code = _STATUS_HTTP.get(response.get("status"), 500)
        self._send_json(code, response)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the metrics endpoint replaces access logging


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    ikrq: "IKRQServer"


class IKRQServer:
    """Pool + dispatcher + HTTP front end, owned together.

    Example::

        server = IKRQServer(snapshot_path, workers=2)
        host, port = server.start()
        ...  # POST /search against http://host:port
        server.shutdown()
    """

    def __init__(self,
                 snapshot_path: str,
                 workers: int = 2,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 max_pending: int = 64,
                 deadline_s: Optional[float] = None,
                 service_options: Optional[Dict] = None) -> None:
        self.metrics = MetricsRegistry()
        self.pool = ShardPool(snapshot_path, shards=workers,
                              service_options=service_options)
        self.dispatcher = ShardDispatcher(
            self.pool, max_pending=max_pending, deadline_s=deadline_s,
            metrics=self.metrics)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.ikrq = self
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """Dispatcher metrics plus a fresh per-shard stats scrape."""
        for doc in self.pool.stats():
            if doc.get("status") != "ok":
                continue
            shard = doc.get("shard")
            self.metrics.merge_gauges(
                {f"ikrq_shard_{name}": value
                 for name, value in doc.get("stats", {}).items()},
                shard=shard)
        self.metrics.set_gauge("ikrq_shards", self.pool.shards)
        self.metrics.set_gauge(
            "ikrq_in_flight", self.dispatcher.admission.in_flight)
        return self.metrics.render()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="ikrq-http")
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the HTTP loop, then the shard pool — clean exit."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.pool.close()

    def __enter__(self) -> "IKRQServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""The stdlib HTTP surface of the multi-venue sharded IKRQ server.

Endpoints:

* ``POST /search`` — body ``{"venue": "mall-a", "query": {...wire
  query...}, "algorithm": "ToE", "deadline_s": 2.0}`` (all but
  ``query`` optional; ``venue`` defaults to ``"default"``).  Answers
  the dispatcher's response document — which carries the ``venue`` and
  snapshot ``generation`` that served it; HTTP status maps the serving
  status (200 ok, 404 unknown venue, 503 overloaded, 504
  expired/timeout, 400 bad request, 500 error).
* ``POST /ingest`` — body ``{"venue": "mall-a", "snapshot":
  "/path/on/server.snap", "wait": true}``: load the snapshot as the
  venue's next generation and hot-swap it in (see
  :meth:`~repro.serve.pool.ShardDispatcher.ingest`).  ``wait: false``
  returns ``accepted`` immediately and swaps in a background thread.
* ``POST /delta`` — body ``{"venue": "mall-a", "ops": [...]}``: apply
  dynamic edits (door closures, partition seals, door schedules,
  keyword rewrites — see :mod:`repro.dynamic.state` for the op
  vocabulary) over the venue's immutable snapshot, without an ingest.
  The new view is published atomically: every concurrent ``/search``
  is answered under exactly one ``dynamic_version``, never a blend.
  ``/search`` bodies may additionally carry per-query ``"closures"``
  (a ``{"closed_doors": [...], "sealed_partitions": [...]}`` overlay
  merged on top of the venue's persistent one) and ``"at"`` (a
  timestamp, seconds; door schedules compile against it).
* ``GET /venues`` — tenancy control plane: every hosted venue, its
  generations and their lifecycle states, plus per-venue admission
  counters and quotas.
* ``GET /healthz`` — deep liveness: pool size, live-shard count, one
  per-shard supervision record (state, boot/restart counters, pid,
  last failure reason), hosted venue count, and the pool-wide
  restart/failover/late-response totals.  200 only when every shard
  is serving; ``degraded`` (some live) and ``down`` (none) are 503.
* ``GET /metrics`` — Prometheus text: dispatcher counters/histograms
  (labelled by venue) plus one fresh atomic stats snapshot per shard,
  published as ``ikrq_shard_*`` gauges labelled by shard — and by
  venue for the per-tenant breakdown.
* ``GET /debug/traces`` — newest-first summaries of the retained
  request traces (``?limit=N`` and ``?venue=id`` filter); ``GET
  /debug/traces/<trace_id>`` answers one full span tree.  Retention
  follows the dispatcher's :class:`~repro.obs.TracePolicy`: sheds,
  errors and slow requests always, a probabilistic sample otherwise
  (``repro serve --trace-sample / --slow-ms``), and any request whose
  ``POST /search`` body carries ``"trace": true``.

The handler threads only parse JSON and block on the dispatcher — all
CPU-bound search work happens in the shard processes, so a
``ThreadingHTTPServer`` is exactly enough.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.trace import TraceBuffer, TracePolicy
from repro.serve.metrics import MetricsRegistry
from repro.serve.pool import ShardDispatcher, ShardPool, TenantQuota
from repro.serve.snapshot import is_binary_snapshot, is_snapshot_document

_STATUS_HTTP = {
    "ok": 200,
    "accepted": 202,
    "bad_request": 400,
    "unknown_venue": 404,
    "overloaded": 503,
    "shard_down": 503,
    "stale_delta": 503,
    "expired": 504,
    "timeout": 504,
    "error": 500,
}


class _Handler(BaseHTTPRequestHandler):
    server: "_HTTPServer"

    # ------------------------------------------------------------------
    def _send_json(self, code: int, doc: Dict) -> None:
        body = json.dumps(doc).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
            doc = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"status": "bad_request",
                                  "error": repr(exc)})
            return None
        if not isinstance(doc, dict):
            self._send_json(400, {"status": "bad_request",
                                  "error": "request body must be a JSON "
                                           "object"})
            return None
        return doc

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            ikrq = self.server.ikrq
            pool = ikrq.pool
            workers = pool.shard_states()
            live = sum(1 for w in workers if w["state"] == "up")
            if live == pool.shards and not pool.closed:
                status, code = "ok", 200
            elif live > 0:
                status, code = "degraded", 503
            else:
                status, code = "down", 503
            self._send_json(code, {
                "status": status,
                "shards": pool.shards,
                "live_shards": live,
                "venues": len(ikrq.dispatcher.registry.venues()),
                "workers": workers,
                "restarts_total": pool.restarts_total,
                "failovers_total": ikrq.dispatcher.failovers,
                "late_responses_total": pool.late_responses,
            })
            return
        if self.path == "/venues":
            ikrq = self.server.ikrq
            dispatcher = ikrq.dispatcher
            counters = dispatcher.admission.venue_counters()
            memory = ikrq.venue_memory()
            venues = []
            for doc in dispatcher.registry.describe():
                doc = dict(doc)
                admission = counters.get(doc["venue"])
                if admission is None:
                    # No traffic yet: synthesise the venue's zeroed
                    # counters so the quota is still visible.
                    quota = dispatcher.admission.quota_for(doc["venue"])
                    admission = {"in_flight": 0, "admitted": 0, "shed": 0,
                                 "max_in_flight": (quota.max_in_flight
                                                   if quota is not None
                                                   else None)}
                doc["admission"] = admission
                dynamic = dispatcher.dynamic.view(doc["venue"])
                if dynamic.version:
                    doc["dynamic"] = dynamic.describe()
                doc["generations"] = [
                    {**gen,
                     **({"memory": memory[(doc["venue"],
                                           gen["generation"])]}
                        if (doc["venue"], gen["generation"]) in memory
                        else {})}
                    for gen in doc["generations"]]
                venues.append(doc)
            self._send_json(200, {"status": "ok", "venues": venues})
            return
        if self.path == "/metrics":
            self._send_text(200, self.server.ikrq.render_metrics(),
                            content_type="text/plain; version=0.0.4")
            return
        if self.path.startswith("/debug/traces"):
            self._get_traces()
            return
        self._send_json(404, {"status": "not_found", "path": self.path})

    def _get_traces(self) -> None:
        """``/debug/traces`` (summaries) and ``/debug/traces/<id>``."""
        parsed = urlparse(self.path)
        buffer = self.server.ikrq.dispatcher.trace_buffer
        rest = parsed.path[len("/debug/traces"):].strip("/")
        if rest:
            doc = buffer.get(rest)
            if doc is None:
                self._send_json(404, {"status": "not_found",
                                      "trace_id": rest})
                return
            self._send_json(200, {"status": "ok", "trace": doc})
            return
        params = parse_qs(parsed.query)
        try:
            limit = int(params.get("limit", ["50"])[0])
        except ValueError:
            self._send_json(400, {"status": "bad_request",
                                  "error": "limit must be an integer"})
            return
        venue = params.get("venue", [None])[0]
        self._send_json(200, {"status": "ok",
                              "traces": buffer.recent(limit=limit,
                                                      venue=venue)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/search":
            doc = self._read_body()
            if doc is None:
                return
            response = self.server.ikrq.dispatcher.submit(
                doc.get("query"),
                algorithm=doc.get("algorithm", "ToE"),
                deadline_s=doc.get("deadline_s"),
                venue=doc.get("venue"),
                trace=bool(doc.get("trace")),
                closures=doc.get("closures"),
                at=doc.get("at"))
            response.pop("kind", None)
            code = _STATUS_HTTP.get(response.get("status"), 500)
            self._send_json(code, response)
            return
        if self.path == "/ingest":
            doc = self._read_body()
            if doc is None:
                return
            response = self.server.ikrq.ingest(
                doc.get("venue"), doc.get("snapshot"),
                wait=doc.get("wait", True))
            code = _STATUS_HTTP.get(response.get("status"), 500)
            self._send_json(code, response)
            return
        if self.path == "/delta":
            doc = self._read_body()
            if doc is None:
                return
            venue = doc.get("venue")
            if not venue or not isinstance(venue, str):
                self._send_json(400, {"status": "bad_request",
                                      "error": "delta needs a venue id"})
                return
            response = self.server.ikrq.dispatcher.delta(
                venue, doc.get("ops"))
            code = _STATUS_HTTP.get(response.get("status"), 500)
            self._send_json(code, response)
            return
        self._send_json(404, {"status": "not_found", "path": self.path})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the metrics endpoint replaces access logging


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # socketserver's default listen backlog (5) drops connections under
    # open-loop burst arrivals — admission control must be the only
    # thing that sheds, so size the accept queue for traffic spikes.
    request_queue_size = 128
    ikrq: "IKRQServer"


class IKRQServer:
    """Pool + tenant dispatcher + HTTP front end, owned together.

    Single tenant (the venue is hosted as ``"default"``)::

        server = IKRQServer(snapshot_path, workers=2)

    Multi-tenant, with a per-venue admission quota::

        server = IKRQServer(
            venues={"mall-a": "a.snap", "airport-b": "b.snap"},
            workers=4, max_pending=64,
            default_quota=TenantQuota(max_in_flight=16))
        host, port = server.start()
        ...  # POST /search {"venue": "mall-a", ...}
        server.ingest("mall-a", "a.v2.snap")   # zero-downtime swap
        server.shutdown()
    """

    def __init__(self,
                 snapshot_path: Optional[str] = None,
                 workers: int = 2,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 max_pending: int = 64,
                 deadline_s: Optional[float] = None,
                 service_options: Optional[Dict] = None,
                 venues: Optional[Mapping[str, str]] = None,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Mapping[str, TenantQuota]] = None,
                 mmap_snapshots: bool = False,
                 matrix_spill_dir: Optional[str] = None,
                 matrix_max_rows: Optional[int] = None,
                 gc_keep_last: Optional[int] = None,
                 kernel: Optional[str] = None,
                 trace_sample: float = 0.01,
                 slow_ms: float = 500.0,
                 trace_buffer_size: int = 256,
                 heartbeat_interval: float = 2.0,
                 heartbeat_timeout: float = 30.0,
                 restart_backoff_s: float = 0.5,
                 restart_budget: int = 5,
                 failover_retries: int = 1,
                 fault_plan=None) -> None:
        self.metrics = MetricsRegistry()
        options = dict(service_options or {})
        if mmap_snapshots:
            options["mmap"] = True
        if matrix_spill_dir is not None:
            options["matrix_spill_dir"] = str(matrix_spill_dir)
        if matrix_max_rows is not None:
            options["matrix_max_rows"] = matrix_max_rows
        if kernel is not None:
            options["kernel"] = kernel
        self.pool = ShardPool(snapshot_path, shards=workers,
                              service_options=options,
                              venues=venues,
                              heartbeat_interval=heartbeat_interval,
                              heartbeat_timeout=heartbeat_timeout,
                              restart_backoff_s=restart_backoff_s,
                              restart_budget=restart_budget,
                              fault_plan=fault_plan)
        self.dispatcher = ShardDispatcher(
            self.pool, max_pending=max_pending, deadline_s=deadline_s,
            metrics=self.metrics, default_quota=default_quota,
            quotas=quotas, gc_keep_last=gc_keep_last,
            trace_policy=TracePolicy(sample_rate=trace_sample,
                                     slow_ms=slow_ms),
            trace_buffer=TraceBuffer(capacity=trace_buffer_size),
            failover_retries=failover_retries)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.ikrq = self
        self._thread: Optional[threading.Thread] = None
        self._memory_lock = threading.Lock()
        self._memory_cache: Tuple[float, Dict] = (0.0, {})

    # ------------------------------------------------------------------
    # Ingest (the server-side half of ``repro ingest``)
    # ------------------------------------------------------------------
    def ingest(self,
               venue: Optional[str],
               snapshot_path: Optional[str],
               wait: bool = True) -> Dict:
        """Hot-swap ``venue`` onto ``snapshot_path``.

        The path must name a snapshot file readable by the *server*
        process (either encoding); it is validated before any shard is
        touched.  ``wait=False`` runs the swap in a background thread
        and answers ``accepted`` immediately — the generation number
        is only allocated once the background ingest starts, so watch
        ``GET /venues`` for the flip.
        """
        if not venue or not isinstance(venue, str):
            return {"status": "bad_request",
                    "error": "ingest needs a venue id"}
        if not snapshot_path or not isinstance(snapshot_path, str):
            return {"status": "bad_request",
                    "error": "ingest needs a snapshot path"}
        try:
            if not is_binary_snapshot(snapshot_path):
                with open(snapshot_path, "r", encoding="utf-8") as fh:
                    if not is_snapshot_document(json.load(fh)):
                        raise ValueError("not a snapshot document")
        except (OSError, ValueError) as exc:
            return {"status": "bad_request",
                    "error": f"unreadable snapshot {snapshot_path!r}: "
                             f"{exc!r}"}
        if wait:
            return self.dispatcher.ingest(venue, snapshot_path)
        thread = threading.Thread(
            target=self.dispatcher.ingest, args=(venue, snapshot_path),
            daemon=True, name=f"ikrq-ingest-{venue}")
        thread.start()
        return {"status": "accepted", "venue": venue}

    # ------------------------------------------------------------------
    #: How long a ``venue_memory`` scrape stays fresh.  The breakdown
    #: rides on a stats RPC broadcast that queues behind each
    #: single-threaded shard's in-flight searches, so ``/venues``
    #: polling must not multiply that load or stall behind one slow
    #: query more than once per window.
    MEMORY_CACHE_TTL = 5.0

    def venue_memory(self) -> Dict[Tuple[str, int], Dict[str, int]]:
        """Per-``(venue, generation)`` memory breakdown, summed over
        shards (cached for :data:`MEMORY_CACHE_TTL` seconds).

        ``heap_bytes`` is genuinely additive (every shard holds its
        own copy); ``mapped_bytes`` sums each shard's mapping of the
        *same* snapshot file, i.e. it is virtual address space over
        one shared page-cache copy — the physical cost is roughly the
        per-shard value, not the sum.  ``docs/memory.md`` spells out
        how to read the two.
        """
        with self._memory_lock:
            stamp, cached = self._memory_cache
            if time.monotonic() - stamp < self.MEMORY_CACHE_TTL:
                return cached
        out: Dict[Tuple[str, int], Dict[str, int]] = {}
        for doc in self.pool.stats():
            if doc.get("status") != "ok":
                continue
            for entry in doc.get("venue_stats", []):
                key = (entry.get("venue"), entry.get("generation"))
                agg = out.setdefault(key, {})
                for name, value in (entry.get("memory") or {}).items():
                    agg[name] = agg.get(name, 0) + int(value)
        with self._memory_lock:
            self._memory_cache = (time.monotonic(), out)
        return out

    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """Dispatcher metrics plus a fresh per-shard stats scrape.

        Aggregate per-shard gauges keep their PR-2 names
        (``ikrq_shard_<counter>{shard=...}``); the per-tenant
        breakdown adds a ``venue`` label, and registry/admission state
        surfaces as ``ikrq_venue_*`` gauges.  Per-generation gauge
        series are dropped and re-published on every scrape, so a
        retired generation's rows disappear instead of rendering their
        frozen final values forever.
        """
        self.metrics.drop_gauges("generation")
        search_totals: Dict[str, Dict[str, int]] = {}
        for doc in self.pool.stats():
            if doc.get("status") != "ok":
                continue
            shard = doc.get("shard")
            self.metrics.merge_gauges(
                {f"ikrq_shard_{name}": value
                 for name, value in doc.get("stats", {}).items()},
                shard=shard)
            if doc.get("rss_bytes"):
                self.metrics.set_gauge("ikrq_shard_rss_bytes",
                                       doc["rss_bytes"], shard=shard)
            for entry in doc.get("venue_stats", []):
                self.metrics.merge_gauges(
                    {f"ikrq_shard_{name}": value
                     for name, value in entry.get("stats", {}).items()},
                    shard=shard, venue=entry.get("venue"),
                    generation=entry.get("generation"))
                # Per-venue SearchStats sums (expansions, cache
                # hits/misses, evictions …): accumulated per venue
                # across shards and generations, published below as
                # ikrq_search_<counter>{venue=...}.
                totals = search_totals.setdefault(entry.get("venue"), {})
                for name, value in (entry.get("search") or {}).items():
                    totals[name] = totals.get(name, 0) + int(value)
                # The memory tier breakdown of each loaded (venue,
                # generation): heap vs. mapped vs. spilled bytes.
                self.metrics.merge_gauges(
                    {f"ikrq_shard_memory_{name}": value
                     for name, value in (entry.get("memory") or {}).items()},
                    shard=shard, venue=entry.get("venue"),
                    generation=entry.get("generation"))
                # Which compute tier each shard actually runs: an info
                # gauge (constant 1) carrying the backend as a label,
                # so operators can assert the fleet is on the fast
                # kernel rather than silently degraded to python.
                if entry.get("kernel"):
                    self.metrics.set_gauge(
                        "ikrq_shard_kernel_info", 1, shard=shard,
                        venue=entry.get("venue"),
                        generation=entry.get("generation"),
                        kernel=entry.get("kernel"))
        for venue, totals in search_totals.items():
            self.metrics.merge_gauges(
                {f"ikrq_search_{name}": value
                 for name, value in totals.items()}, venue=venue)
        registry = self.dispatcher.registry
        for venue in registry.venues():
            active = registry.active_generation(venue)
            if active is not None:
                self.metrics.set_gauge("ikrq_venue_active_generation",
                                       active, venue=venue)
        for venue, counters in (
                self.dispatcher.admission.venue_counters().items()):
            self.metrics.set_gauge("ikrq_venue_in_flight",
                                   counters["in_flight"], venue=venue)
            self.metrics.set_gauge("ikrq_venue_shed_total",
                                   counters["shed"], venue=venue)
            if counters.get("max_in_flight") is not None:
                self.metrics.set_gauge("ikrq_venue_quota_max_in_flight",
                                       counters["max_in_flight"],
                                       venue=venue)
        live = 0
        for worker in self.pool.shard_states():
            up = 1 if worker["state"] == "up" else 0
            live += up
            self.metrics.set_gauge("ikrq_shard_up", up,
                                   shard=worker["shard"])
        self.metrics.set_gauge("ikrq_live_shards", live)
        self.metrics.set_gauge("ikrq_worker_restarts",
                               self.pool.restarts_total)
        self.metrics.set_gauge("ikrq_shards", self.pool.shards)
        self.metrics.set_gauge("ikrq_venues",
                               len(registry.venues()))
        self.metrics.set_gauge(
            "ikrq_in_flight", self.dispatcher.admission.in_flight)
        return self.metrics.render()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="ikrq-http")
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop the HTTP loop, then the shard pool — clean exit."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.pool.close()

    def __enter__(self) -> "IKRQServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""Request tracing: span trees, sampling policy, and the trace ring.

One serving request crosses four layers — admission, dispatch queue,
shard process, engine — and a p99 regression is only actionable when
it can be *attributed* to one of them.  This module holds the
stdlib-only building blocks the serve stack threads through itself:

* :func:`span_doc` / :class:`TraceRecorder` — the span-tree model.  A
  span is a plain JSON document ``{"name", "start_ms", "duration_ms",
  "annotations", "children"}`` with times in milliseconds relative to
  the request's admission, so span trees cross the control-channel
  wire unchanged and render the same everywhere.
* :class:`EngineTrace` — the engine-stage collector a shard worker
  hands to :meth:`~repro.core.engine.QueryService.search`.  With
  ``fine=True`` it attaches the
  :meth:`~repro.core.query.QueryContext.attach_stage_probe` wall-clock
  probes, splitting the engine span into the PR-6 ``relaxation`` /
  ``lower_bound`` / ``merge`` stages; coarse traces skip the probes
  and cost a handful of ``perf_counter`` calls.
* :class:`TracePolicy` — who gets kept: sheds, errors and slow
  requests always; a probabilistic ``sample_rate`` otherwise (the
  sampled requests also carry the fine engine split).
* :class:`TraceBuffer` — a bounded in-memory ring of finished trace
  documents, served by ``GET /debug/traces`` and the ``repro trace``
  CLI.

Tracing never changes answers: probes only wrap entry points with
timers, and every recorded value is derived from state the evaluation
produces anyway.  The serve smoke and the kernel CI matrix gate that
byte-identity with tracing forced on.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Canonical stage names, dispatcher to engine.  ``STAGES`` is the
#: label vocabulary of the ``ikrq_stage_latency_seconds`` histograms —
#: a closed set, so garbage traffic cannot mint new series.
STAGE_ADMISSION = "admission"
STAGE_GENERATION = "generation_acquire"
STAGE_DISPATCH = "shard_dispatch"
STAGE_QUEUE_WAIT = "queue_wait"
STAGE_DECODE = "wire_decode"
STAGE_ENGINE = "engine"
STAGE_RELAXATION = "relaxation"
STAGE_LOWER_BOUND = "lower_bound"
STAGE_MERGE = "merge"

STAGES = (
    STAGE_ADMISSION, STAGE_GENERATION, STAGE_DISPATCH, STAGE_QUEUE_WAIT,
    STAGE_DECODE, STAGE_ENGINE, STAGE_RELAXATION, STAGE_LOWER_BOUND,
    STAGE_MERGE,
)


def new_trace_id() -> str:
    """A fresh 16-hex-char request trace id."""
    return uuid.uuid4().hex[:16]


def span_doc(name: str,
             start_ms: float,
             duration_ms: float,
             children: Optional[List[Dict]] = None,
             **annotations) -> Dict:
    """One span as a plain JSON document (the wire/storage shape)."""
    doc: Dict = {"name": str(name),
                 "start_ms": round(float(start_ms), 3),
                 "duration_ms": round(float(duration_ms), 3)}
    if annotations:
        doc["annotations"] = annotations
    if children:
        doc["children"] = list(children)
    return doc


def shift_spans(spans: List[Dict], offset_ms: float) -> List[Dict]:
    """Shift a span forest's ``start_ms`` by ``offset_ms`` (recursive).

    The shard worker records offsets relative to its own dequeue
    instant; the dispatcher shifts them onto the request clock when it
    nests them under the dispatch span.
    """
    out = []
    for span in spans:
        doc = dict(span)
        doc["start_ms"] = round(doc.get("start_ms", 0.0) + offset_ms, 3)
        if doc.get("children"):
            doc["children"] = shift_spans(doc["children"], offset_ms)
        out.append(doc)
    return out


def iter_spans(spans: List[Dict]) -> Iterator[Dict]:
    """Depth-first iteration over a span forest."""
    for span in spans:
        yield span
        yield from iter_spans(span.get("children", ()))


class TraceRecorder:
    """Builds one request's span tree on the dispatcher's clock.

    ``span`` is a context manager; nesting follows the call structure
    (an open span adopts spans opened inside it).  ``attach`` grafts
    already-built span documents (the shard worker's sub-tree) onto
    the innermost open span.  Not thread-safe — one recorder belongs
    to one request on one handler thread.
    """

    __slots__ = ("trace_id", "annotations", "_t0", "_spans", "_stack")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.annotations: Dict = {}
        self._t0 = time.perf_counter()
        self._spans: List[Dict] = []
        self._stack: List[Dict] = []

    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0

    @contextmanager
    def span(self, name: str, **annotations):
        """Record one span around a ``with`` block; yields a mutable
        frame whose ``annotations`` may be filled in before exit."""
        frame = {"name": name, "start_ms": self.elapsed_ms(),
                 "annotations": dict(annotations), "children": []}
        self._stack.append(frame)
        try:
            yield frame
        finally:
            self._stack.pop()
            doc = span_doc(frame["name"], frame["start_ms"],
                           self.elapsed_ms() - frame["start_ms"],
                           children=frame["children"],
                           **frame["annotations"])
            target = (self._stack[-1]["children"] if self._stack
                      else self._spans)
            target.append(doc)

    def attach(self, spans: List[Dict]) -> None:
        """Graft finished span documents under the innermost open span
        (or at the top level when none is open)."""
        target = (self._stack[-1]["children"] if self._stack
                  else self._spans)
        target.extend(spans)

    def annotate(self, **fields) -> None:
        self.annotations.update(fields)

    def finish(self, status: str, **fields) -> Dict:
        """The finished trace document (id, status, duration, spans)."""
        doc: Dict = {
            "trace_id": self.trace_id,
            "status": str(status),
            "duration_ms": round(self.elapsed_ms(), 3),
            "ts": time.time(),
            "spans": self._spans,
        }
        doc.update(self.annotations)
        doc.update(fields)
        return doc


class EngineTrace:
    """Engine-stage collector for one :meth:`QueryService.search`.

    ``stages`` accumulates wall seconds per fine stage (``relaxation``
    / ``lower_bound``) when ``fine`` is set — the service attaches the
    context's stage probe; a coarse trace leaves it empty.
    ``annotations`` carries evaluation facts (answer-cache hit/miss,
    later the :class:`~repro.core.stats.SearchStats` picks).
    """

    __slots__ = ("fine", "stages", "annotations")

    def __init__(self, fine: bool = False) -> None:
        self.fine = bool(fine)
        self.stages: Dict[str, float] = {}
        self.annotations: Dict = {}

    def annotate(self, **fields) -> None:
        self.annotations.update(fields)

    def stage_spans(self, start_ms: float, total_ms: float) -> List[Dict]:
        """The engine span's children: measured fine stages plus the
        ``merge`` residual (everything the probes do not cover).
        Empty for a coarse trace — the engine span stays a leaf."""
        if not self.stages:
            return []
        spans: List[Dict] = []
        cursor = start_ms
        for name in (STAGE_RELAXATION, STAGE_LOWER_BOUND):
            seconds = self.stages.get(name)
            if seconds is None:
                continue
            ms = seconds * 1000.0
            spans.append(span_doc(name, cursor, ms))
            cursor += ms
        merge_ms = max(0.0, total_ms - (cursor - start_ms))
        spans.append(span_doc(STAGE_MERGE, cursor, merge_ms))
        return spans


class TracePolicy:
    """Which requests get a retained trace, and at what detail.

    * ``sample()`` — the *upfront* decision: sampled requests carry
      the fine engine-stage split and are always retained.
    * sheds, errors (any non-``ok`` status) and slow requests
      (``duration >= slow_ms``) are retained even when not sampled —
      their coarse span tree is always recorded, so forensics never
      depend on sampling luck.
    * ``slow_ms <= 0`` disables the slow threshold; ``sample_rate``
      outside ``(0, 1]`` means never/always.
    """

    def __init__(self,
                 sample_rate: float = 0.01,
                 slow_ms: float = 500.0,
                 rng: Optional[random.Random] = None) -> None:
        if sample_rate < 0.0 or sample_rate > 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = float(sample_rate)
        self.slow_ms = float(slow_ms)
        self._rng = rng or random.Random()

    def sample(self) -> bool:
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            return True
        return self._rng.random() < self.sample_rate

    def is_slow(self, duration_ms: float) -> bool:
        return self.slow_ms > 0.0 and duration_ms >= self.slow_ms

    def keep_reason(self,
                    status: str,
                    duration_ms: float,
                    sampled: bool,
                    forced: bool = False) -> Optional[str]:
        """Why this trace is retained (``None`` drops it)."""
        if forced:
            return "forced"
        if status == "overloaded":
            return "shed"
        if status != "ok":
            return "error"
        if self.is_slow(duration_ms):
            return "slow"
        if sampled:
            return "sampled"
        return None


#: Summary fields of ``GET /debug/traces`` listings.
_SUMMARY_FIELDS = ("trace_id", "venue", "generation", "status",
                   "duration_ms", "slow", "reason", "algorithm", "shard",
                   "ts")


class TraceBuffer:
    """A bounded, thread-safe ring of finished trace documents.

    Insertion order is retention order: past ``capacity`` traces the
    oldest is evicted.  ``recent`` lists newest-first summaries;
    ``get`` returns one full span tree by trace id.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Dict]" = OrderedDict()

    def add(self, doc: Dict) -> None:
        trace_id = doc["trace_id"]
        with self._lock:
            self._traces[trace_id] = doc
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict]:
        with self._lock:
            return self._traces.get(trace_id)

    def recent(self,
               limit: int = 50,
               venue: Optional[str] = None) -> List[Dict]:
        with self._lock:
            docs = list(self._traces.values())
        docs.reverse()
        if venue is not None:
            docs = [doc for doc in docs if doc.get("venue") == venue]
        return [{key: doc.get(key) for key in _SUMMARY_FIELDS
                 if doc.get(key) is not None}
                for doc in docs[:max(0, int(limit))]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


def _format_annotations(annotations: Dict) -> str:
    return " ".join(f"{key}={value}"
                    for key, value in sorted(annotations.items()))


def _format_span(span: Dict, indent: str, last: bool, lines: List[str]):
    branch = "└─ " if last else "├─ "
    note = _format_annotations(span.get("annotations", {}))
    lines.append(f"{indent}{branch}{span['name']:<18} "
                 f"{span.get('duration_ms', 0.0):9.3f} ms"
                 + (f"  {note}" if note else ""))
    children = span.get("children", [])
    child_indent = indent + ("   " if last else "│  ")
    for i, child in enumerate(children):
        _format_span(child, child_indent, i == len(children) - 1, lines)


def format_trace(doc: Dict) -> str:
    """Pretty-print one trace document as an indented span tree
    (the ``repro trace`` CLI rendering)."""
    header = (f"trace {doc.get('trace_id')} "
              f"venue={doc.get('venue', '?')} "
              f"status={doc.get('status', '?')} "
              f"{doc.get('duration_ms', 0.0):.3f} ms")
    extras = []
    for key in ("generation", "algorithm", "shard", "reason"):
        if doc.get(key) is not None:
            extras.append(f"{key}={doc[key]}")
    if doc.get("slow"):
        extras.append("slow")
    if extras:
        header += "  (" + ", ".join(extras) + ")"
    lines = [header]
    spans = doc.get("spans", [])
    for i, span in enumerate(spans):
        _format_span(span, "", i == len(spans) - 1, lines)
    return "\n".join(lines)

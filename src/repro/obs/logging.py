"""Structured JSON-lines logging for the serve stack.

The ad-hoc ``repro.serve`` logger calls used %-style prose; a fleet
wants one event per line, machine-parsable, stamped with the request's
``trace_id`` so a slow-query log line joins against its span tree in
``/debug/traces``.  Everything here is stdlib ``logging`` — the
formatter renders each record as one JSON object:

    {"ts": 1754500000.123, "level": "WARNING", "logger": "repro.serve",
     "event": "slow_query", "trace_id": "9f2c...", "venue": "default",
     "duration_ms": 612.4, ...}

``log_event`` is the emission helper (event name + keyword fields);
``setup_serve_logging`` installs the formatter on the ``repro``
logger tree, idempotently, so repeated in-process server starts (the
smoke, tests) do not stack handlers.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional


class JsonLinesFormatter(logging.Formatter):
    """Render each log record as one JSON object per line.

    Structured fields ride in ``record.fields`` (a dict installed via
    ``extra={"fields": ...}``); the plain message becomes the
    ``event`` when no explicit event field is present.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
        }
        fields = getattr(record, "fields", None) or {}
        if "event" not in fields:
            doc["event"] = record.getMessage()
        for key, value in fields.items():
            if key not in doc:
                doc[key] = value
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=False, default=str)


def log_event(logger: logging.Logger, level: int, event: str,
              **fields) -> None:
    """Emit one structured event (``event`` plus keyword fields)."""
    if not logger.isEnabledFor(level):
        return
    fields = dict(fields)
    fields.setdefault("event", event)
    logger.log(level, event, extra={"fields": fields})


_HANDLER_MARK = "_repro_obs_handler"


def setup_serve_logging(level: int = logging.INFO,
                        stream: Optional[IO[str]] = None) -> logging.Logger:
    """Install the JSON-lines handler on the ``repro`` logger tree.

    Idempotent: a handler installed by a previous call is replaced,
    never duplicated (the smoke starts servers repeatedly in one
    process).  Returns the ``repro`` root logger.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLinesFormatter())
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root

"""`python -m repro` — query a serialized venue from the shell.

Workflow::

    # export a venue (e.g. from a generator or your own builder)
    python -m repro export-fig1 venue.json

    # inspect it
    python -m repro info venue.json

    # ask for routes
    python -m repro query venue.json \
        --from 7.4,39.5,0 --to 23.3,31.4,0 \
        --delta 60 --keywords latte,apple --k 3 --algorithm ToE

    # draw a floor with the best route
    python -m repro render venue.json --floor 0 --out floor.svg \
        --from 7.4,39.5,0 --to 23.3,31.4,0 --delta 60 --keywords latte

    # bake the built indexes into a serve snapshot, then serve it
    python -m repro snapshot venue.json venue.snap.json
    python -m repro serve venue.snap.json --workers 2 --port 8080
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.core import IKRQ, IKRQEngine, QueryService
from repro.core.directions import render_directions
from repro.datasets import paper_fig1
from repro.geometry import Point
from repro.space import load_space, save_space
from repro.viz import RouteStyle, render_svg, save_svg


def _parse_point(text: str) -> Point:
    parts = [float(v) for v in text.split(",")]
    if len(parts) == 2:
        parts.append(0.0)
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"point must be 'x,y' or 'x,y,level', got {text!r}")
    return Point(parts[0], parts[1], parts[2])


def _cmd_export_fig1(args) -> int:
    fixture = paper_fig1()
    save_space(args.path, fixture.space, fixture.kindex)
    print(f"wrote {fixture.space} to {args.path}")
    return 0


def _cmd_info(args) -> int:
    space, kindex = load_space(args.path)
    print(space)
    if kindex is not None:
        stats = kindex.stats()
        print(f"keywords: {int(stats['num_iwords'])} i-words, "
              f"{int(stats['num_twords'])} t-words, "
              f"{int(stats['num_labelled_partitions'])} labelled partitions")
    by_kind = {}
    for p in space.partitions.values():
        by_kind[p.kind.value] = by_kind.get(p.kind.value, 0) + 1
    print("partitions by kind:",
          ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items())))
    return 0


def _load_engine(path):
    space, kindex = load_space(path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    return space, kindex, IKRQEngine(space, kindex)


def _cmd_query(args) -> int:
    space, kindex, engine = _load_engine(args.path)
    query = IKRQ(ps=args.from_point, pt=args.to_point, delta=args.delta,
                 keywords=tuple(args.keywords.split(",")), k=args.k,
                 alpha=args.alpha, tau=args.tau)
    if args.workers > 0:
        service = QueryService(engine, workers=args.workers)
        answer = service.search_batch(
            [query], algorithm=args.algorithm, workers=args.workers)[0]
    else:
        answer = engine.search(query, algorithm=args.algorithm)
    if not answer.routes:
        print("no feasible route")
        return 1
    for rank, result in enumerate(answer.routes, start=1):
        print(f"#{rank}: ψ={result.score:.4f} ρ={result.relevance:.3f} "
              f"δ={result.distance:.1f} m")
        if args.directions:
            ctx = engine.context(answer.query)
            print(render_directions(ctx, result.route))
        else:
            print("   " + result.route.describe(space))
    return 0


def _cmd_render(args) -> int:
    space, kindex, engine = _load_engine(args.path)
    routes = []
    styles = []
    markers = []
    if args.from_point and args.to_point and args.keywords:
        answer = engine.query(
            ps=args.from_point, pt=args.to_point, delta=args.delta,
            keywords=args.keywords.split(","), k=args.k,
            algorithm=args.algorithm)
        for i, result in enumerate(answer.routes):
            routes.append(result.route)
            styles.append(RouteStyle(
                color=["#d62728", "#1f77b4", "#2ca02c"][i % 3],
                label=f"#{i + 1} ψ={result.score:.3f}"))
        markers = [("ps", args.from_point), ("pt", args.to_point)]
    svg = render_svg(space, floor=args.floor, kindex=kindex,
                     routes=routes, route_styles=styles, markers=markers)
    save_svg(args.out, svg)
    print(f"wrote {args.out}")
    return 0


def _resolve_snapshot(path: str,
                      out: Optional[str] = None,
                      warm_matrix: bool = False) -> tuple:
    """The snapshot file to serve: ``path`` itself when it already is
    one (JSON v1 or binary v2), else a snapshot baked from the venue
    file (written to ``out`` or a temporary file).  Returns
    ``(snapshot_path, is_temporary)`` so the caller can clean a baked
    temporary up on exit."""
    from repro.serve import (is_binary_snapshot, is_snapshot_document,
                             save_snapshot)
    if is_binary_snapshot(path):
        return path, False
    doc = json.loads(Path(path).read_text())
    if is_snapshot_document(doc):
        return path, False
    space, kindex = load_space(path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    engine = IKRQEngine(space, kindex)
    if warm_matrix:
        engine.door_matrix()
    is_temporary = out is None
    if is_temporary:
        handle = tempfile.NamedTemporaryFile(
            prefix="repro-snapshot-", suffix=".json", delete=False)
        handle.close()
        out = handle.name
    save_snapshot(out, engine)
    return out, is_temporary


def _cmd_snapshot(args) -> int:
    from repro.serve import save_snapshot
    space, kindex = load_space(args.path)
    if kindex is None:
        raise SystemExit("venue file carries no keyword index")
    engine = IKRQEngine(space, kindex)
    if args.warm_matrix:
        engine.door_matrix()
    save_snapshot(args.out, engine, matrix_rows=args.matrix_rows,
                  binary=args.binary)
    size = Path(args.out).stat().st_size
    encoding = "binary v2" if args.binary else "JSON v1"
    print(f"wrote {encoding} snapshot of {space} to {args.out} "
          f"({size} bytes, {engine.graph.num_edges()} CSR edges, "
          f"{engine._matrix.num_cached_rows() if engine._matrix else 0} "
          f"warm matrix rows)")
    return 0


def _serve_smoke(server, snapshot_path: str) -> int:
    """In-process smoke: fig1 queries over HTTP, byte-identity checked
    against a local engine, /metrics scraped, clean shutdown."""
    import urllib.request

    from repro.serve import (answer_to_wire, canonical_json, load_snapshot,
                             query_to_wire)

    engine = load_snapshot(snapshot_path)
    fixture = paper_fig1()
    cases = [
        (IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
              keywords=("latte", "apple"), k=3), "ToE"),
        (IKRQ(ps=fixture.ps, pt=fixture.pt, delta=60.0,
              keywords=("coffee",), k=2), "KoE"),
        (IKRQ(ps=fixture.ps, pt=fixture.pt, delta=70.0,
              keywords=("phone", "coffee"), k=2), "KoE*"),
        (IKRQ(ps=fixture.pt, pt=fixture.ps, delta=60.0,
              keywords=("latte",), k=1), "ToE"),
    ]
    host, port = server.start()
    base = f"http://{host}:{port}"
    try:
        for query, algorithm in cases:
            body = json.dumps({"query": query_to_wire(query),
                               "algorithm": algorithm}).encode("utf-8")
            request = urllib.request.Request(
                base + "/search", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=60) as resp:
                doc = json.loads(resp.read())
            if doc.get("status") != "ok":
                print(f"smoke FAILED: {algorithm} -> {doc}")
                return 1
            expected = answer_to_wire(engine.search(query, algorithm))
            got = {"algorithm": doc["algorithm"], "routes": doc["routes"]}
            if canonical_json(got) != canonical_json(expected):
                print(f"smoke FAILED: {algorithm} answer differs from "
                      "sequential engine.search")
                return 1
        with urllib.request.urlopen(base + "/healthz", timeout=30) as resp:
            health = json.loads(resp.read())
        with urllib.request.urlopen(base + "/metrics", timeout=30) as resp:
            metrics = resp.read().decode("utf-8")
        if "ikrq_requests_total" not in metrics \
                or "ikrq_shard_queries_served" not in metrics \
                or "ikrq_request_latency_seconds_bucket" not in metrics \
                or "ikrq_shard_search_latency_seconds_bucket" not in metrics:
            print("smoke FAILED: /metrics missing expected series")
            return 1
    finally:
        server.shutdown()
    served = sum(
        int(line.rsplit(" ", 1)[1])
        for line in metrics.splitlines()
        if line.startswith("ikrq_shard_queries_served"))
    print(f"serve smoke ok: {len(cases)} queries byte-identical over HTTP, "
          f"health={health['status']}, shards={health['shards']}, "
          f"shard queries={served}, clean shutdown")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import IKRQServer

    snapshot_path, is_temporary = _resolve_snapshot(
        args.path, out=args.snapshot, warm_matrix=args.warm_matrix)
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms else None
    try:
        server = IKRQServer(
            snapshot_path, workers=args.workers, host=args.host,
            port=args.port, max_pending=args.queue_depth,
            deadline_s=deadline_s)
        if args.smoke:
            return _serve_smoke(server, snapshot_path)
        host, port = server.address
        print(f"serving {args.path} on http://{host}:{port} "
              f"({args.workers} shard processes, queue depth "
              f"{args.queue_depth}); POST /search, GET /healthz, "
              f"GET /metrics")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            print("server stopped")
        return 0
    finally:
        if is_temporary:
            Path(snapshot_path).unlink(missing_ok=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Query and render serialized indoor venues.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("export-fig1", help="write the Fig. 1 venue")
    p.add_argument("path")
    p.set_defaults(func=_cmd_export_fig1)

    p = sub.add_parser("info", help="summarise a venue file")
    p.add_argument("path")
    p.set_defaults(func=_cmd_info)

    def add_query_args(p, require_query: bool):
        p.add_argument("path")
        p.add_argument("--from", dest="from_point", type=_parse_point,
                       required=require_query, help="start point x,y[,level]")
        p.add_argument("--to", dest="to_point", type=_parse_point,
                       required=require_query, help="terminal point")
        p.add_argument("--delta", type=float, default=100.0,
                       help="distance constraint (m)")
        p.add_argument("--keywords", default="" if not require_query else None,
                       required=require_query,
                       help="comma-separated query keywords")
        p.add_argument("--k", type=int, default=3)
        p.add_argument("--alpha", type=float, default=0.5)
        p.add_argument("--tau", type=float, default=0.2)
        p.add_argument("--algorithm", default="ToE")

    p = sub.add_parser("query", help="run an IKRQ")
    add_query_args(p, require_query=True)
    p.add_argument("--directions", action="store_true",
                   help="print step-by-step directions")
    p.add_argument("--workers", type=int, default=0,
                   help="evaluate through the batched QueryService layer "
                        "(single queries run inline on its caches; "
                        "0 = direct engine call)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("render", help="draw a floor (optionally + routes)")
    add_query_args(p, require_query=False)
    p.add_argument("--floor", type=int, default=0)
    p.add_argument("--out", default="floor.svg")
    p.set_defaults(func=_cmd_render)

    p = sub.add_parser(
        "snapshot", help="bake a venue + built indexes into a serve snapshot")
    p.add_argument("path", help="venue JSON file")
    p.add_argument("out", help="snapshot file to write")
    p.add_argument("--warm-matrix", action="store_true",
                   help="prebuild the KoE* door matrix into the snapshot")
    p.add_argument("--matrix-rows", type=int, default=None,
                   help="cap on persisted warm matrix rows")
    p.add_argument("--binary", action="store_true",
                   help="write the binary v2 encoding (typed-array "
                        "payload; fastest cold-start on big venues)")
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser(
        "serve", help="sharded multi-process HTTP server for IKRQ traffic")
    p.add_argument("path", help="venue JSON or serve snapshot file")
    p.add_argument("--workers", type=int, default=2,
                   help="shard processes (each owns a QueryService)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission cap on in-flight requests; beyond it "
                        "requests are shed with an 'overloaded' answer")
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="per-request deadline (0 = none)")
    p.add_argument("--snapshot", default=None,
                   help="where to write the baked snapshot when PATH is "
                        "a venue file (default: a temporary file)")
    p.add_argument("--warm-matrix", action="store_true",
                   help="prebuild the KoE* door matrix before snapshotting")
    p.add_argument("--smoke", action="store_true",
                   help="start, answer fig1 queries over HTTP, verify "
                        "byte-identity and /metrics, then exit")
    p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
